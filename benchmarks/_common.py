"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one experiment from DESIGN.md's evaluation
plan.  The convention:

* the experiment body is a plain function returning an
  :class:`~repro.analysis.report.ExperimentReport`;
* the pytest-benchmark entry point runs it once (``pedantic`` with one
  round — these are *result* benches, not micro-benchmarks), then
  :func:`emit` prints the report and archives it under
  ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can quote it.

Workload lengths are chosen so the whole suite finishes in a few minutes
of pure Python; the shapes are stable well below these lengths.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.report import ExperimentReport

# Trace lengths used across benches (ops, not instructions).
FULL_OPS = 30_000
SWEEP_OPS = 15_000
MULTICORE_OPS = 6_000

RESULTS_DIR = Path(__file__).parent / "results"


def emit(report: ExperimentReport) -> ExperimentReport:
    """Print a report to the live console and archive it to results/.

    Each experiment leaves two artifacts: the rendered table
    (``results/<id>.txt``, quoted by EXPERIMENTS.md) and the raw rows
    (``results/<id>.csv``, for plotting scripts).
    """
    from repro.analysis.export import report_to_csv

    text = report.render()
    # Bypass pytest's capture so the rows appear in the benchmark log.
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = report.experiment_id.lower()
    (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n", encoding="utf-8")
    report_to_csv(report, RESULTS_DIR / f"{stem}.csv")
    return report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
