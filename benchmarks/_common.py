"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` regenerates one experiment from DESIGN.md's evaluation
plan.  The convention:

* the experiment body is a plain function returning an
  :class:`~repro.analysis.report.ExperimentReport`;
* the pytest-benchmark entry point runs it once (``pedantic`` with one
  round — these are *result* benches, not micro-benchmarks), then
  :func:`emit` prints the report and archives it under
  ``benchmarks/results/<id>.txt`` so EXPERIMENTS.md can quote it.

Workload lengths are chosen so the whole suite finishes in a few minutes
of pure Python; the shapes are stable well below these lengths.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

from repro.analysis.report import ExperimentReport
from repro.obs import SelfProfiler, environment_manifest

# Trace lengths used across benches (ops, not instructions).
FULL_OPS = 30_000
SWEEP_OPS = 15_000
MULTICORE_OPS = 6_000

# Execution-engine knobs.  The sweep benches route through
# repro.exec.SweepRunner; both knobs default to the plain serial,
# uncached path so a stock `pytest benchmarks/` still measures the
# simulator, not the cache.
#
# * MAPG_BENCH_JOBS=N   — fan cache-missing cells over N worker processes.
# * MAPG_BENCH_CACHE=1  — reuse results across runs via the default
#   content-addressed cache dir; any other non-empty value is used as the
#   cache directory itself.
# * MAPG_BENCH_TELEMETRY=<dir> — attach a SweepRecorder to every
#   run_sweep() call and write numbered sweep manifests + JSONL event
#   streams (sweep-0001.json, sweep-0001.events.jsonl, ...) under <dir>,
#   so a slow bench can be diagnosed cell by cell.
SWEEP_JOBS = int(os.environ.get("MAPG_BENCH_JOBS", "1"))

_TELEMETRY_DIR = os.environ.get("MAPG_BENCH_TELEMETRY", "")
_TELEMETRY_SEQ = 0


def sweep_cache():
    """The shared ResultCache requested via MAPG_BENCH_CACHE, or None."""
    setting = os.environ.get("MAPG_BENCH_CACHE", "")
    if not setting:
        return None
    from repro.exec import DEFAULT_CACHE_DIR, ResultCache

    return ResultCache(DEFAULT_CACHE_DIR if setting == "1" else setting)


def run_sweep(specs):
    """Run a list of JobSpecs through one SweepRunner wired to the knobs.

    For benches that sweep hand-built configs (F3/F4) rather than going
    through ``run_policy_comparison``; the shared runner means every cell
    of one workload reuses a single generated trace.  With
    ``MAPG_BENCH_TELEMETRY`` set, each call also leaves a numbered sweep
    manifest + event stream under that directory (results unchanged —
    the recorder only observes).
    """
    global _TELEMETRY_SEQ
    from repro.exec import SweepRunner

    recorder = None
    if _TELEMETRY_DIR:
        from repro.obs import SweepRecorder

        recorder = SweepRecorder()
    try:
        return SweepRunner(jobs=SWEEP_JOBS, cache=sweep_cache(),
                           recorder=recorder).run(specs)
    finally:
        if recorder is not None:
            from repro.obs import write_sweep_artifacts

            _TELEMETRY_SEQ += 1
            write_sweep_artifacts(
                recorder,
                Path(_TELEMETRY_DIR) / f"sweep-{_TELEMETRY_SEQ:04d}.json")

RESULTS_DIR = Path(__file__).parent / "results"

# Self-profile of the most recent run_once() call, attached to the JSON
# archive by the next emit().  Module-level because pytest-benchmark owns
# the call plumbing between the two.
_LAST_PROFILE = None


def emit(report: ExperimentReport) -> ExperimentReport:
    """Print a report to the live console and archive it to results/.

    Each experiment leaves three artifacts: the rendered table
    (``results/<id>.txt``, quoted by EXPERIMENTS.md), the raw rows
    (``results/<id>.csv``, for plotting scripts), and a self-describing
    JSON document (``results/<id>.json`` — rows plus the environment
    manifest and the run's self-profile, so a result can always be traced
    back to the code and machine that produced it).
    """
    global _LAST_PROFILE
    from repro.analysis.export import report_to_csv

    text = report.render()
    # Bypass pytest's capture so the rows appear in the benchmark log.
    sys.__stdout__.write("\n" + text + "\n")
    sys.__stdout__.flush()
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = report.experiment_id.lower()
    (RESULTS_DIR / f"{stem}.txt").write_text(text + "\n", encoding="utf-8")
    report_to_csv(report, RESULTS_DIR / f"{stem}.csv")
    payload = {
        "schema": "mapg.bench-result/1",
        "experiment_id": report.experiment_id,
        "caption": report.caption,
        "headers": list(report.headers),
        "rows": [[cell if isinstance(cell, (int, float)) else str(cell)
                  for cell in row] for row in report.rows],
        "notes": list(report.notes),
        "environment": environment_manifest(),
        "self_profile": _LAST_PROFILE,
    }
    (RESULTS_DIR / f"{stem}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    _LAST_PROFILE = None
    return report


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its result.

    The call is self-profiled (wall time, peak RSS) and the report is
    stashed for the following :func:`emit` to archive alongside the rows.
    """
    global _LAST_PROFILE
    profiler = SelfProfiler()

    def profiled():
        with profiler.stage("experiment"):
            return fn()

    result = benchmark.pedantic(profiled, rounds=1, iterations=1)
    _LAST_PROFILE = profiler.report()
    return result
