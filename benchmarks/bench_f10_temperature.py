"""[F10] Savings vs junction temperature.

Leakage grows ~exponentially with temperature (doubling every ~25 C), so
the energy MAPG can save — and the BET's favourability — both improve on
hot silicon.  Sweep 45..110 C on a memory-bound and a moderate workload.
Shape claims: MAPG's absolute energy saving grows monotonically with
temperature; the penalty is temperature-independent (it is pure timing).
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

TEMPERATURES_C = (45.0, 65.0, 85.0, 110.0)
WORKLOADS = ("mcf_like", "gcc_like")


def build_report() -> ExperimentReport:
    config = SystemConfig()
    report = ExperimentReport(
        "F10", "MAPG energy saving vs junction temperature",
        headers=["workload", "temp (C)", "leak scale", "energy saving",
                 "perf penalty"])
    from repro.power.temperature import leakage_scale_factor
    for workload in WORKLOADS:
        for temperature in TEMPERATURES_C:
            never = run_workload(with_policy(config, "never"), workload,
                                 SWEEP_OPS, seed=11, temperature_c=temperature)
            mapg = run_workload(with_policy(config, "mapg"), workload,
                                SWEEP_OPS, seed=11, temperature_c=temperature)
            delta = mapg.compare(never)
            report.add_row(
                workload, f"{temperature:g}",
                f"{leakage_scale_factor(temperature):.2f}",
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2))
    report.add_note("nominal characterization temperature is 85 C")
    report.add_note("penalty is timing-only, hence temperature-independent")
    return report


def test_f10_temperature(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        savings = [float(row[3].split()[0]) for row in report.rows
                   if row[0] == workload]
        assert savings == sorted(savings)


if __name__ == "__main__":
    print(build_report().render())
