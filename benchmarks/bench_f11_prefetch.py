"""[F11] Interaction with a stride prefetcher.

MAPG's savings come from off-chip stalls — exactly what a prefetcher
removes.  This experiment runs each workload with and without an L2 stride
prefetcher (degree 4) and measures how much of MAPG's saving survives.
Shape claims: on streaming workloads the prefetcher removes a large share
of the stalls and with them most of MAPG's absolute saving; on
pointer-chasing workloads the prefetcher is ineffective and MAPG's saving
is untouched.  The two techniques are complementary, not redundant — the
baseline also speeds up, so the *relative* saving falls less than the
stall count.
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import PrefetcherConfig, SystemConfig
from repro.sim.runner import run_workload, with_policy

WORKLOADS = ("mcf_like", "libquantum_like", "lbm_like", "gcc_like")


def build_report() -> ExperimentReport:
    base = SystemConfig()
    with_pf = base.replace(prefetcher=PrefetcherConfig(enabled=True, degree=4))
    report = ExperimentReport(
        "F11", "MAPG with and without an L2 stride prefetcher (degree 4)",
        headers=["workload", "prefetcher", "offchip stalls", "speedup",
                 "MAPG saving", "MAPG penalty", "useful pf"])
    for workload in WORKLOADS:
        plain_never = run_workload(with_policy(base, "never"),
                                   workload, SWEEP_OPS, seed=11)
        for label, config in (("off", base), ("on", with_pf)):
            never = run_workload(with_policy(config, "never"),
                                 workload, SWEEP_OPS, seed=11)
            mapg = run_workload(with_policy(config, "mapg"),
                                workload, SWEEP_OPS, seed=11)
            delta = mapg.compare(never)
            report.add_row(
                workload, label,
                int(never.offchip_stalls),
                f"{plain_never.total_cycles / never.total_cycles:.2f}x",
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2),
                int(never.memory_counters.get("useful_prefetches", 0)))
    report.add_note("speedup is the never-gate runtime vs the no-prefetcher build")
    report.add_note("MAPG saving/penalty measured against the same-config never run")
    return report


def test_f11_prefetch(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {(row[0], row[1]): row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    def speedup(cell):
        return float(cell.rstrip("x"))

    # Prefetching helps streaming >> pointer chasing.
    assert speedup(rows[("libquantum_like", "on")][3]) > \
        speedup(rows[("mcf_like", "on")][3])
    # MAPG still saves energy with the prefetcher on, on every workload.
    for workload in WORKLOADS:
        assert pct(rows[(workload, "on")][4]) > 0.0
    # Streaming: prefetcher removes a visible share of off-chip stalls
    # (reuse traffic interleaves with the streams, so the per-PC stride
    # detector catches most but not all of the stream accesses).
    assert rows[("libquantum_like", "on")][2] < \
        0.9 * rows[("libquantum_like", "off")][2]


if __name__ == "__main__":
    print(build_report().render())
