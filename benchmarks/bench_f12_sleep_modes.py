"""[F12] Sleep-mode design space: full collapse vs retention vs dual.

A full rail collapse saves the most leakage but has the slowest, most
expensive wake; a retention clamp preserves the rail at ~0.45 Vdd with a
faster and cheaper wake but burns clamp power the whole sleep.  MAPG's
dual mode sends confident long stalls to the deep mode and coarse-estimate
gates to the shallow one.

Shape claims: retention's penalty <= full's on every workload (faster
wake); full's energy saving >= retention's (deeper sleep); dual lands
between on both axes, with both modes actually used.
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

WORKLOADS = ("mcf_like", "libquantum_like", "gcc_like")
MODES = ("full", "retention", "dual")


def build_report() -> ExperimentReport:
    config = SystemConfig()
    report = ExperimentReport(
        "F12", "Sleep-mode selection: full vs retention vs dual (MAPG)",
        headers=["workload", "mode", "energy saving", "perf penalty",
                 "gates full", "gates retention"])
    for workload in WORKLOADS:
        baseline = run_workload(with_policy(config, "never"),
                                workload, SWEEP_OPS, seed=11)
        for mode in MODES:
            result = run_workload(
                with_policy(config, "mapg", sleep_mode=mode),
                workload, SWEEP_OPS, seed=11)
            delta = result.compare(baseline)
            counters = result.controller_counters
            report.add_row(
                workload, mode,
                format_fraction_pct(delta.energy_saving, precision=2),
                format_fraction_pct(delta.performance_penalty, precision=3),
                int(counters.get("gated_full", 0)),
                int(counters.get("gated_retention", 0)))
    report.add_note("retention clamp at 0.45 Vdd; wake ~2x faster than full")
    report.add_note("dual: confident long stalls -> full; coarse estimates -> retention")
    return report


def test_f12_sleep_modes(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {(row[0], row[1]): row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    for workload in WORKLOADS:
        full = rows[(workload, "full")]
        retention = rows[(workload, "retention")]
        dual = rows[(workload, "dual")]
        # Retention wakes faster: penalty never worse than full's.
        assert pct(retention[3]) <= pct(full[3]) + 0.01
        # Full sleeps deeper: saving no worse than retention's, beyond the
        # small runtime-energy rebate retention's faster wake earns (its
        # shorter execution buys back background energy on short stalls).
        assert pct(full[2]) >= pct(retention[2]) - 0.2
        # Dual actually mixes modes.
        assert dual[4] > 0 and dual[5] > 0


if __name__ == "__main__":
    print(build_report().render())
