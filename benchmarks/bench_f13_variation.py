"""[F13] Die-to-die leakage variation: the savings distribution.

Leakage is lognormal across dies, so "energy saved by MAPG" is a
distribution, not a number.  This experiment characterizes 60 virtual
dies per sigma (circuit model only — BET, wake, and per-event saving for
the median observed stall) and reports population percentiles.

Shape claims: the BET spread widens with sigma (strong dies need much
longer sleeps to break even); per-event net saving at a typical stall
grows with die leakage; even the p5 (strongest) die keeps a positive
saving at the typical stall length, which is what makes a single
non-binned MAPG policy deployable.
"""

from _common import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.power.technology import get_technology
from repro.power.variation import LeakageVariationModel

NODE = "45nm"
SIGMAS = (0.15, 0.3, 0.5)
POPULATION = 60
TYPICAL_STALL_S = 85e-9  # ~170 cycles at 2 GHz
FREQUENCY_HZ = 2e9


def build_report() -> ExperimentReport:
    tech = get_technology(NODE)
    report = ExperimentReport(
        "F13", f"Leakage-variation population study ({NODE}, {POPULATION} dies)",
        headers=["sigma_log", "leak x (p5/p50/p95)", "BET cyc (p5/p50/p95)",
                 "saving/event nJ (p5/p50/p95)", "dies losing"])
    for sigma in SIGMAS:
        model = LeakageVariationModel(tech, sigma_log=sigma, seed=17)
        dies = model.sample_population(POPULATION)
        multipliers = sorted(d.leakage_multiplier for d in dies)
        bets = sorted(d.network.breakeven_time_s() * FREQUENCY_HZ for d in dies)
        savings = sorted(d.network.net_saving_j(TYPICAL_STALL_S) * 1e9
                         for d in dies)
        losing = sum(1 for s in savings if s <= 0.0)

        def pct(ordered, p):
            return ordered[min(len(ordered) - 1, int(p / 100 * len(ordered)))]

        report.add_row(
            f"{sigma:g}",
            f"{pct(multipliers, 5):.2f}/{pct(multipliers, 50):.2f}/{pct(multipliers, 95):.2f}",
            f"{pct(bets, 5):.0f}/{pct(bets, 50):.0f}/{pct(bets, 95):.0f}",
            f"{pct(savings, 5):.1f}/{pct(savings, 50):.1f}/{pct(savings, 95):.1f}",
            losing)
    report.add_note(f"per-event saving evaluated at a {TYPICAL_STALL_S * 1e9:.0f} ns "
                    "(typical DRAM) stall")
    report.add_note("BET percentiles are inverted vs leakage: strong dies "
                    "(p5 leakage) have the p95 BET")
    return report


def test_f13_variation(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    # Spread of BET widens with sigma.
    def bet_spread(row):
        p5, __, p95 = (float(x) for x in row[2].split("/"))
        return p95 - p5
    spreads = [bet_spread(row) for row in report.rows]
    assert spreads == sorted(spreads)
    # No die loses energy at the typical stall, at any studied sigma.
    assert all(row[4] == 0 for row in report.rows)


if __name__ == "__main__":
    print(build_report().render())
