"""[F14] Sensitivity to last-level cache capacity (footprint-scaled).

A bigger LLC converts off-chip stalls into on-chip hits, shrinking MAPG's
opportunity the same way a prefetcher does (F11).  Trace length bounds the
*touched* footprint of our synthetic workloads to a few hundred KiB, so
this experiment is footprint-scaled: an 8 KiB L1 and an L2 swept from
32 KiB to 512 KiB, spanning the same capacity-to-footprint ratios a
2–16 MiB LLC sees against full SPEC footprints.

Shape claims: off-chip stall counts fall monotonically with L2 capacity
and saturate once the reuse window fits; MAPG's saving falls with the
stall count; the memory-bound workload saturates latest (its reuse window
is the largest), so the workloads that need MAPG most keep needing it.
"""

import dataclasses

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

L2_SIZES_KIB = (32, 64, 128, 256, 512)
WORKLOADS = ("mcf_like", "gcc_like", "bzip2_like")


def scaled_config(base: SystemConfig, l2_kib: int) -> SystemConfig:
    small_l1 = dataclasses.replace(base.l1, size_bytes=8 * 1024,
                                   associativity=2)
    return base.replace(
        l1=small_l1,
        l2=dataclasses.replace(base.l2, size_bytes=l2_kib * 1024))


def build_report() -> ExperimentReport:
    base = SystemConfig()
    report = ExperimentReport(
        "F14", "MAPG vs LLC capacity (footprint-scaled: 8 KiB L1)",
        headers=["workload", "L2 size", "offchip stalls", "l2 hit rate",
                 "MAPG saving", "MAPG penalty"])
    for workload in WORKLOADS:
        for size_kib in L2_SIZES_KIB:
            config = scaled_config(base, size_kib)
            never = run_workload(with_policy(config, "never"),
                                 workload, SWEEP_OPS, seed=11)
            mapg = run_workload(with_policy(config, "mapg"),
                                workload, SWEEP_OPS, seed=11)
            delta = mapg.compare(never)
            l2_hits = never.memory_counters.get("l2_hits", 0)
            l2_accesses = max(1, never.memory_counters.get("l2_accesses", 1))
            report.add_row(
                workload, f"{size_kib} KiB",
                int(never.offchip_stalls),
                format_fraction_pct(l2_hits / l2_accesses),
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2))
    report.add_note("same trace per workload at every size; only capacity changes")
    report.add_note("sweep saturates once each workload's reuse window fits")
    return report


def test_f14_l2_size(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        stalls = [row[2] for row in report.rows if row[0] == workload]
        # Monotone non-increasing miss counts as the L2 grows...
        assert all(a >= b for a, b in zip(stalls, stalls[1:]))
        # ...with real sensitivity at the bottom of the sweep.
        assert stalls[0] > stalls[-1]
    # The memory-bound workload keeps the most stalls even at the top size.
    finals = {row[0]: row[2] for row in report.rows if row[1] == "512 KiB"}
    assert finals["mcf_like"] > finals["gcc_like"] > finals["bzip2_like"]


if __name__ == "__main__":
    print(build_report().render())
