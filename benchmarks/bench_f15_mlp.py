"""[F15] Memory-level parallelism sensitivity (the in-order assumption).

The paper's core is in-order/blocking — every off-chip miss is a
full-length gateable stall, the best case for MAPG.  Real out-of-order
cores overlap misses; this experiment replays the same traces through the
windowed-MLP core with 1/2/4/8 outstanding-miss windows and measures what
survives.

Shape claims: the never-gate baseline speeds up monotonically with the
window (MLP hides memory time) and MAPG's saving at any window > 1 is
below the blocking-core best case — but *how much* survives depends on
why the program misses.  The pointer-chasing workload (mcf-like, explicit
load-to-load dependences in the trace) keeps ~90 % of its saving at
window 8: no window hides a chase.  The streaming workload (libquantum-
like, fully independent misses) keeps well under half.  MAPG stays most
valuable exactly where out-of-order execution helps least.
"""

import dataclasses

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

WINDOWS = (1, 2, 4, 8)
WORKLOADS = ("mcf_like", "milc_like", "libquantum_like")


def build_report() -> ExperimentReport:
    base = SystemConfig()
    report = ExperimentReport(
        "F15", "MAPG vs memory-level parallelism (miss-window sweep)",
        headers=["workload", "window", "baseline cycles", "offchip stalls",
                 "MAPG saving", "MAPG penalty"])
    for workload in WORKLOADS:
        for window in WINDOWS:
            config = base.replace(
                core=dataclasses.replace(base.core, miss_window=window))
            never = run_workload(with_policy(config, "never"),
                                 workload, SWEEP_OPS, seed=11)
            mapg = run_workload(with_policy(config, "mapg"),
                                workload, SWEEP_OPS, seed=11)
            delta = mapg.compare(never)
            report.add_row(
                workload, window,
                never.total_cycles,
                int(never.offchip_stalls),
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2))
    report.add_note("window 1 = the paper's blocking in-order core")
    report.add_note("window > 1 stalls only on window-full and dependent-use "
                    "(load-to-use) events; the stall mix shifts, so savings "
                    "within window >= 2 need not be monotone")
    return report


def test_f15_mlp(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        rows = [row for row in report.rows if row[0] == workload]
        cycles = [row[2] for row in rows]
        assert cycles == sorted(cycles, reverse=True)  # MLP speeds baseline

        def pct(cell):
            return float(cell.split()[0])
        savings = [pct(row[4]) for row in rows]
        # Blocking core is the best case; every window > 1 saves less.
        assert all(savings[0] > s for s in savings[1:])

    def retained(workload):
        rows = [row for row in report.rows if row[0] == workload]
        first = float(rows[0][4].split()[0])
        last = float(rows[-1][4].split()[0])
        return last / first
    # Dependence-bound savings survive MLP; streaming savings do not.
    assert retained("mcf_like") > 0.8
    assert retained("libquantum_like") < 0.6
    assert retained("mcf_like") > retained("milc_like") > \
        retained("libquantum_like")


if __name__ == "__main__":
    print(build_report().render())
