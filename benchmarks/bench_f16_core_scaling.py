"""[F16] Core-count scaling under shared DRAM.

Scales a homogeneous memory-bound mix from 1 to 8 cores sharing one DRAM
(private L1/L2 per core).  Bank contention grows with the core count, so
each core's off-chip stalls lengthen — and longer stalls are *better*
gating targets.

Shape claims: mean off-chip stall length grows with the core count (bank
queueing), but the *predictability* of each stall falls — queueing delay
depends on the other cores' instantaneous traffic, which no per-core
predictor can see.  MAPG's saving therefore declines mildly with scale
while staying within a few points of the single-core figure, and the
penalty stays bounded.  (This is the observation that motivates memory-
controller-coordinated wakeup and the authors' follow-on many-core TAP
work: at scale, the controller — which *can* see the queue — should own
the wake timing.)
"""

from _common import MULTICORE_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_multicore, with_policy

CORE_COUNTS = (1, 2, 4, 8)
PROFILE = "mcf_like"


def build_report() -> ExperimentReport:
    report = ExperimentReport(
        "F16", f"Core-count scaling, homogeneous {PROFILE} mix, shared DRAM",
        headers=["cores", "mean stall (cyc)", "row hit rate",
                 "energy/core (uJ)", "mean saving", "mean penalty"])
    for cores in CORE_COUNTS:
        never_cfg = with_policy(SystemConfig(num_cores=cores), "never")
        mapg_cfg = with_policy(SystemConfig(num_cores=cores), "mapg")
        never = run_multicore(never_cfg, [PROFILE] * cores, MULTICORE_OPS,
                              seed=13)
        mapg = run_multicore(mapg_cfg, [PROFILE] * cores, MULTICORE_OPS,
                             seed=13)
        stall_cycles = sum(
            r.controller_counters.get("offchip_stall_cycles", 0)
            for r in never.per_core.values())
        stall_count = max(1, sum(r.offchip_stalls
                                 for r in never.per_core.values()))
        savings = []
        penalties = []
        for core_id in range(cores):
            base = never.per_core[core_id]
            gated = mapg.per_core[core_id]
            savings.append(1.0 - gated.energy_j / base.energy_j)
            penalties.append(gated.total_cycles / base.total_cycles - 1.0)
        sample = never.per_core[0]
        row_hits = sum(r.memory_counters.get("dram_row_hit", 0)
                       for r in never.per_core.values())
        dram_accesses = max(1, sum(r.memory_counters.get("dram_accesses", 0)
                                   for r in never.per_core.values()))
        # The DRAM is shared: every core's counters alias the same device,
        # so read it once from core 0 instead of summing.
        row_rate = (sample.memory_counters.get("dram_row_hit", 0)
                    / max(1, sample.memory_counters.get("dram_accesses", 1)))
        del row_hits, dram_accesses
        report.add_row(
            cores,
            f"{stall_cycles / stall_count:.0f}",
            format_fraction_pct(row_rate),
            f"{mapg.total_energy_j / cores * 1e6:.1f}",
            format_fraction_pct(sum(savings) / len(savings)),
            format_fraction_pct(sum(penalties) / len(penalties), precision=2))
    report.add_note("private L1/L2 per core; one shared DRAM (8 banks)")
    report.add_note("bank contention lengthens stalls as cores are added")
    return report


def test_f16_core_scaling(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    stalls = [float(row[1]) for row in report.rows]
    assert stalls == sorted(stalls)  # contention lengthens stalls

    def pct(cell):
        return float(cell.split()[0])
    savings = [pct(row[4]) for row in report.rows]
    # Contention-induced unpredictability costs a little saving at scale,
    # but the mechanism stays decisively worthwhile at every core count.
    assert savings[-1] < savings[0] + 1.0
    assert all(s > 0.7 * savings[0] for s in savings)
    assert all(pct(row[5]) < 2.0 for row in report.rows)


if __name__ == "__main__":
    print(build_report().render())
