"""[F17] MAPG vs memory-aware DVFS vs both combined.

DVFS cuts *dynamic* energy by slowing the clock through memory-bound
phases; MAPG cuts *leakage* during the stalls themselves.  They attack
disjoint energy components, so a designer wants to know whether they
compete or compose.

For each workload the table evaluates four operating points against the
full-speed never-gate run: DVFS alone (best frequency from a sweep), MAPG
alone, both combined, and the combined point's EDP.

Shape claims: on memory-bound workloads DVFS alone saves real energy at a
visible runtime cost; MAPG alone saves comparable energy at ~no runtime
cost; combined strictly beats both alone in energy; MAPG-alone keeps the
best EDP of the single techniques.
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.power.dvfs import DvfsModel
from repro.sim.runner import run_workload, with_policy
from repro.sim.simulator import Simulator

WORKLOADS = ("mcf_like", "gcc_like", "povray_like")
FREQUENCIES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def build_report() -> ExperimentReport:
    config = SystemConfig()
    model = DvfsModel(Simulator(with_policy(config, "never")).power_model)
    report = ExperimentReport(
        "F17", "MAPG vs memory-aware DVFS vs combined (energy vs full-speed baseline)",
        headers=["workload", "technique", "freq", "energy saving",
                 "runtime cost", "EDP ratio"])
    for workload in WORKLOADS:
        never = run_workload(with_policy(config, "never"),
                             workload, SWEEP_OPS, seed=11)
        mapg = run_workload(with_policy(config, "mapg"),
                            workload, SWEEP_OPS, seed=11)
        base = model.evaluate(never, 1.0)

        # Best DVFS point by energy over the sweep.
        dvfs_points = [model.evaluate(never, r) for r in FREQUENCIES]
        best_dvfs = min(dvfs_points, key=lambda p: p.energy_j)
        mapg_point = model.evaluate(mapg, 1.0)
        combined = min((model.evaluate(mapg, r) for r in FREQUENCIES),
                       key=lambda p: p.energy_j)

        for label, point in (("dvfs", best_dvfs), ("mapg", mapg_point),
                             ("combined", combined)):
            report.add_row(
                workload, label, f"{point.relative_frequency:g}x",
                format_fraction_pct(1.0 - point.energy_j / base.energy_j),
                format_fraction_pct(point.time_s / base.time_s - 1.0,
                                    precision=2),
                f"{point.edp() / base.edp():.3f}")
    report.add_note("DVFS/combined frequency chosen per workload to minimize energy")
    report.add_note("runtime cost for 'mapg' is its gating penalty; for DVFS "
                    "it is the stretched compute time")
    return report


def test_f17_dvfs(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {(row[0], row[1]): row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    for workload in ("mcf_like", "gcc_like"):
        dvfs = rows[(workload, "dvfs")]
        mapg = rows[(workload, "mapg")]
        combined = rows[(workload, "combined")]
        # Combined strictly beats both alone in energy.
        assert pct(combined[3]) > pct(dvfs[3])
        assert pct(combined[3]) > pct(mapg[3])
        # MAPG's runtime cost is far below DVFS's.
        assert pct(mapg[4]) < 0.5 * max(0.01, pct(dvfs[4]))
        # MAPG has the best single-technique EDP.
        assert float(mapg[5]) <= float(dvfs[5]) + 1e-9


if __name__ == "__main__":
    print(build_report().render())
