"""[F18] Phase-resolved behaviour: MAPG tracking the program over time.

Runs the phase-heavy milc-like workload (alternating memory-intense and
compute-intense phases) with timeline recording and buckets the gated
stalls into fixed cycle windows.  A per-access mechanism must *follow* the
phases: sleep time concentrates in the memory phases and vanishes in the
compute phases, with no retuning between them.

Shape claims: window-to-window stall time swings visibly (the phases are
there, compressed by cycle-equal windowing — memory phases take most of
the cycles), and per-window sleep tracks per-window stall time tightly
(correlation > 0.9): the controller's decisions are local, not a global
average.
"""

from _common import FULL_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import with_policy
from repro.sim.simulator import Simulator
from repro.workloads import generate_trace

WORKLOAD = "milc_like"
NUM_WINDOWS = 24


def build_report() -> ExperimentReport:
    config = with_policy(SystemConfig(), "mapg")
    simulator = Simulator(config, workload=WORKLOAD, seed=11,
                          record_timeline=True)
    result = simulator.run(generate_trace(WORKLOAD, FULL_OPS, seed=11))

    window_cycles = result.total_cycles // NUM_WINDOWS + 1
    stalls = [0] * NUM_WINDOWS
    stall_cycles = [0] * NUM_WINDOWS
    sleep_cycles = [0] * NUM_WINDOWS
    for event in simulator.timeline:
        index = min(NUM_WINDOWS - 1, event.start_cycle // window_cycles)
        stalls[index] += 1
        stall_cycles[index] += event.stall_cycles
        for state, cycles in event.intervals:
            if state in ("sleep", "sleep_retention"):
                sleep_cycles[index] += cycles

    report = ExperimentReport(
        "F18", f"Phase-resolved MAPG on {WORKLOAD} "
               f"({NUM_WINDOWS} windows of {window_cycles:,} cycles)",
        headers=["window", "offchip stalls", "stall time", "sleep time",
                 "sleep/stall"])
    for index in range(NUM_WINDOWS):
        stall_share = stall_cycles[index] / window_cycles
        sleep_share = sleep_cycles[index] / window_cycles
        ratio = sleep_cycles[index] / max(1, stall_cycles[index])
        report.add_row(index, stalls[index],
                       format_fraction_pct(stall_share),
                       format_fraction_pct(sleep_share),
                       f"{ratio:.2f}")
    correlation = _correlation(stall_cycles, sleep_cycles)
    report.add_note(f"sleep-vs-stall correlation across windows: {correlation:.3f}")
    report.add_note("the workload alternates memory-heavy and compute-heavy phases")
    return report


def _correlation(xs, ys) -> float:
    n = len(xs)
    mx = sum(xs) / n
    my = sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def test_f18_phases(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    stall_shares = [float(row[2].split()[0]) for row in report.rows]
    # Phase contrast: the most memory-bound window stalls visibly more
    # than the least (windows are cycle-equal, so heavy phases — which
    # take most of the cycles — bound the achievable contrast).
    assert max(stall_shares) > 1.3 * min(stall_shares)
    correlation = float(report.notes[0].split(":")[-1])
    assert correlation > 0.9


if __name__ == "__main__":
    print(build_report().render())
