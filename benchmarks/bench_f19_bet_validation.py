"""[F19] Break-even validation — and the penalty tax, quantified.

The analyzer's "minimum gateable stall" (drain + wake + BET) comes from
circuit algebra.  This experiment finds the *empirical* crossover — the
shortest stall where gating beats riding it out clock-gated — through the
completely independent energy-ledger path (state powers x intervals +
event energies + background power), for two wake strategies:

* **early wake** (oracle-timed, zero penalty): the pure circuit question.
  Its measured crossover lands a dozen cycles above the analytic figure —
  the gap is the drain window's clock-tree surcharge (draining burns clock
  power that a clock-gated stall would not), a second-order term the
  analytic threshold omits and the policy's default guard margin exists to
  absorb.
* **naive** (return-triggered wake): every gate stretches execution by the
  wake latency, burning background + leakage power over the extension.
  Its measured crossover is roughly *double* the analytic figure — the
  quantified reason MAPG needs early wakeup, visible in pure energy terms
  before any performance argument.
"""

from _common import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.config import GatingConfig, SystemConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController
from repro.core.policies import NaivePolicy, OraclePolicy
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel, PowerState
from repro.power.technology import get_technology

MAX_STALL = 400


def energy_of_outcome(power_model, outcome) -> float:
    """Full-ledger energy of one stall outcome, background included."""
    energy = outcome.event_energy_j
    for state, cycles in outcome.intervals:
        energy += power_model.interval_energy_j(state, cycles)
    energy += (power_model.background_power_w
               * outcome.total_cycles / power_model.circuit.frequency_hz)
    return energy


def ungated_energy(power_model, stall: int) -> float:
    """Energy of riding the same stall out clock-gated."""
    return (power_model.interval_energy_j(PowerState.STALL, stall)
            + power_model.background_power_w
            * stall / power_model.circuit.frequency_hz)


def measure_crossover(policy_cls, analyzer, power_model):
    """Smallest stall where the gated ledger beats the ungated one."""
    crossover = None
    deltas = {}
    for stall in range(1, MAX_STALL + 1):
        controller = MapgController(policy_cls(analyzer), analyzer, power_model)
        outcome = controller.process_stall(pc=0, bank=0,
                                           actual_stall_cycles=stall)
        if not outcome.gated or outcome.aborted:
            deltas[stall] = 0.0
            continue
        delta = ungated_energy(power_model, stall) - \
            energy_of_outcome(power_model, outcome)
        deltas[stall] = delta
        if crossover is None and delta > 0.0:
            crossover = stall
    return crossover, deltas


def build_report() -> ExperimentReport:
    config = SystemConfig()
    tech = get_technology(config.technology)
    circuit = SleepTransistorNetwork(tech).characterize(
        config.core.frequency_hz, config.core.pipeline_depth)
    power_model = CorePowerModel(circuit)
    analyzer = BreakEvenAnalyzer(circuit, GatingConfig(policy="naive"))

    timed_crossover, timed_deltas = measure_crossover(
        OraclePolicy, analyzer, power_model)
    naive_crossover, __ = measure_crossover(
        NaivePolicy, analyzer, power_model)
    analytic = analyzer.min_gateable_stall_cycles

    report = ExperimentReport(
        "F19", "Analytic break-even vs measured crossovers "
               f"({config.technology}, full-ledger accounting)",
        headers=["quantity", "cycles"])
    report.add_row("drain", analyzer.drain_cycles)
    report.add_row("wake", analyzer.wake_cycles)
    report.add_row("BET (sleep)", analyzer.bet_cycles)
    report.add_row("analytic min gateable stall", analytic)
    report.add_row("measured crossover, early wake", timed_crossover)
    report.add_row("measured crossover, naive wake", naive_crossover)
    report.add_note("early-wake crossover validates the circuit algebra "
                    "against the independent energy-ledger path; the "
                    "dozen-cycle gap is the drain window's clock surcharge, "
                    "which the policy's guard margin absorbs")
    report.add_note("the naive-vs-early gap is the penalty tax: the late "
                    "wake's runtime extension burns background + leakage, "
                    "~doubling the stall length gating needs to pay off")
    report.timed_crossover = timed_crossover       # type: ignore[attr-defined]
    report.naive_crossover = naive_crossover       # type: ignore[attr-defined]
    report.analytic_crossover = analytic           # type: ignore[attr-defined]
    report.timed_deltas = timed_deltas             # type: ignore[attr-defined]
    return report


def test_f19_bet_validation(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    timed = report.timed_crossover
    naive = report.naive_crossover
    analytic = report.analytic_crossover
    assert timed is not None and naive is not None
    # With the wake hidden, ledger and algebra agree up to the drain
    # window's clock surcharge (absorbed by the guard margin in practice).
    assert analytic <= timed <= analytic + 16
    # The late wake's system cost roughly doubles the effective break-even.
    assert naive > 1.5 * timed
    # Net saving is monotone non-decreasing past the early-wake crossover.
    deltas = report.timed_deltas
    post = [deltas[s] for s in range(timed, max(deltas) + 1)]
    assert all(b >= a - 1e-15 for a, b in zip(post, post[1:]))


if __name__ == "__main__":
    print(build_report().render())
