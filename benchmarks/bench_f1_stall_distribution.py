"""[F1] Motivation: off-chip stall lengths and time spent stalled.

Regenerates the motivation figure: for every workload, the fraction of
execution time the core sits in memory stalls and the distribution
(p25/p50/p75/p95) of individual off-chip stall lengths, alongside the
circuit's break-even + overhead threshold.  Shape claims: memory-bound
workloads stall for a large share of time, and the *typical* stall is a
small multiple of the minimum gateable stall — so a policy that gates
blindly is exposed to the short-stall tail.
"""

from _common import FULL_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.sim.runner import with_policy
from repro.sim.simulator import Simulator
from repro.workloads import generate_trace, profile_names


def build_report() -> ExperimentReport:
    config = with_policy(SystemConfig(), "never")
    report = ExperimentReport(
        "F1", "Off-chip stall time and stall-length distribution",
        headers=["workload", "stall time", "stalls", "p25", "p50", "p75",
                 "p95", "mean"])
    threshold = None
    for name in profile_names():
        simulator = Simulator(config, workload=name, seed=11)
        result = simulator.run(generate_trace(name, FULL_OPS, seed=11))
        histogram = simulator.stall_histogram
        if threshold is None:
            analyzer = BreakEvenAnalyzer(simulator.circuit, config.gating)
            threshold = analyzer.min_gateable_stall_cycles
        report.add_row(
            name,
            format_fraction_pct(result.stall_fraction),
            int(result.offchip_stalls),
            f"{histogram.percentile(25):.0f}",
            f"{histogram.percentile(50):.0f}",
            f"{histogram.percentile(75):.0f}",
            f"{histogram.percentile(95):.0f}",
            f"{histogram.mean:.0f}",
        )
    report.add_note(
        f"minimum gateable stall (drain + wake + BET) = {threshold} cycles")
    report.add_note("stall lengths in core cycles at 2 GHz")
    return report


def test_f1_stall_distribution(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {row[0]: row for row in report.rows}
    # Shape: mcf-like stalls far more than povray-like.
    mcf_pct = float(rows["mcf_like"][1].split()[0])
    povray_pct = float(rows["povray_like"][1].split()[0])
    assert mcf_pct > 3 * povray_pct
    assert povray_pct < 30.0


if __name__ == "__main__":
    print(build_report().render())
