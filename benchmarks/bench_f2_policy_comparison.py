"""[F2] Energy savings vs performance penalty, per workload, per policy.

The headline figure.  Every policy replays the identical trace per
workload; results are relative to the never-gate (clock-gating-only)
baseline.  Shape claims: naive gating saves energy on memory-bound
workloads but pays a large wake-latency penalty; MAPG keeps the savings at
a small fraction of naive's penalty; oracle bounds both.
"""

from _common import FULL_OPS, SWEEP_JOBS, emit, run_once, sweep_cache

from repro.analysis.energy import summarize_comparisons
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_policy_comparison
from repro.workloads import profile_names

POLICIES = ["never", "naive", "bet_guard", "mapg", "oracle"]


def build_report() -> ExperimentReport:
    matrix = run_policy_comparison(
        SystemConfig(), profile_names(), POLICIES, FULL_OPS, seed=11,
        jobs=SWEEP_JOBS, cache=sweep_cache())
    comparisons = summarize_comparisons(matrix)
    report = ExperimentReport(
        "F2", "Energy saving / performance penalty vs never-gate baseline",
        headers=["workload", "policy", "energy saving", "perf penalty",
                 "EDP ratio", "sleep time"])
    for workload in profile_names():
        for policy in POLICIES[1:]:
            delta = next(c for c in comparisons[policy]
                         if c.workload == workload)
            result = matrix[workload][policy]
            report.add_row(
                workload, policy,
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2),
                f"{delta.edp_ratio:.3f}",
                format_fraction_pct(result.sleep_fraction),
            )
    report.add_note("all policies replay the identical trace per workload")
    report.add_note("EDP ratio < 1 means better energy-delay product than baseline")
    return report


def test_f2_policy_comparison(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {(row[0], row[1]): row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    # Shape claims on the most memory-bound workload.
    naive = rows[("mcf_like", "naive")]
    mapg = rows[("mcf_like", "mapg")]
    oracle = rows[("mcf_like", "oracle")]
    assert pct(naive[2]) > 10.0            # naive saves real energy...
    assert pct(naive[3]) > 3 * pct(mapg[3])  # ...at several x MAPG's penalty
    assert pct(mapg[2]) >= 0.8 * pct(oracle[2])  # MAPG ~recovers oracle savings
    assert pct(oracle[3]) == 0.0


if __name__ == "__main__":
    print(build_report().render())
