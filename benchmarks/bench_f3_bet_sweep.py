"""[F3] Sensitivity to break-even time.

Sweeps the effective BET from 0.25x to 16x the circuit-derived value on one
memory-bound and one moderate workload.  Shape claims: savings degrade as
BET grows (fewer stalls clear the threshold), collapsing toward zero once
BET exceeds the typical stall length; the gate rate falls monotonically.
"""

from _common import SWEEP_OPS, emit, run_once, run_sweep

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.exec import JobSpec
from repro.sim.runner import with_policy

SCALES = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
WORKLOADS = ("mcf_like", "gcc_like")


def build_report() -> ExperimentReport:
    config = SystemConfig()
    report = ExperimentReport(
        "F3", "Energy saving vs break-even time (BET scale sweep)",
        headers=["workload", "BET scale", "BET (cyc)", "gate rate",
                 "energy saving", "perf penalty"])
    for workload in WORKLOADS:
        specs = [JobSpec(config=with_policy(config, "never"),
                         profile=workload, num_ops=SWEEP_OPS, seed=11)]
        specs += [JobSpec(config=with_policy(config, "mapg", bet_scale=scale),
                          profile=workload, num_ops=SWEEP_OPS, seed=11)
                  for scale in SCALES]
        baseline, *variants = run_sweep(specs)
        for scale, result in zip(SCALES, variants):
            delta = result.compare(baseline)
            gate_rate = (result.gated_stalls / result.offchip_stalls
                         if result.offchip_stalls else 0.0)
            report.add_row(
                workload, f"{scale:g}x", _bet_cycles(config, scale),
                format_fraction_pct(gate_rate),
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2))
    report.add_note("gate rate = gated stalls / off-chip stalls")
    report.add_note("savings collapse once BET exceeds the typical stall length")
    return report


def _bet_cycles(config: SystemConfig, scale: float) -> int:
    from repro.config import GatingConfig
    from repro.core.breakeven import BreakEvenAnalyzer
    from repro.power.gating import SleepTransistorNetwork
    from repro.power.technology import get_technology

    circuit = SleepTransistorNetwork(get_technology(config.technology)).characterize(
        config.core.frequency_hz, config.core.pipeline_depth)
    analyzer = BreakEvenAnalyzer(circuit, GatingConfig(bet_scale=scale))
    return analyzer.bet_cycles


def test_f3_bet_sweep(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    # Shape: for each workload, gate rate non-increasing across the sweep.
    for workload in WORKLOADS:
        rates = [float(row[3].split()[0]) for row in report.rows
                 if row[0] == workload]
        assert all(a >= b - 1.0 for a, b in zip(rates, rates[1:]))
        savings = [float(row[4].split()[0]) for row in report.rows
                   if row[0] == workload]
        assert savings[-1] < savings[2]  # 16x worse than 1x


if __name__ == "__main__":
    print(build_report().render())
