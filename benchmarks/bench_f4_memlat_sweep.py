"""[F4] Sensitivity to DRAM latency.

Scales every DRAM timing component from 0.5x to 3x and measures MAPG on a
memory-bound and a moderate workload.  Shape claims: slower memory means
longer stalls, hence more sleep per event and higher savings; penalties
stay flat because early wakeup still hides the (unchanged) wake latency.
"""

from _common import SWEEP_OPS, emit, run_once, run_sweep

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.exec import JobSpec
from repro.sim.runner import with_policy

SCALES = (0.5, 0.75, 1.0, 1.5, 2.0, 3.0)
WORKLOADS = ("mcf_like", "gcc_like")


def build_report() -> ExperimentReport:
    base = SystemConfig()
    report = ExperimentReport(
        "F4", "MAPG vs DRAM latency (all timing components scaled)",
        headers=["workload", "latency scale", "mean stall (cyc)",
                 "energy saving", "perf penalty", "sleep time"])
    for workload in WORKLOADS:
        specs = []
        for scale in SCALES:
            config = base.replace(dram=base.dram.scaled(scale))
            specs.append(JobSpec(config=with_policy(config, "never"),
                                 profile=workload, num_ops=SWEEP_OPS, seed=11))
            specs.append(JobSpec(config=with_policy(config, "mapg"),
                                 profile=workload, num_ops=SWEEP_OPS, seed=11))
        results = run_sweep(specs)
        for index, scale in enumerate(SCALES):
            never = results[2 * index]
            mapg = results[2 * index + 1]
            delta = mapg.compare(never)
            mean_stall = (never.controller_counters.get("offchip_stall_cycles", 0)
                          / max(1, never.offchip_stalls))
            report.add_row(
                workload, f"{scale:g}x", f"{mean_stall:.0f}",
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2),
                format_fraction_pct(mapg.sleep_fraction))
    report.add_note("wake latency and BET stay constant; only DRAM timing scales")
    return report


def test_f4_memlat_sweep(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        sleep_shares = [float(row[5].split()[0]) for row in report.rows
                        if row[0] == workload]
        # Shape: sleep share grows with memory latency.
        assert sleep_shares[0] < sleep_shares[-1]
        stalls = [float(row[2]) for row in report.rows if row[0] == workload]
        assert stalls == sorted(stalls)


if __name__ == "__main__":
    print(build_report().render())
