"""[F5] Wakeup-latency hiding.

Sweeps the wake latency from 0.5x to 8x the circuit value and compares the
performance penalty of naive (return-triggered wake) against MAPG
(predictive early wake).  Shape claims: naive's penalty grows linearly with
wake latency — it serializes the full wake after every data return — while
MAPG's stays near-flat until the wake latency outgrows the predictable part
of the stall.
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

SCALES = (0.5, 1.0, 2.0, 4.0, 8.0)
WORKLOADS = ("mcf_like", "gcc_like")


def build_report() -> ExperimentReport:
    config = SystemConfig()
    report = ExperimentReport(
        "F5", "Performance penalty vs wake latency: naive vs MAPG",
        headers=["workload", "wake scale", "naive penalty", "mapg penalty",
                 "hidden fraction"])
    for workload in WORKLOADS:
        for scale in SCALES:
            naive = run_workload(
                with_policy(config, "naive", wake_scale=scale),
                workload, SWEEP_OPS, seed=11)
            mapg = run_workload(
                with_policy(config, "mapg", wake_scale=scale),
                workload, SWEEP_OPS, seed=11)
            hidden = 1.0 - (mapg.performance_penalty
                            / max(1e-12, naive.performance_penalty))
            report.add_row(
                workload, f"{scale:g}x",
                format_fraction_pct(naive.performance_penalty, precision=2),
                format_fraction_pct(mapg.performance_penalty, precision=2),
                format_fraction_pct(hidden))
    report.add_note("hidden fraction = share of naive's penalty MAPG removes")
    return report


def test_f5_wakeup_hiding(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        rows = [row for row in report.rows if row[0] == workload]
        naive = [float(row[2].split()[0]) for row in rows]
        mapg = [float(row[3].split()[0]) for row in rows]
        # Naive penalty grows monotonically with wake latency.
        assert naive == sorted(naive)
        # MAPG hides most of it at every point.
        assert all(m < 0.6 * n for m, n in zip(mapg, naive))


if __name__ == "__main__":
    print(build_report().render())
