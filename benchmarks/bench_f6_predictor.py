"""[F6] Residual-latency predictor accuracy.

Runs MAPG with each predictor on every workload and reports mean absolute
error (cycles), mean absolute percentage error, and the resulting
performance penalty.  Shape claims: the (pc, bank)-indexed history table
beats the global scalar predictors, and lower prediction error translates
into lower penalty (better-timed early wakeups).
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy
from repro.workloads import profile_names

PREDICTORS = ("fixed", "last_value", "ewma", "table")
WORKLOADS = ("mcf_like", "libquantum_like", "lbm_like", "gcc_like")


def build_report() -> ExperimentReport:
    config = SystemConfig()
    report = ExperimentReport(
        "F6", "Latency-predictor accuracy and its penalty impact (MAPG)",
        headers=["workload", "predictor", "MAE (cyc)", "MAPE",
                 "perf penalty", "gate rate"])
    for workload in WORKLOADS:
        for predictor in PREDICTORS:
            result = run_workload(
                with_policy(config, "mapg", predictor=predictor),
                workload, SWEEP_OPS, seed=11)
            gate_rate = (result.gated_stalls / result.offchip_stalls
                         if result.offchip_stalls else 0.0)
            report.add_row(
                workload, predictor,
                f"{result.prediction_mae_cycles:.1f}",
                format_fraction_pct(result.prediction_mape),
                format_fraction_pct(result.performance_penalty, precision=2),
                format_fraction_pct(gate_rate))
    report.add_note("MAE/MAPE measured against every off-chip stall's true length")
    return report


def test_f6_predictor(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for workload in WORKLOADS:
        rows = {row[1]: row for row in report.rows if row[0] == workload}
        table_mae = float(rows["table"][2])
        fixed_mae = float(rows["fixed"][2])
        assert table_mae < fixed_mae


if __name__ == "__main__":
    print(build_report().render())
