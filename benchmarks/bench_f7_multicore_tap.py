"""[F7] Multi-core gating with TAP wake-token arbitration.

Runs a 4-core memory-bound multiprogrammed mix with MAPG per core, varying
the number of wake tokens (plus a token-free configuration).  Shape claims:
fewer tokens bound the worst-case simultaneous wake count (the grid-noise
guarantee) at a modest additional penalty; energy is nearly unchanged
because token-blocked cores keep sleeping.
"""

from _common import MULTICORE_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig, TokenConfig
from repro.sim.runner import run_multicore, with_policy

NUM_CORES = 4
MIX = ("mcf_like", "mcf_like", "lbm_like", "libquantum_like")
TOKEN_SETTINGS = (0, 4, 2, 1)  # 0 = arbitration off


def build_report() -> ExperimentReport:
    report = ExperimentReport(
        "F7", f"{NUM_CORES}-core mix with TAP wake tokens (MAPG per core)",
        headers=["tokens", "total energy (mJ)", "mean penalty",
                 "deferred grants", "forced grants", "deferred cyc/wake"])
    for tokens in TOKEN_SETTINGS:
        token_config = TokenConfig(
            enabled=tokens > 0, wake_tokens=max(1, tokens),
            token_wait_limit_cycles=500)
        config = with_policy(
            SystemConfig(num_cores=NUM_CORES, token=token_config), "mapg")
        result = run_multicore(config, list(MIX), MULTICORE_OPS, seed=13)
        deferred = result.token_counters.get("deferred_grants", 0)
        forced = result.token_counters.get("forced_grants", 0)
        requests = result.token_counters.get("requests", 0)
        per_wake = (result.token_counters.get("deferred_cycles", 0)
                    / max(1, requests))
        report.add_row(
            "off" if tokens == 0 else tokens,
            f"{result.total_energy_j * 1e3:.3f}",
            format_fraction_pct(result.mean_performance_penalty, precision=2),
            int(deferred), int(forced), f"{per_wake:.1f}")
    report.add_note("tokens bound simultaneous wakes -> bound worst-case rush current")
    report.add_note("token-blocked cores keep sleeping, so energy is ~unchanged")
    return report


def test_f7_multicore_tap(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {str(row[0]): row for row in report.rows}
    # Fewer tokens -> more deferrals.
    assert int(rows["1"][3]) >= int(rows["2"][3]) >= int(rows["4"][3])
    # Energy within a few percent of the unarbitrated run.
    energy_off = float(rows["off"][1])
    energy_one = float(rows["1"][1])
    assert abs(energy_one - energy_off) / energy_off < 0.1


if __name__ == "__main__":
    print(build_report().render())
