"""[F8] Ablation of MAPG's components.

Removes one mechanism at a time on the most memory-bound workload:

* full MAPG (table predictor, early wakeup, guard margin)
* no early wakeup (gating decision unchanged, wake on data return)
* no predictor (static estimate only = bet_guard-with-margin)
* no guard margin
* oracle predictor (upper bound for the prediction component)

Shape claims: early wakeup is where the penalty reduction lives; the
predictor is where the *decision quality* (skipping short stalls) lives;
the margin trades a little saving for penalty robustness.
"""

from _common import SWEEP_OPS, emit, run_once

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_workload, with_policy

WORKLOAD = "mcf_like"

VARIANTS = [
    ("full mapg", dict(policy="mapg")),
    ("no early wakeup", dict(policy="mapg", early_wakeup=False)),
    ("no early margin", dict(policy="mapg", early_margin_cycles=0)),
    ("no predictor", dict(policy="mapg", predictor="fixed")),
    ("no guard margin", dict(policy="mapg", guard_margin_cycles=0)),
    ("adaptive bias", dict(policy="mapg_adaptive")),
    ("oracle predictor", dict(policy="mapg", predictor="oracle")),
]


def build_report() -> ExperimentReport:
    config = SystemConfig()
    baseline = run_workload(with_policy(config, "never"),
                            WORKLOAD, SWEEP_OPS, seed=11)
    report = ExperimentReport(
        "F8", f"MAPG component ablation on {WORKLOAD}",
        headers=["variant", "energy saving", "perf penalty", "gate rate",
                 "MAE (cyc)"])
    for label, variant in VARIANTS:
        overrides = dict(variant)  # module-level spec stays pristine
        policy = overrides.pop("policy")
        result = run_workload(with_policy(config, policy, **overrides),
                              WORKLOAD, SWEEP_OPS, seed=11)
        delta = result.compare(baseline)
        gate_rate = (result.gated_stalls / result.offchip_stalls
                     if result.offchip_stalls else 0.0)
        report.add_row(
            label,
            format_fraction_pct(delta.energy_saving),
            format_fraction_pct(delta.performance_penalty, precision=2),
            format_fraction_pct(gate_rate),
            f"{result.prediction_mae_cycles:.1f}")
    report.add_note("baseline for savings/penalty is the never-gate run")
    return report


def test_f8_ablation(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {row[0]: row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    # Early wakeup is the penalty mechanism.
    assert pct(rows["no early wakeup"][2]) > 2 * pct(rows["full mapg"][2])
    # Oracle predictor bounds full MAPG's penalty from below.
    assert pct(rows["oracle predictor"][2]) <= pct(rows["full mapg"][2]) + 0.01


if __name__ == "__main__":
    print(build_report().render())
