"""[F9] Staggered wakeup design space: rush current vs wake latency.

Pure circuit-model experiment on the 45 nm node: sweep the number of
header stagger groups from the legal minimum upward and report the
worst-case rush current and resulting wake latency.  Shape claims: rush
current falls as 1/groups; wake latency grows once the current ceiling is
under-used; the minimum-group point is the knee a designer picks.
"""

from _common import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import get_technology

FREQUENCY_HZ = 2e9
NODE = "45nm"
GROUP_MULTIPLIERS = (1.0, 1.5, 2.0, 3.0, 4.0, 8.0)


def build_report() -> ExperimentReport:
    tech = get_technology(NODE)
    network = SleepTransistorNetwork(tech)
    minimum = network.min_stagger_groups()
    report = ExperimentReport(
        "F9", f"Stagger groups vs rush current and wake latency ({NODE})",
        headers=["groups", "rush peak (A)", "vs ceiling", "wake (ns)",
                 "wake (cyc @2GHz)"])
    for multiplier in GROUP_MULTIPLIERS:
        groups = max(minimum, int(round(minimum * multiplier)))
        rush = network.rush_peak_current_a(groups)
        wake_s = network.wake_latency_s(groups)
        report.add_row(
            groups,
            f"{rush:.3f}",
            f"{rush / tech.max_rush_current_a:.2f}",
            f"{wake_s * 1e9:.2f}",
            int(round(wake_s * FREQUENCY_HZ + 0.5)))
    report.add_note(f"rush-current ceiling: {tech.max_rush_current_a} A; "
                    f"legal minimum: {minimum} groups")
    report.add_note("below the minimum the grid-noise budget is violated "
                    "(the model refuses)")
    return report


def test_f9_stagger(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rushes = [float(row[1]) for row in report.rows]
    wakes = [float(row[3]) for row in report.rows]
    tech = get_technology(NODE)
    assert all(r <= tech.max_rush_current_a * 1.0001 for r in rushes)
    assert rushes == sorted(rushes, reverse=True)
    assert wakes == sorted(wakes)


if __name__ == "__main__":
    print(build_report().render())
