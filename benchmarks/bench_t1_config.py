"""[T1] System configuration table.

Regenerates the evaluation's platform table: core, cache, DRAM, and
technology parameters of the baseline system every other experiment uses.
"""

from _common import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.config import default_config
from repro.sim.simulator import static_offchip_latency_cycles


def build_report() -> ExperimentReport:
    config = default_config()
    report = ExperimentReport(
        "T1", "Baseline system configuration", headers=["component", "setting"])
    core = config.core
    report.add_row("core clock", f"{core.frequency_hz / 1e9:.1f} GHz")
    report.add_row("pipeline depth", core.pipeline_depth)
    report.add_row("issue width", core.issue_width)
    for cache in (config.l1, config.l2):
        report.add_row(
            f"{cache.name} cache",
            f"{cache.size_bytes // 1024} KiB, {cache.associativity}-way, "
            f"{cache.line_bytes} B lines, {cache.hit_latency_cycles} cyc, "
            f"{cache.mshr_entries} MSHRs")
    dram = config.dram
    report.add_row(
        "DRAM organization",
        f"{dram.channels} ch x {dram.ranks_per_channel} rank x "
        f"{dram.banks_per_rank} banks, {dram.row_bytes // 1024} KiB rows")
    report.add_row(
        "DRAM timing",
        f"tCAS {dram.t_cas_ns} ns, tRCD {dram.t_rcd_ns} ns, "
        f"tRP {dram.t_rp_ns} ns, tRAS {dram.t_ras_ns} ns")
    report.add_row(
        "memory path overheads",
        f"controller {dram.controller_overhead_ns} ns, "
        f"bus {dram.bus_transfer_ns} ns, queue {dram.queue_service_ns} ns")
    report.add_row("technology", config.technology)
    report.add_row("static off-chip estimate",
                   f"{static_offchip_latency_cycles(config)} cycles")
    report.add_note("every experiment below starts from this configuration")
    return report


def test_t1_config(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    assert len(report.rows) >= 8


if __name__ == "__main__":
    print(build_report().render())
