"""[T2] Power-gating circuit characterization per technology node.

Regenerates the circuit table: header width, stagger groups, drain/wake
latency, per-event overhead energy, and break-even time at each node.
The shape claims: BET shrinks as nodes get leakier (gating pays off sooner
at 32 nm than 90 nm), and both BET and wake latency sit at tens of
nanoseconds — the same order as one DRAM access, which is the paper's
entire motivation.
"""

from _common import emit, run_once

from repro.analysis.report import ExperimentReport
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import TECHNOLOGY_NODES
from repro.units import format_si

FREQUENCY_HZ = 2e9


def build_report() -> ExperimentReport:
    report = ExperimentReport(
        "T2", "Sleep-transistor network characterization (2 GHz core)",
        headers=["node", "width (mm)", "groups", "drain (cyc)",
                 "wake (ns)", "wake (cyc)", "event E (nJ)", "BET (ns)",
                 "BET (cyc)", "residual (mW)"])
    bets = []
    for name in ("90nm", "65nm", "45nm", "32nm"):
        tech = TECHNOLOGY_NODES[name]
        network = SleepTransistorNetwork(tech)
        circuit = network.characterize(FREQUENCY_HZ)
        event_nj = network.overhead_energy_j(circuit.breakeven_s) * 1e9
        report.add_row(
            name,
            f"{circuit.switch_width_um / 1000:.0f}",
            circuit.stagger_groups,
            circuit.drain_cycles,
            f"{circuit.wake_latency_s * 1e9:.1f}",
            circuit.wake_cycles,
            f"{event_nj:.2f}",
            f"{circuit.breakeven_s * 1e9:.1f}",
            circuit.breakeven_cycles,
            f"{circuit.sleep_residual_power_w * 1e3:.1f}",
        )
        bets.append(circuit.breakeven_s)
    report.add_note("BET shrinks with scaling: leakier nodes recoup overhead faster")
    report.add_note(
        f"wake+BET are both ~1 DRAM access "
        f"({format_si(bets[-1], 's')} .. {format_si(bets[0], 's')}) — "
        "the regime where a per-access policy is needed")
    return report


def test_t2_circuit(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    # Shape claim: BET (cycles, column 8) strictly decreasing across nodes.
    bet_cycles = [row[8] for row in report.rows]
    assert bet_cycles == sorted(bet_cycles, reverse=True)


if __name__ == "__main__":
    print(build_report().render())
