"""[T3] Evaluation summary: mean savings, penalty, and EDP per policy.

Averages the F2 matrix over all eleven workloads.  Shape claims: MAPG's
mean energy saving is within a few points of oracle's at an order of
magnitude lower penalty than naive; its geometric-mean EDP ratio is the
best of the realizable policies.
"""

from _common import FULL_OPS, SWEEP_JOBS, emit, run_once, sweep_cache

from repro.analysis.energy import (
    geomean_edp_ratio,
    mean_energy_saving,
    mean_penalty,
    summarize_comparisons,
)
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_policy_comparison
from repro.workloads import profile_names

POLICIES = ["never", "naive", "bet_guard", "mapg", "oracle"]


def build_report() -> ExperimentReport:
    matrix = run_policy_comparison(
        SystemConfig(), profile_names(), POLICIES, FULL_OPS, seed=11,
        jobs=SWEEP_JOBS, cache=sweep_cache())
    comparisons = summarize_comparisons(matrix)
    report = ExperimentReport(
        "T3", "Summary over all workloads (vs never-gate baseline)",
        headers=["policy", "mean energy saving", "mean perf penalty",
                 "geomean EDP ratio"])
    for policy in POLICIES[1:]:
        per_policy = comparisons[policy]
        report.add_row(
            policy,
            format_fraction_pct(mean_energy_saving(per_policy)),
            format_fraction_pct(mean_penalty(per_policy), precision=2),
            f"{geomean_edp_ratio(per_policy):.3f}")
    report.add_note(f"arithmetic means over {len(profile_names())} workloads")
    return report


def test_t3_summary(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    rows = {row[0]: row for row in report.rows}

    def pct(cell):
        return float(cell.split()[0])

    # MAPG close to oracle on savings, far better than naive on penalty.
    assert pct(rows["mapg"][1]) >= 0.75 * pct(rows["oracle"][1])
    assert pct(rows["mapg"][2]) < 0.5 * pct(rows["naive"][2])
    # MAPG has the best EDP among realizable (non-oracle) policies.
    edp = {name: float(rows[name][3]) for name in ("naive", "bet_guard", "mapg")}
    assert edp["mapg"] == min(edp.values())


if __name__ == "__main__":
    print(build_report().render())
