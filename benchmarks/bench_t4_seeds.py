"""[T4] Seed sensitivity: error bars on the headline numbers.

Every result in this evaluation comes from synthetic traces, so a reviewer
must ask: how much of the number is the mechanism and how much is the
particular random trace?  This table replicates the MAPG-vs-never
comparison across five independent trace seeds per workload.

Shape claims: the coefficient of variation of the energy saving is small
(the mechanism, not the trace instance, sets the number), and every seed's
penalty stays under 1 %.
"""

from _common import SWEEP_OPS, SWEEP_JOBS, emit, run_once, sweep_cache

from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct
from repro.config import SystemConfig
from repro.sim.runner import run_seed_study, with_policy

SEEDS = (11, 23, 37, 51, 73)
WORKLOADS = ("mcf_like", "libquantum_like", "gcc_like", "povray_like")


def build_report() -> ExperimentReport:
    config = with_policy(SystemConfig(), "mapg")
    cache = sweep_cache()
    report = ExperimentReport(
        "T4", f"MAPG across {len(SEEDS)} trace seeds (mean +/- std)",
        headers=["workload", "saving mean", "saving std", "penalty mean",
                 "penalty std", "saving CV"])
    for workload in WORKLOADS:
        study = run_seed_study(config, workload, SWEEP_OPS, SEEDS,
                               jobs=SWEEP_JOBS, cache=cache)
        cv = study.std_saving / max(1e-12, study.mean_saving)
        report.add_row(
            workload,
            format_fraction_pct(study.mean_saving),
            format_fraction_pct(study.std_saving, precision=2),
            format_fraction_pct(study.mean_penalty, precision=2),
            format_fraction_pct(study.std_penalty, precision=3),
            f"{cv:.3f}")
    report.add_note(f"seeds: {SEEDS}; each seed is an independent trace instance")
    report.add_note("CV = std/mean of the energy saving")
    return report


def test_t4_seeds(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    for row in report.rows:
        cv = float(row[5])
        assert cv < 0.25, f"{row[0]} saving varies too much across seeds"
        penalty_mean = float(row[3].split()[0])
        assert penalty_mean < 1.0


if __name__ == "__main__":
    print(build_report().render())
