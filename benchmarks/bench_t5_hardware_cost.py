"""[T5] Controller implementation cost.

Tallies the storage each evaluated policy needs in hardware — the
"negligible area" claim quantified.  Shape claims: even the fullest MAPG
variant fits in ~130 bytes of state (a rounding error next to a 32 KiB
L1), and the baselines are strictly cheaper.
"""

from _common import emit, run_once

from repro.analysis.hardware_cost import estimate_controller_cost
from repro.analysis.report import ExperimentReport
from repro.config import SystemConfig, TokenConfig
from repro.sim.runner import with_policy

VARIANTS = [
    ("never", {}, {}),
    ("naive", {}, {}),
    ("bet_guard", {}, {}),
    ("mapg", {"predictor": "ewma"}, {}),
    ("mapg", {"predictor": "table"}, {}),
    ("mapg_adaptive", {"predictor": "table"}, {}),
    ("mapg_adaptive", {"predictor": "table"},
     {"token": TokenConfig(enabled=True, wake_tokens=2)}),
]


def build_report() -> ExperimentReport:
    report = ExperimentReport(
        "T5", "MAPG controller storage cost per policy variant",
        headers=["policy", "predictor", "table entries", "table bits",
                 "fallback bits", "other bits", "total bytes"])
    for policy, gating_overrides, system_overrides in VARIANTS:
        config = with_policy(SystemConfig(**system_overrides), policy,
                             **gating_overrides)
        cost = estimate_controller_cost(config)
        label = config.gating.predictor if policy.startswith("mapg") else "-"
        report.add_row(
            policy + ("+tokens" if config.token.enabled else ""),
            label, cost.table_entries, cost.table_bits,
            cost.fallback_bits, cost.constant_bits + cost.control_bits,
            f"{cost.total_bytes:.1f}")
    report.add_note("per gated core domain; arithmetic is ~3 adders + 1 comparator")
    report.add_note("for scale: the 32 KiB L1 alongside is ~2900x larger")
    return report


def test_t5_hardware_cost(benchmark):
    report = run_once(benchmark, build_report)
    emit(report)
    totals = {row[0]: float(row[6]) for row in report.rows}
    assert totals["never"] == 0.0
    # The full controller stays comfortably sub-200-byte.
    assert max(totals.values()) < 200.0
    # Cost ordering: never <= naive <= mapg(table).
    assert totals["never"] <= totals["naive"] <= totals["mapg"]


if __name__ == "__main__":
    print(build_report().render())
