#!/usr/bin/env python3
"""Explore the power-gating circuit model: sizing, BET, and the saving curve.

For a chosen technology node (and optionally a junction temperature), print
the sleep-transistor network characterization and an ASCII plot of net
energy saved per gating event as a function of sleep duration — the curve
whose zero crossing *is* the break-even time.

    python examples/breakeven_explorer.py [node] [temperature_C]
    python examples/breakeven_explorer.py 32nm 110
"""

import sys

from repro import SleepTransistorNetwork, get_technology
from repro.power.temperature import leakage_scale_factor
from repro.units import format_si

FREQUENCY_HZ = 2e9
PLOT_WIDTH = 56
PLOT_POINTS = 18


def plot_saving_curve(network: SleepTransistorNetwork) -> None:
    bet = network.breakeven_time_s()
    horizon = 6.0 * bet
    samples = [(i / (PLOT_POINTS - 1)) * horizon for i in range(PLOT_POINTS)]
    values = [network.net_saving_j(t) for t in samples]
    span = max(abs(v) for v in values) or 1.0
    print(f"\nnet saving per gating event vs sleep duration "
          f"(BET = {format_si(bet, 's')}):")
    for t, v in zip(samples, values):
        offset = int((v / span) * (PLOT_WIDTH // 2))
        cells = [" "] * (PLOT_WIDTH + 1)
        cells[PLOT_WIDTH // 2] = "|"
        marker = PLOT_WIDTH // 2 + offset
        cells[marker] = "*"
        label = format_si(t, "s", precision=2)
        print(f"  {label:>10} {''.join(cells)} {v * 1e9:+7.2f} nJ")
    print(f"  {'':>10} {'loses energy':^{PLOT_WIDTH // 2}}"
          f"{'saves energy':^{PLOT_WIDTH // 2}}")


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "45nm"
    temperature = float(sys.argv[2]) if len(sys.argv) > 2 else 85.0
    tech = get_technology(node)
    network = SleepTransistorNetwork(tech)
    circuit = network.characterize(FREQUENCY_HZ)
    scale = leakage_scale_factor(temperature)

    print(f"technology {tech.name}: Vdd {tech.vdd_v} V, "
          f"leakage {tech.core_leakage_power_w * scale:.2f} W at {temperature:g} C "
          f"({tech.leakage_fraction:.0%} of active power at nominal)")
    print(f"header network : {circuit.switch_width_um / 1000:.0f} mm total width, "
          f"Ron {network.ron_total_ohm * 1e3:.1f} mOhm, "
          f"{circuit.stagger_groups} stagger groups")
    print(f"wake latency   : {format_si(circuit.wake_latency_s, 's')} "
          f"({circuit.wake_cycles} cycles at 2 GHz)")
    print(f"drain latency  : {circuit.drain_cycles} cycles")
    print(f"event overhead : {format_si(circuit.switch_event_energy_j, 'J')} gate drive "
          f"+ up to {format_si(network.rush_charge_energy_j(1.0), 'J')} rail recharge")
    print(f"break-even time: {format_si(circuit.breakeven_s, 's')} "
          f"({circuit.breakeven_cycles} cycles at 2 GHz)")

    plot_saving_curve(network)

    typical_dram_ns = 90e-9
    saving = network.net_saving_j(typical_dram_ns)
    verdict = "WORTH GATING" if saving > 0 else "NOT WORTH GATING"
    print(f"\na typical {format_si(typical_dram_ns, 's')} DRAM stall nets "
          f"{saving * 1e9:+.2f} nJ -> {verdict}")


if __name__ == "__main__":
    main()
