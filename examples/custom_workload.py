#!/usr/bin/env python3
"""Define a custom workload profile and study MAPG on it.

Builds a "database-like" profile from scratch (phase-alternating index
probes and sequential scans), generates a trace, inspects its phase
structure with the windowed trace summaries, builds a two-program mix with
the trace tools, and measures MAPG on both.

    python examples/custom_workload.py
"""

from repro import SystemConfig, Simulator, with_policy
from repro.analysis import format_fraction_pct, format_table
from repro.analysis.ascii_chart import sparkline
from repro.trace.tools import interleave, remap_addresses, window_summaries
from repro.workloads import PhaseSpec, SyntheticTraceGenerator, WorkloadProfile

NUM_OPS = 12_000

database_like = WorkloadProfile(
    name="database_like",
    description="index probes (random) alternating with table scans (sequential)",
    instructions_per_memory_op=6.0,
    sequential_fraction=0.35, strided_fraction=0.05, random_fraction=0.60,
    working_set_bytes=64 * 1024 * 1024,
    write_fraction=0.15, pc_pool_size=48,
    reuse_fraction=0.72, reuse_window_lines=8192, reuse_skew=7.0,
    phases=(
        PhaseSpec(ops=2500, memory_scale=1.6, random_scale=1.4),  # probe burst
        PhaseSpec(ops=2500, memory_scale=0.8, random_scale=0.3),  # scan
    ),
)


def run(trace, label):
    simulator = Simulator(with_policy(SystemConfig(), "mapg"), workload=label)
    result = simulator.run(trace)
    baseline = Simulator(with_policy(SystemConfig(), "never"), workload=label)
    base_result = baseline.run(trace)
    delta = result.compare(base_result)
    return result, delta


def main() -> None:
    generator = SyntheticTraceGenerator(database_like, seed=5)
    trace = list(generator.operations(NUM_OPS))

    # Phase structure: memory accesses per 500-op window.
    windows = window_summaries(trace, window_ops=500)
    intensity = [w["memory_accesses"] / max(1, w["ops"]) for w in windows]
    print(f"{database_like.name}: {len(trace)} ops, "
          f"phase period {database_like.phase_schedule().period} ops")
    print("memory intensity per 500-op window (probe/scan alternation):")
    print("  " + sparkline(intensity) + "\n")

    result, delta = run(trace, database_like.name)

    # A two-program mix on one time-shared core: same program twice, the
    # second copy relocated so the copies never share cache lines.
    relocated = list(remap_addresses(trace, 1 << 40))
    mix = list(interleave([trace, relocated], chunk_ops=50))
    mix_result, mix_delta = run(mix, "database_mix")

    print(format_table(
        ["run", "ipc", "offchip stalls", "energy saving", "perf penalty"],
        [[result.workload, f"{result.ipc:.3f}", int(result.offchip_stalls),
          format_fraction_pct(delta.energy_saving),
          format_fraction_pct(delta.performance_penalty, precision=2)],
         [mix_result.workload, f"{mix_result.ipc:.3f}",
          int(mix_result.offchip_stalls),
          format_fraction_pct(mix_delta.energy_saving),
          format_fraction_pct(mix_delta.performance_penalty, precision=2)]],
        title="MAPG on the custom workload (vs never-gate, same trace)"))
    print("\nthe interleaved mix doubles the footprint, so it misses more —")
    print("and MAPG's saving grows with the extra stall time.")


if __name__ == "__main__":
    main()
