#!/usr/bin/env python3
"""MAPG vs memory-aware DVFS, interactively.

Simulates one workload once per policy, then analytically re-evaluates the
runs across the frequency range to draw the energy/runtime trade-off
curves: DVFS rides a curve (slower = less dynamic energy, more leakage
time), MAPG is a point near the origin (leakage gone, runtime intact), and
the combination rides a lower curve.

    python examples/dvfs_comparison.py [workload]
"""

import sys

from repro import SystemConfig, Simulator, run_workload, with_policy
from repro.analysis import format_table
from repro.power.dvfs import DvfsModel

NUM_OPS = 10_000
FREQUENCIES = (1.0, 0.9, 0.8, 0.7, 0.6, 0.5)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf_like"
    config = SystemConfig()
    model = DvfsModel(Simulator(with_policy(config, "never")).power_model)

    never = run_workload(with_policy(config, "never"), workload, NUM_OPS)
    mapg = run_workload(with_policy(config, "mapg"), workload, NUM_OPS)
    base = model.evaluate(never, 1.0)

    rows = []
    for r in FREQUENCIES:
        dvfs = model.evaluate(never, r)
        combined = model.evaluate(mapg, r)
        rows.append([
            f"{r:g}x",
            f"{1 - dvfs.energy_j / base.energy_j:+.1%}",
            f"{dvfs.time_s / base.time_s - 1:+.1%}",
            f"{1 - combined.energy_j / base.energy_j:+.1%}",
            f"{combined.time_s / base.time_s - 1:+.1%}",
        ])
    print(format_table(
        ["frequency", "DVFS saving", "DVFS slowdown",
         "MAPG+DVFS saving", "MAPG+DVFS slowdown"],
        rows,
        title=f"{workload}: energy/runtime vs the full-speed never-gate run"))

    mapg_point = model.evaluate(mapg, 1.0)
    print(f"\nMAPG alone (at full speed): "
          f"{1 - mapg_point.energy_j / base.energy_j:+.1%} energy, "
          f"{mapg_point.time_s / base.time_s - 1:+.2%} runtime")
    print("DVFS trades runtime for dynamic energy; MAPG removes leakage for")
    print("~free; together they attack both components of the same stalls.")


if __name__ == "__main__":
    main()
