#!/usr/bin/env python3
"""Visualize what MAPG does to individual memory stalls.

Replays a short memory-bound trace with timeline recording on and renders
the first stalls as a proportional text Gantt chart:

    D = drain   S = sleep (full)   R = sleep (retention)
    W = wake    . = idle awake     ~ = ungated stall

so you can *see* the early wakeup hiding under the stall's tail, the
mispredictions, and the ungated short stalls.

    python examples/gating_timeline.py [workload] [policy]
"""

import sys

from repro.analysis.ascii_chart import bar_chart, timeline_row
from repro.config import SystemConfig
from repro.sim.runner import with_policy
from repro.sim.simulator import Simulator
from repro.workloads import generate_trace

GLYPHS = {"drain": "D", "sleep": "S", "sleep_retention": "R",
          "wake": "W", "stall": "."}
SHOW_EVENTS = 18


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "mcf_like"
    policy = sys.argv[2] if len(sys.argv) > 2 else "mapg"
    config = with_policy(SystemConfig(), policy, sleep_mode="dual")
    simulator = Simulator(config, workload=workload, record_timeline=True)
    result = simulator.run(generate_trace(workload, 3000, seed=11))

    print(f"{workload} / {policy}: {len(simulator.timeline)} off-chip stalls, "
          f"{int(result.gated_stalls)} gated\n")
    print("legend: D drain  S sleep  R retention  W wake  . idle-awake  ~ ungated")
    print(f"{'cycle':>9}  {'stall':>5}  {'pred':>5}  {'pen':>4}  timeline")
    for event in simulator.timeline[:SHOW_EVENTS]:
        if event.gated:
            row = timeline_row(event.intervals, width=60, glyphs=GLYPHS)
        else:
            row = "~" * 60
        print(f"{event.start_cycle:>9}  {event.stall_cycles:>5}  "
              f"{event.predicted_cycles:>5}  {event.penalty_cycles:>4}  {row}")

    print()
    states = sorted(result.state_cycles.items(), key=lambda item: -item[1])
    print(bar_chart([name for name, __ in states],
                    [cycles for __, cycles in states],
                    unit=" cycles", title="cycle budget by power state"))


if __name__ == "__main__":
    main()
