#!/usr/bin/env python3
"""How latency prediction quality turns into hidden wakeups.

Trains each residual-latency predictor on the off-chip stalls of one
workload (standalone, outside the simulator), reports its accuracy, then
runs full MAPG with each predictor to show the accuracy -> penalty chain.

    python examples/latency_prediction.py [workload]
"""

import sys

from repro import SystemConfig, run_workload, static_offchip_latency_cycles, with_policy
from repro.analysis import format_fraction_pct, format_table
from repro.cpu.core import Core, StallSegment
from repro.memory.hierarchy import MemoryHierarchy
from repro.predict import EwmaPredictor, FixedPredictor, HistoryTablePredictor, LastValuePredictor
from repro.workloads import generate_trace

NUM_OPS = 10_000


def collect_stalls(config: SystemConfig, workload: str):
    """Replay a trace and harvest (pc, bank, stall length) ground truth."""
    hierarchy = MemoryHierarchy(config.l1, config.l2, config.dram,
                                config.core.frequency_hz)
    core = Core(config.core, hierarchy)
    trace = generate_trace(workload, NUM_OPS, seed=11)
    return [(seg.pc, seg.bank, seg.cycles)
            for seg in core.segments(trace)
            if isinstance(seg, StallSegment) and seg.off_chip]


def offline_accuracy(predictor, stalls):
    """Mean absolute error of predict-then-observe over the stall stream."""
    total_error = 0
    for pc, bank, actual in stalls:
        total_error += abs(predictor.predict(pc, bank).latency_cycles - actual)
        predictor.observe(pc, bank, actual)
    return total_error / len(stalls)


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "libquantum_like"
    config = SystemConfig()
    static = static_offchip_latency_cycles(config)
    stalls = collect_stalls(config, workload)
    print(f"{workload}: {len(stalls)} off-chip stalls, "
          f"static estimate {static} cycles\n")

    predictors = {
        "fixed": FixedPredictor(static),
        "last_value": LastValuePredictor(initial_cycles=static),
        "ewma": EwmaPredictor(initial_cycles=static),
        "table": HistoryTablePredictor(initial_cycles=static),
    }
    rows = []
    for name, predictor in predictors.items():
        mae = offline_accuracy(predictor, stalls)
        result = run_workload(with_policy(config, "mapg", predictor=name),
                              workload, NUM_OPS, seed=11)
        rows.append([
            name, f"{mae:.1f}",
            f"{result.prediction_mae_cycles:.1f}",
            format_fraction_pct(result.performance_penalty, precision=2),
        ])
    print(format_table(
        ["predictor", "offline MAE (cyc)", "in-loop MAE (cyc)", "MAPG penalty"],
        rows, title="prediction accuracy -> wakeup-hiding quality"))
    print()
    print("lower MAE lets MAPG schedule the early wakeup closer to the data")
    print("return, shrinking the exposed wake latency.")


if __name__ == "__main__":
    main()
