#!/usr/bin/env python3
"""Multi-core MAPG with TAP wake-token arbitration.

Runs a 4-core memory-bound mix twice — without arbitration and with a
single shared wake token — and shows that the token bounds simultaneous
wakeups (the rush-current guarantee) while cores keep sleeping through
their token waits, so the energy cost is negligible.

    python examples/multicore_tokens.py
"""

from repro import SystemConfig, TokenConfig, run_multicore, with_policy
from repro.analysis import format_fraction_pct, format_table

MIX = ["mcf_like", "mcf_like", "lbm_like", "libquantum_like"]
NUM_OPS = 4000


def run(tokens: int):
    token_config = TokenConfig(enabled=tokens > 0, wake_tokens=max(1, tokens),
                               token_wait_limit_cycles=500)
    config = with_policy(
        SystemConfig(num_cores=len(MIX), token=token_config), "mapg")
    return run_multicore(config, MIX, NUM_OPS, seed=13)


def main() -> None:
    rows = []
    for tokens in (0, 2, 1):
        result = run(tokens)
        rows.append([
            "off" if tokens == 0 else str(tokens),
            f"{result.total_energy_j * 1e3:.3f}",
            format_fraction_pct(result.mean_performance_penalty, precision=2),
            int(result.token_counters.get("deferred_grants", 0)),
            int(result.token_counters.get("forced_grants", 0)),
        ])
    print(format_table(
        ["wake tokens", "energy (mJ)", "mean penalty", "deferred", "forced"],
        rows, title=f"4-core mix {MIX} under TAP arbitration"))
    print()
    print("with 1 token at most one core recharges its rail at any instant,")
    print("bounding worst-case rush current at 1/4 of the unarbitrated chip.")


if __name__ == "__main__":
    main()
