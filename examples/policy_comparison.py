#!/usr/bin/env python3
"""Compare every gating policy across a spread of workloads.

A compact version of the F2 experiment: three workloads spanning the
memory-boundedness range, all five policies, identical traces per workload.

    python examples/policy_comparison.py [num_ops]
"""

import sys

from repro import SystemConfig, run_policy_comparison
from repro.analysis import format_fraction_pct, format_table
from repro.analysis.energy import summarize_comparisons

WORKLOADS = ["mcf_like", "gcc_like", "povray_like"]
POLICIES = ["never", "naive", "bet_guard", "mapg", "oracle"]


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000
    matrix = run_policy_comparison(SystemConfig(), WORKLOADS, POLICIES, num_ops)
    comparisons = summarize_comparisons(matrix)

    rows = []
    for workload in WORKLOADS:
        for policy in POLICIES[1:]:
            delta = next(c for c in comparisons[policy]
                         if c.workload == workload)
            rows.append([
                workload, policy,
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2),
                f"{delta.edp_ratio:.3f}",
            ])
    print(format_table(
        ["workload", "policy", "energy saving", "perf penalty", "EDP ratio"],
        rows,
        title=f"Gating policies vs never-gate baseline ({num_ops} trace ops)"))
    print()
    print("reading guide: naive buys savings with a large penalty;")
    print("MAPG keeps the savings and hides the wake latency; oracle is the bound.")


if __name__ == "__main__":
    main()
