#!/usr/bin/env python3
"""Quickstart: measure what MAPG saves on one memory-bound workload.

Runs the same synthetic mcf-like trace through the never-gate baseline and
the MAPG policy, then prints the energy saving, performance penalty, and
where the cycles went.

    python examples/quickstart.py
"""

from repro import SystemConfig, run_workload, with_policy

NUM_OPS = 20_000
WORKLOAD = "mcf_like"


def main() -> None:
    config = SystemConfig()  # 2 GHz core, 32K L1 / 2M L2, DDR3-like DRAM, 45 nm

    baseline = run_workload(with_policy(config, "never"), WORKLOAD, NUM_OPS)
    mapg = run_workload(with_policy(config, "mapg"), WORKLOAD, NUM_OPS)
    delta = mapg.compare(baseline)

    print(f"workload: {WORKLOAD} ({mapg.instructions:,} instructions)")
    print(f"off-chip stalls: {int(mapg.offchip_stalls):,} "
          f"(gated {int(mapg.gated_stalls):,})")
    print()
    print(f"energy saving     : {delta.energy_saving:7.1%}")
    print(f"performance penalty: {delta.performance_penalty:7.2%}")
    print(f"EDP ratio         : {delta.edp_ratio:7.3f}  (< 1 is better)")
    print()
    print("where the cycles went (MAPG run):")
    for state, cycles in sorted(mapg.state_cycles.items(),
                                key=lambda item: -item[1]):
        share = cycles / mapg.total_cycles
        print(f"  {state:<10} {cycles:>10,} cycles  {share:6.1%}")


if __name__ == "__main__":
    main()
