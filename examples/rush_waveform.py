#!/usr/bin/env python3
"""Simulate the staggered wakeup's rush-current waveform.

Models the closed-loop stagger control real designs use: a daisy chain
turns on the next header group each cycle *only if* the resulting inrush
stays under the grid ceiling (a current-sense comparator gates the chain).
The result is the waveform a power-grid engineer signs off on — hugging
the ceiling until the rail is up, never crossing it.

The group count sets the *granularity* of that control: with groups at or
above the circuit model's legal minimum, each step is small enough that
the chain can always stay legal; with fewer, wider groups even the very
first turn-on overshoots and no control loop can save it.

    python examples/rush_waveform.py [node] [group_multiplier]
    python examples/rush_waveform.py 45nm 0.5   # illegally coarse groups
"""

import sys

from repro.analysis.ascii_chart import sparkline
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import get_technology

FREQUENCY_HZ = 2e9


def simulate_waveform(network: SleepTransistorNetwork, groups: int):
    """Closed-loop staggered turn-on; returns per-cycle current samples."""
    tech = network.tech
    cycle_s = 1.0 / FREQUENCY_HZ
    total_c = tech.domain_capacitance_f
    vdd = tech.vdd_v
    ceiling = tech.max_rush_current_a
    ron_total = network.ron_total_ohm

    rail_v = 0.0
    groups_on = 0
    samples = []
    for __ in range(2000):
        # Daisy chain: enable the next group if the step stays legal —
        # except the first group, which must fire to start the wake at all.
        if groups_on < groups:
            next_current = (vdd - rail_v) * (groups_on + 1) / (ron_total * groups)
            if groups_on == 0 or next_current <= ceiling:
                groups_on += 1
        current = (vdd - rail_v) * groups_on / (ron_total * groups)
        samples.append(current)
        rail_v = min(vdd, rail_v + current * cycle_s / total_c)
        if groups_on == groups and vdd - rail_v < 0.02 * vdd:
            break
    return samples


def render(node: str, network: SleepTransistorNetwork, groups: int) -> None:
    tech = network.tech
    samples = simulate_waveform(network, groups)
    peak = max(samples)
    print(f"{groups} groups: peak {peak:.2f} A "
          f"({peak / tech.max_rush_current_a:.0%} of the {tech.max_rush_current_a} A "
          f"ceiling), rail up in {len(samples)} cycles")
    print("  " + sparkline(samples))
    print("  " + "".join("X" if v > tech.max_rush_current_a * 1.001 else "."
                         for v in samples))


def main() -> None:
    node = sys.argv[1] if len(sys.argv) > 1 else "45nm"
    multiplier = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    network = SleepTransistorNetwork(get_technology(node))
    minimum = network.min_stagger_groups()
    groups = max(1, int(round(minimum * multiplier)))

    print(f"{node}: closed-loop staggered wake, legal minimum "
          f"{minimum} groups ('X' = sample above the grid ceiling)\n")
    render(node, network, groups)
    if groups != minimum:
        print()
        render(node, network, minimum)


if __name__ == "__main__":
    main()
