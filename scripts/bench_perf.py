#!/usr/bin/env python3
"""Simulator-performance gate: throughput floor, cache warm, sweep scaling.

Measures the execution engine end to end with
:class:`repro.obs.profile.SelfProfiler` and writes the machine-readable
scorecard ``BENCH_sim_throughput.json`` (schema
``mapg.bench-throughput/1``) that docs/PERFORMANCE.md explains row by
row.  Five measurements:

* **single_core** — one oracle simulator run; reports simulated events
  and trace ops per wall second.  Trace generation is inside the timed
  region (that is what ``run_workload`` costs a user).
* **single_core_fast** — the identical cell through the columnar batched
  kernel (``engine="fast"``), best-of-``_FAST_REPEATS`` with the columnar
  ingest and key precompute hoisted out of the timed region (they are
  one-time, memoized costs).  The row records ``speedup_vs_oracle`` and
  ``identical_to_oracle`` — the kernel's results must be byte-identical
  to the oracle's (sorted-key JSON of every field) or the bench exits 2,
  same severity as the cache-correctness gate.
* **sweep_serial** — a policy-comparison matrix through
  :class:`repro.exec.SweepRunner` at ``jobs=1`` (shared trace store, no
  cache).
* **sweep_parallel** — the identical matrix at ``--jobs`` workers
  (spawn pool).  The speedup is *recorded* unconditionally but only
  *enforced* via ``--min-parallel-speedup``, because on a single-core
  container (the common CI box: ``os.cpu_count() == 1``) a process pool
  is pure overhead and a speedup bound would gate on the machine, not the
  code.  The JSON carries ``cpu_count`` so readers can judge the number.
* **cache_cold / cache_warm** — the matrix against a fresh
  content-addressed :class:`repro.exec.ResultCache`, then again against
  the populated cache.  The warm run must be ``--min-cache-speedup``
  times faster, and its results must be **byte-identical** (sorted-key
  JSON of every result) to the cold run's — a cache that changes any
  field is a correctness bug, not a perf feature.

Wall clocks are fine here: this is tooling under ``scripts/``, outside
DET01's simulation scope, and every timing flows through SelfProfiler —
nothing feeds back into simulated time.

Two modes on top of the gates:

* default — the fresh scorecard is also judged against the checked-in
  baseline (``--baseline``) through :mod:`repro.obs.anomaly`; anomalies
  and staleness warnings print, an ``anomaly_report.json`` is written,
  and ``--fail-on-anomaly`` turns regressions into a failing exit.
* ``--update-baseline`` — atomically refresh the checked-in baseline
  (including its ``environment`` block: git SHA, interpreter, platform)
  via tmp + ``os.replace`` per CONC04, so the staleness warning clears.

Exit codes: 0 = all enforced bounds hold, 1 = a bound failed (or an
anomaly under ``--fail-on-anomaly``), 2 = the cold/warm result mismatch
(cache correctness) tripped.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
from typing import Any, Dict, List, Optional, Sequence

from repro.config import SystemConfig
from repro.exec import JobSpec, ResultCache, SweepRunner, simulation_version
from repro.obs import SelfProfiler, environment_manifest
from repro.sim.runner import run_workload, with_policy

BENCH_SCHEMA = "mapg.bench-throughput/1"
DEFAULT_OUTPUT = "BENCH_sim_throughput.json"

# Sweep matrix: three representative workloads (memory-bound, phased,
# compute-bound) times three policies plus the shared baseline.
SWEEP_WORKLOADS = ("mcf_like", "gcc_like", "povray_like")
SWEEP_POLICIES = ("never", "naive", "mapg")

# The fast-kernel row reports the best of this many runs: at 10-30x the
# oracle's throughput a single run is a few tens of milliseconds, where
# scheduler jitter alone can swing the measurement by 30%+.
_FAST_REPEATS = 3


def _sweep_specs(num_ops: int, seed: int) -> List[JobSpec]:
    config = SystemConfig()
    return [
        JobSpec(config=with_policy(config, policy), profile=workload,
                num_ops=num_ops, seed=seed)
        for workload in SWEEP_WORKLOADS
        for policy in SWEEP_POLICIES
    ]


def _results_digest(results: Sequence[Any]) -> str:
    """Canonical byte form of a result list, for cold-vs-warm identity."""
    from repro.exec import result_to_dict

    return json.dumps([result_to_dict(result) for result in results],
                      sort_keys=True, separators=(",", ":"))


def run_benchmarks(num_ops: int, sweep_ops: int, jobs: int,
                   profiler: SelfProfiler) -> Dict[str, Any]:
    """Execute all four measurements; returns the rows dict (no gating)."""
    rows: Dict[str, Any] = {}

    # -- single-core throughput -------------------------------------------
    with profiler.stage("single_core") as stage:
        result = run_workload(with_policy(SystemConfig(), "mapg"),
                              "mcf_like", num_ops, seed=7)
        stage.add_events(result.event_count)
    wall = profiler.report()["stages"][-1]["wall_s"]
    rows["single_core"] = {
        "num_ops": num_ops,
        "events": result.event_count,
        "wall_s": wall,
        "events_per_sec": result.event_count / wall if wall > 0 else 0.0,
        "ops_per_sec": num_ops / wall if wall > 0 else 0.0,
    }

    # -- single-core throughput, fast kernel ------------------------------
    from repro.fastsim import shared_columnar_store

    config = with_policy(SystemConfig(), "mapg")
    _, measured = shared_columnar_store().traces("mcf_like", num_ops, seed=7)
    measured.busy_cycles_for(config.core.issue_width)
    measured.block_keys_for(config.l1.line_bytes.bit_length() - 1,
                            config.l1.num_sets - 1)
    fast_walls: List[float] = []
    fast_result = None
    for repeat in range(1, _FAST_REPEATS + 1):
        with profiler.stage(f"single_core_fast_r{repeat}") as stage:
            fast_result = run_workload(config, "mcf_like", num_ops, seed=7,
                                       engine="fast")
            stage.add_events(fast_result.event_count)
        fast_walls.append(profiler.report()["stages"][-1]["wall_s"])
    fast_wall = min(fast_walls)
    rows["single_core_fast"] = {
        "num_ops": num_ops,
        "events": fast_result.event_count,
        "repeats": _FAST_REPEATS,
        "wall_s": fast_wall,
        "events_per_sec": (fast_result.event_count / fast_wall
                           if fast_wall > 0 else 0.0),
        "ops_per_sec": num_ops / fast_wall if fast_wall > 0 else 0.0,
        "speedup_vs_oracle": wall / fast_wall if fast_wall > 0 else 0.0,
        "identical_to_oracle": (_results_digest([result])
                                == _results_digest([fast_result])),
    }

    # -- sweep: serial vs parallel ----------------------------------------
    specs = _sweep_specs(sweep_ops, seed=7)
    with profiler.stage("sweep_serial"):
        serial_results = SweepRunner(jobs=1).run(specs)
    serial_wall = profiler.report()["stages"][-1]["wall_s"]
    rows["sweep_serial"] = {
        "cells": len(specs), "num_ops": sweep_ops, "jobs": 1,
        "wall_s": serial_wall,
    }

    with profiler.stage("sweep_parallel"):
        parallel_results = SweepRunner(jobs=jobs).run(specs)
    parallel_wall = profiler.report()["stages"][-1]["wall_s"]
    rows["sweep_parallel"] = {
        "cells": len(specs), "num_ops": sweep_ops, "jobs": jobs,
        "wall_s": parallel_wall,
        "speedup_vs_serial": (serial_wall / parallel_wall
                              if parallel_wall > 0 else 0.0),
    }
    if _results_digest(serial_results) != _results_digest(parallel_results):
        raise AssertionError(
            "parallel sweep results differ from serial — worker-count "
            "invariance is broken")

    # -- cache: cold vs warm ----------------------------------------------
    cache_dir = tempfile.mkdtemp(prefix="mapg-bench-cache-")
    try:
        with profiler.stage("cache_cold"):
            cold_results = SweepRunner(
                jobs=1, cache=ResultCache(cache_dir)).run(specs)
        cold_wall = profiler.report()["stages"][-1]["wall_s"]
        with profiler.stage("cache_warm"):
            warm_results = SweepRunner(
                jobs=1, cache=ResultCache(cache_dir)).run(specs)
        warm_wall = profiler.report()["stages"][-1]["wall_s"]
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    rows["cache_cold"] = {
        "cells": len(specs), "num_ops": sweep_ops, "wall_s": cold_wall,
    }
    rows["cache_warm"] = {
        "cells": len(specs), "num_ops": sweep_ops, "wall_s": warm_wall,
        "speedup_vs_cold": cold_wall / warm_wall if warm_wall > 0 else 0.0,
        "identical_to_cold": (_results_digest(cold_results)
                              == _results_digest(warm_results)),
    }
    return rows


def _write_json_atomic(payload: Dict[str, Any], path: str) -> None:
    """Write a scorecard via tmp + ``os.replace`` (CONC04): a reader —
    the anomaly watcher, CI — racing the writer never sees a torn file."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path = os.path.join(directory,
                            f".{os.path.basename(path)}.{os.getpid()}.tmp")
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the perf benchmarks, write the scorecard, enforce the gates."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized traces (~10x shorter)")
    parser.add_argument("--jobs", type=int, default=0,
                        help="workers for the parallel sweep row "
                             "(default: max(4, cpu_count))")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help=f"scorecard path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--min-throughput", type=float, default=3000.0,
                        help="floor on single-core oracle trace ops/sec "
                             "(default 3000)")
    parser.add_argument("--min-fast-throughput", type=float, default=20000.0,
                        help="floor on the fast kernel's trace ops/sec "
                             "(default 20000)")
    parser.add_argument("--min-cache-speedup", type=float, default=5.0,
                        help="warm cache must beat cold by this factor "
                             "(default 5)")
    parser.add_argument("--min-parallel-speedup", type=float, default=0.0,
                        help="enforce sweep_parallel >= this x serial "
                             "(default 0 = record only; needs real cores)")
    parser.add_argument("--update-baseline", action="store_true",
                        help=f"refresh the checked-in baseline (--baseline "
                             f"path, default {DEFAULT_OUTPUT}) atomically, "
                             f"environment block included, instead of "
                             f"comparing against it")
    parser.add_argument("--baseline", default=DEFAULT_OUTPUT,
                        help="baseline scorecard to compare against / "
                             "refresh")
    parser.add_argument("--anomaly-report", default="anomaly_report.json",
                        help="where the baseline comparison writes its "
                             "report")
    parser.add_argument("--anomaly-band", action="append", default=None,
                        metavar="METRIC=TOL[:higher|lower]",
                        help="override the anomaly watch list (repeatable; "
                             "see `python -m repro watch-perf --help`)")
    parser.add_argument("--fail-on-anomaly", action="store_true",
                        help="exit nonzero when the baseline comparison "
                             "finds a regression (default: report only)")
    args = parser.parse_args(argv)

    num_ops = 4_000 if args.quick else 30_000
    sweep_ops = 1_500 if args.quick else 10_000
    jobs = args.jobs if args.jobs > 0 else max(4, os.cpu_count() or 1)

    profiler = SelfProfiler()
    rows = run_benchmarks(num_ops, sweep_ops, jobs, profiler)

    payload = {
        "schema": BENCH_SCHEMA,
        "mode": "quick" if args.quick else "full",
        "cpu_count": os.cpu_count(),
        "simulation_version": simulation_version(),
        "rows": rows,
        "environment": environment_manifest(),
        "self_profile": profiler.report(),
    }
    output_path = args.baseline if args.update_baseline else args.output
    _write_json_atomic(payload, output_path)

    ops_per_sec = rows["single_core"]["ops_per_sec"]
    fast_row = rows["single_core_fast"]
    warm_speedup = rows["cache_warm"]["speedup_vs_cold"]
    parallel_speedup = rows["sweep_parallel"]["speedup_vs_serial"]
    print(f"single-core: {ops_per_sec:,.0f} trace ops/s "
          f"({rows['single_core']['events_per_sec']:,.0f} events/s)")
    print(f"fast kernel: {fast_row['ops_per_sec']:,.0f} trace ops/s "
          f"(speedup {fast_row['speedup_vs_oracle']:.1f}x vs oracle, "
          f"identical={fast_row['identical_to_oracle']})")
    print(f"sweep serial {rows['sweep_serial']['wall_s']:.3f}s | "
          f"parallel x{jobs} {rows['sweep_parallel']['wall_s']:.3f}s "
          f"(speedup {parallel_speedup:.2f}x, cpu_count={os.cpu_count()})")
    print(f"cache cold {rows['cache_cold']['wall_s']:.3f}s | "
          f"warm {rows['cache_warm']['wall_s']:.3f}s "
          f"(speedup {warm_speedup:.1f}x)")
    print(f"scorecard -> {output_path}"
          + (" (baseline refreshed, environment block included)"
             if args.update_baseline else ""))

    anomaly_failed = False
    if not args.update_baseline and os.path.isfile(args.baseline) \
            and os.path.abspath(args.baseline) \
            != os.path.abspath(output_path):
        from repro.obs import (compare_to_baseline, load_perf_document,
                               parse_band, write_anomaly_report)

        bands = ([parse_band(text) for text in args.anomaly_band]
                 if args.anomaly_band else None)
        report = compare_to_baseline(payload,
                                     load_perf_document(args.baseline),
                                     bands=bands)
        write_anomaly_report(report, args.anomaly_report)
        for warning in report["warnings"]:
            print(f"warning: {warning}", file=sys.stderr)
        if report["ok"]:
            print(f"baseline check ok "
                  f"({len(report['checked'])} metric(s) within bands); "
                  f"report -> {args.anomaly_report}")
        else:
            for anomaly in report["anomalies"]:
                print(f"ANOMALY {anomaly['metric']}: baseline "
                      f"{anomaly['baseline']:g} -> observed "
                      f"{anomaly['observed']:g} "
                      f"(ratio {anomaly['ratio']:.3f}, "
                      f"band {anomaly['band']:g})", file=sys.stderr)
            print(f"anomaly report -> {args.anomaly_report}",
                  file=sys.stderr)
            anomaly_failed = args.fail_on_anomaly

    if not rows["cache_warm"]["identical_to_cold"]:
        print("FAIL: warm-cache results are not byte-identical to cold",
              file=sys.stderr)
        return 2
    if not fast_row["identical_to_oracle"]:
        print("FAIL: fast-kernel result is not byte-identical to the "
              "oracle's", file=sys.stderr)
        return 2
    failed = False
    if ops_per_sec < args.min_throughput:
        print(f"FAIL: single-core throughput {ops_per_sec:,.0f} ops/s "
              f"< floor {args.min_throughput:,.0f}", file=sys.stderr)
        failed = True
    if fast_row["ops_per_sec"] < args.min_fast_throughput:
        print(f"FAIL: fast-kernel throughput "
              f"{fast_row['ops_per_sec']:,.0f} ops/s "
              f"< floor {args.min_fast_throughput:,.0f}", file=sys.stderr)
        failed = True
    if warm_speedup < args.min_cache_speedup:
        print(f"FAIL: warm-cache speedup {warm_speedup:.1f}x "
              f"< {args.min_cache_speedup:.1f}x", file=sys.stderr)
        failed = True
    if args.min_parallel_speedup > 0 and \
            parallel_speedup < args.min_parallel_speedup:
        print(f"FAIL: parallel speedup {parallel_speedup:.2f}x "
              f"< {args.min_parallel_speedup:.2f}x", file=sys.stderr)
        failed = True
    if anomaly_failed:
        print("FAIL: baseline comparison found perf anomalies "
              "(--fail-on-anomaly)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
