#!/usr/bin/env python3
"""Lint-performance gate: cold run under budget, warm cache actually warm.

Runs the full rule set over ``src`` and ``tests`` twice against a fresh
cache directory and enforces two bounds:

* the **cold** run (every file a cache miss) must finish within
  ``--cold-budget`` seconds (default 70), and
* the **warm** run (every file a cache hit) must be at least
  ``--min-speedup`` times faster (default 5x).

Both runs happen in-process so the comparison measures the analyzer, not
interpreter startup (which is identical for both and would dilute the
ratio).  Timing uses ``time.perf_counter`` — this script is tooling, not
simulation, so the wall clock is the right instrument (and ``# mapglint:
disable`` is therefore not needed: DET01 polices the ``repro/sim``,
``repro/core``, ``repro/cpu``, ``repro/memory``, and ``repro/obs``
packages, not ``scripts/``).

With ``--require-clean`` the gate additionally fails when the tree has any
lint findings at all — CI passes it so a regression in the rules or the
code cannot hide behind a green timing result.

Exit codes: 0 = both bounds hold, 1 = a bound failed, 2 = lint findings
prevented a clean measurement (only with ``--require-clean``).
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

from repro.lint.cache import ResultCache
from repro.lint.runner import LintReport, lint_paths


def _timed_run(paths: Sequence[str], cache_dir: str,
               jobs: int) -> Tuple[float, LintReport, ResultCache]:
    cache = ResultCache(cache_dir)
    start = time.perf_counter()
    report = lint_paths(paths, cache=cache, jobs=jobs)
    return time.perf_counter() - start, report, cache


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Measure cold vs warm lint wall time; enforce the CI bounds."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", default=["src", "tests"])
    parser.add_argument("--cold-budget", type=float, default=70.0,
                        metavar="SECONDS")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        metavar="RATIO")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--require-clean", action="store_true",
                        help="also fail (exit 2) if the tree has findings")
    args = parser.parse_args(argv)

    cache_dir = tempfile.mkdtemp(prefix="mapglint-timing-")
    try:
        cold_s, cold_report, cold_cache = _timed_run(
            args.paths, cache_dir, args.jobs)
        warm_s, warm_report, warm_cache = _timed_run(
            args.paths, cache_dir, args.jobs)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    print(f"cold: {cold_s:.3f}s over {cold_report.files_checked} file(s) "
          f"({cold_cache.misses} miss(es))")
    print(f"warm: {warm_s:.3f}s "
          f"({warm_cache.hits} hit(s), {warm_cache.misses} miss(es))")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    print(f"speedup: {speedup:.1f}x "
          f"(required >= {args.min_speedup:.1f}x)")

    problems: List[str] = []
    if warm_cache.misses:
        problems.append(
            f"warm run had {warm_cache.misses} cache miss(es); "
            f"the cache key is unstable")
    if cold_s > args.cold_budget:
        problems.append(
            f"cold run took {cold_s:.1f}s > budget {args.cold_budget:.1f}s")
    if speedup < args.min_speedup:
        problems.append(
            f"warm speedup {speedup:.1f}x < required "
            f"{args.min_speedup:.1f}x")
    if cold_report.all_findings != warm_report.all_findings:
        problems.append("cold and warm runs disagree on findings")

    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if not cold_report.ok:
        # Findings don't invalidate the timing, but surface them: the CI
        # lint step is the real gate, this one only measures — unless
        # --require-clean promotes them to a failure of their own.
        print(f"note: tree is not lint-clean "
              f"({len(cold_report.all_findings)} finding(s))",
              file=sys.stderr)
        if args.require_clean:
            print("FAIL: --require-clean set and findings present",
                  file=sys.stderr)
            return 2
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
