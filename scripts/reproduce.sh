#!/usr/bin/env sh
# One-command reproduction: install, test, regenerate every experiment.
#
#   sh scripts/reproduce.sh
#
# Outputs land in benchmarks/results/<id>.{txt,csv}; the console shows each
# experiment's table as it is regenerated.  The whole pass takes a few
# minutes of pure Python on a laptop.
set -e
cd "$(dirname "$0")/.."

echo "== install =="
pip install -e . 2>/dev/null || python setup.py develop

echo "== test suite =="
python -m pytest tests/

echo "== all experiments =="
python -m pytest benchmarks/ --benchmark-only

echo "== done: see benchmarks/results/ and EXPERIMENTS.md =="
