#!/usr/bin/env python3
"""Regenerate the workload characterization table in docs/WORKLOADS.md.

    python scripts/workload_table.py [num_ops]

Prints the markdown table; redirect or paste into docs/WORKLOADS.md when
profiles change.
"""

import sys

from repro import SystemConfig, run_workload, with_policy
from repro.workloads import get_profile, profile_names


def main() -> None:
    num_ops = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    config = with_policy(SystemConfig(), "never")
    print("| profile | stands in for | instr/mem-op | random | reuse | "
          "working set | IPC | stall % | L1 hit % | MPKI |")
    print("|---|---|---:|---:|---:|---:|---:|---:|---:|---:|")
    for name in profile_names():
        profile = get_profile(name)
        result = run_workload(config, name, num_ops, seed=11)
        l1_rate = (result.memory_counters.get("l1_hits", 0)
                   / max(1, result.memory_counters.get("l1_accesses", 1)))
        mpki = 1000 * result.offchip_stalls / max(1, result.instructions)
        stands_for = name.replace("_like", "")
        print(f"| {name} | SPEC {stands_for} | "
              f"{profile.instructions_per_memory_op:g} | "
              f"{profile.random_fraction:.2f} | {profile.reuse_fraction:.2f} | "
              f"{profile.working_set_bytes // (1024 * 1024)} MiB | "
              f"{result.ipc:.2f} | {result.stall_fraction:.0%} | "
              f"{l1_rate:.0%} | {mpki:.1f} |")


if __name__ == "__main__":
    main()
