"""Setup shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools/pip lack
PEP 660 editable-wheel support (pip then falls back to the legacy
``setup.py develop`` path, which needs this file).
"""

from setuptools import setup

setup()
