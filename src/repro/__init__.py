"""MAPG — Memory Access Power Gating (DATE 2012) reproduction library.

Power-gate a CPU core during off-chip memory stalls: decide *whether* to
gate from a learned residual-latency prediction against the circuit-derived
break-even time, and *when* to wake from an early-wakeup schedule that
hides the rail-recharge latency under the stall's predictable tail.

Quickstart::

    from repro import SystemConfig, run_workload, with_policy

    config = SystemConfig()
    mapg = run_workload(with_policy(config, "mapg"), "mcf_like", num_ops=20_000)
    base = run_workload(with_policy(config, "never"), "mcf_like", num_ops=20_000)
    delta = mapg.compare(base)
    print(f"energy saving {delta.energy_saving:.1%}, "
          f"penalty {delta.performance_penalty:.2%}")

Package map (see DESIGN.md for the full inventory):

* ``repro.core``      — the contribution: controller, policies, BET math
* ``repro.power``     — technology nodes, PG circuit model, power states
* ``repro.memory``    — caches, MSHRs, DRAM timing
* ``repro.cpu``       — trace-driven core, multi-core merge
* ``repro.predict``   — residual-latency predictors
* ``repro.workloads`` — SPEC-like synthetic trace generation
* ``repro.sim``       — simulator + experiment runners
* ``repro.analysis``  — aggregation and report formatting
* ``repro.obs``       — deterministic observability: metrics registry,
  Perfetto gating-span traces, run manifests, self-profiling
"""

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramConfig,
    GatingConfig,
    PrefetcherConfig,
    SystemConfig,
    TokenConfig,
    default_config,
)
from repro.core import BreakEvenAnalyzer, EnergyLedger, MapgController, TokenArbiter
from repro.errors import (
    CircuitModelError,
    ConfigError,
    PredictionError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.power import CorePowerModel, GatingCircuit, SleepTransistorNetwork, get_technology
from repro.sim import (
    ComparisonResult,
    GatingTraceEvent,
    MulticoreResult,
    SimulationResult,
    Simulator,
    run_multicore,
    run_policy_comparison,
    run_workload,
    static_offchip_latency_cycles,
)
from repro.sim.runner import with_policy
from repro.version import __version__
from repro.workloads import generate_trace, get_profile, profile_names

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "DramConfig",
    "GatingConfig",
    "PrefetcherConfig",
    "SystemConfig",
    "TokenConfig",
    "default_config",
    "BreakEvenAnalyzer",
    "EnergyLedger",
    "MapgController",
    "TokenArbiter",
    "CircuitModelError",
    "ConfigError",
    "PredictionError",
    "ReproError",
    "SimulationError",
    "TraceError",
    "CorePowerModel",
    "GatingCircuit",
    "SleepTransistorNetwork",
    "get_technology",
    "ComparisonResult",
    "GatingTraceEvent",
    "MulticoreResult",
    "SimulationResult",
    "Simulator",
    "run_multicore",
    "run_policy_comparison",
    "run_workload",
    "static_offchip_latency_cycles",
    "with_policy",
    "generate_trace",
    "get_profile",
    "profile_names",
    "__version__",
]
