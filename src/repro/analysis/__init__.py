"""Analysis layer: aggregation and report formatting for the evaluation."""

from repro.analysis.energy import (
    mean_energy_saving,
    mean_penalty,
    summarize_comparisons,
)
from repro.analysis.report import ExperimentReport
from repro.analysis.tables import format_fraction_pct, format_table

__all__ = [
    "mean_energy_saving",
    "mean_penalty",
    "summarize_comparisons",
    "ExperimentReport",
    "format_fraction_pct",
    "format_table",
]
