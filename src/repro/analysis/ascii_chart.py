"""Terminal charts: bar charts and sparklines with no plotting dependency.

The examples and reports render small visualizations directly in the
console; these helpers keep that rendering uniform and testable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 48, unit: str = "",
              title: Optional[str] = None) -> str:
    """Horizontal bar chart; bars scale to the largest absolute value.

    Negative values draw left of a zero axis so gain/loss comparisons read
    naturally.
    """
    if len(labels) != len(values):
        raise AnalysisError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise AnalysisError("bar chart needs at least one row")
    if width < 4:
        raise AnalysisError("width must be >= 4")

    label_width = max(len(str(label)) for label in labels)
    scale = max(abs(v) for v in values) or 1.0
    has_negative = any(v < 0 for v in values)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value in zip(labels, values):
        magnitude = int(round(abs(value) / scale * (width // (2 if has_negative else 1))))
        if has_negative:
            half = width // 2
            if value < 0:
                bar = " " * (half - magnitude) + "#" * magnitude + "|"
            else:
                bar = " " * half + "|" + "#" * magnitude
        else:
            bar = "#" * magnitude
        lines.append(f"{str(label):<{label_width}}  {bar.ljust(width)}  "
                     f"{value:g}{unit}")
    return "\n".join(line.rstrip() for line in lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line trend using block characters; empty input -> empty string."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span == 0:
        return _SPARK_LEVELS[0] * len(values)
    chars = []
    for value in values:
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def timeline_row(segments: Sequence["tuple[str, int]"], width: int = 72,
                 glyphs: Optional[dict] = None) -> str:
    """Render (state, cycles) segments as one proportional text row.

    ``glyphs`` maps state names to single characters; unmapped states use
    their first letter.  Every segment gets at least one character so short
    events (drain, wake) remain visible.
    """
    if not segments:
        return ""
    if any(cycles < 0 for __, cycles in segments):
        raise AnalysisError("segment lengths must be >= 0")
    total = sum(cycles for __, cycles in segments)
    if total == 0:
        return ""
    glyphs = glyphs or {}
    cells: List[str] = []
    for state, cycles in segments:
        if cycles == 0:
            continue
        glyph = glyphs.get(state, state[:1] or "?")
        span = max(1, int(round(cycles / total * width)))
        cells.append(glyph * span)
    return "".join(cells)
