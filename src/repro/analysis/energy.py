"""Cross-run aggregation: the numbers the summary rows (T3) report."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.sim.results import ComparisonResult, SimulationResult
from repro.stats.counters import geometric_mean


def summarize_comparisons(
        matrix: Dict[str, Dict[str, SimulationResult]],
        baseline_policy: str = "never") -> Dict[str, List[ComparisonResult]]:
    """Turn a results[workload][policy] matrix into per-policy comparisons.

    Returns comparisons[policy] = list over workloads, each against the
    workload's ``baseline_policy`` run.  The baseline policy itself is
    excluded from the output (its saving is identically zero).
    """
    comparisons: Dict[str, List[ComparisonResult]] = {}
    for workload, per_policy in matrix.items():
        if baseline_policy not in per_policy:
            raise SimulationError(
                f"workload {workload!r} lacks a {baseline_policy!r} baseline run")
        baseline = per_policy[baseline_policy]
        for policy, result in per_policy.items():
            if policy == baseline_policy:
                continue
            comparisons.setdefault(policy, []).append(result.compare(baseline))
    return comparisons


def mean_energy_saving(comparisons: Sequence[ComparisonResult]) -> float:
    """Arithmetic mean of fractional energy savings across workloads."""
    if not comparisons:
        raise SimulationError("no comparisons to average")
    return sum(c.energy_saving for c in comparisons) / len(comparisons)


def mean_penalty(comparisons: Sequence[ComparisonResult]) -> float:
    """Arithmetic mean of fractional performance penalties across workloads."""
    if not comparisons:
        raise SimulationError("no comparisons to average")
    return sum(c.performance_penalty for c in comparisons) / len(comparisons)


def geomean_edp_ratio(comparisons: Sequence[ComparisonResult]) -> float:
    """Geometric mean of energy-delay-product ratios (< 1 = improvement)."""
    if not comparisons:
        raise SimulationError("no comparisons to average")
    return geometric_mean({c.workload: c.edp_ratio for c in comparisons})
