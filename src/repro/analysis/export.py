"""Machine-readable exporters for results and reports.

The console tables are for humans; downstream analysis (plotting scripts,
regression dashboards) wants CSV and JSON.  These functions serialize the
same objects the benchmarks print, so both views always agree.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Union

from repro.analysis.report import ExperimentReport
from repro.errors import ReproError
from repro.sim.results import SimulationResult

PathLike = Union[str, Path]


def report_to_csv(report: ExperimentReport, path: PathLike) -> int:
    """Write a report's rows as CSV; returns the row count (excl. header)."""
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(report.headers)
        for row in report.rows:
            writer.writerow([str(cell) for cell in row])
    return len(report.rows)


def report_to_json(report: ExperimentReport, path: PathLike) -> None:
    """Write a report (id, caption, rows, notes) as a JSON document."""
    payload = {
        "experiment_id": report.experiment_id,
        "caption": report.caption,
        "headers": list(report.headers),
        "rows": [[str(cell) for cell in row] for row in report.rows],
        "notes": list(report.notes),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True),
                          encoding="utf-8")


def result_to_dict(result: SimulationResult) -> Dict:
    """Flatten one simulation result to JSON-safe primitives."""
    return {
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "total_cycles": result.total_cycles,
        "penalty_cycles": result.penalty_cycles,
        "energy_j": result.energy_j,
        "event_energy_j": result.event_energy_j,
        "event_count": result.event_count,
        "ipc": result.ipc,
        "sleep_fraction": result.sleep_fraction,
        "stall_fraction": result.stall_fraction,
        "performance_penalty": result.performance_penalty,
        "prediction_mae_cycles": result.prediction_mae_cycles,
        "prediction_mape": result.prediction_mape,
        "state_cycles": dict(result.state_cycles),
        "state_energy_j": dict(result.state_energy_j),
        "controller_counters": dict(result.controller_counters),
        "memory_counters": dict(result.memory_counters),
    }


def matrix_to_csv(matrix: Dict[str, Dict[str, SimulationResult]],
                  path: PathLike) -> int:
    """Write a results[workload][policy] matrix as long-form CSV rows.

    One row per (workload, policy) with the headline scalar metrics;
    returns the row count.
    """
    if not matrix:
        raise ReproError("cannot export an empty results matrix")
    fields = ["workload", "policy", "instructions", "total_cycles",
              "penalty_cycles", "energy_j", "ipc", "sleep_fraction",
              "performance_penalty", "prediction_mae_cycles"]
    rows = 0
    path = Path(path)
    with open(path, "w", encoding="utf-8", newline="") as stream:
        writer = csv.DictWriter(stream, fieldnames=fields)
        writer.writeheader()
        for workload in sorted(matrix):
            for policy in sorted(matrix[workload]):
                record = result_to_dict(matrix[workload][policy])
                writer.writerow({field: record[field] for field in fields})
                rows += 1
    return rows


def results_to_json(matrix: Dict[str, Dict[str, SimulationResult]],
                    path: PathLike) -> None:
    """Write the full nested matrix, all counters included, as JSON."""
    if not matrix:
        raise ReproError("cannot export an empty results matrix")
    payload = {
        workload: {policy: result_to_dict(result)
                   for policy, result in per_policy.items()}
        for workload, per_policy in matrix.items()
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True),
                          encoding="utf-8")
