"""Implementation-cost estimate of the MAPG controller.

A DATE reviewer's first question about a policy is "what does it cost to
build?"  This module tallies the storage and arithmetic the controller
needs, from the same configuration objects the simulator runs — so the
cost estimate always describes the mechanism actually evaluated.

Storage entries (bits):

* latency table — ``entries x (mean[10] + confidence[3] + valid[1])``;
* fallback registers — per row-buffer outcome (4 incl. unknown/merged),
  mean[10] + deviation[8];
* decision constants — BET, wake, drain, margins (5 x 10 bits);
* adaptive bias register (when the adaptive policy is used) — 8 bits;
* wake timer — one down-counter, 10 bits;
* TAP token interface (multi-core) — request/grant handshake, 4 bits.

Arithmetic per off-chip miss: one table read + one subtract/compare chain
(~3 adders); per wake, one counter.  Everything fits in a few hundred
bytes of SRAM and a handful of adders — the "negligible area" claim the
paper's circuit section would make, stated quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GatingConfig, SystemConfig

_LATENCY_BITS = 10       # covers residuals up to 1023 cycles
_CONFIDENCE_BITS = 3
_VALID_BITS = 1
_DEVIATION_BITS = 8
_FALLBACK_OUTCOMES = 4   # row_hit / row_closed / row_conflict / other
_CONSTANT_REGISTERS = 5  # bet, wake(full), wake(retention), drain, margin
_BIAS_BITS = 8
_TIMER_BITS = 10
_TOKEN_IFACE_BITS = 4

# Default predictor table size (repro.predict.table.HistoryTablePredictor).
_DEFAULT_TABLE_ENTRIES = 64


@dataclass(frozen=True)
class HardwareCost:
    """Bit/byte tally of one MAPG controller instance."""

    table_entries: int
    table_bits: int
    fallback_bits: int
    constant_bits: int
    control_bits: int

    @property
    def total_bits(self) -> int:
        return (self.table_bits + self.fallback_bits + self.constant_bits
                + self.control_bits)

    @property
    def total_bytes(self) -> float:
        return self.total_bits / 8.0


def estimate_controller_cost(config: SystemConfig) -> HardwareCost:
    """Storage cost of the controller the given configuration deploys."""
    gating = config.gating
    if gating.policy in ("never",):
        table_entries = 0
    elif gating.predictor == "table" and gating.policy.startswith("mapg"):
        table_entries = _DEFAULT_TABLE_ENTRIES
    else:
        table_entries = 0  # scalar predictors: one register, folded below

    entry_bits = _LATENCY_BITS + _CONFIDENCE_BITS + _VALID_BITS
    table_bits = table_entries * entry_bits

    fallback_bits = 0
    if gating.policy.startswith("mapg"):
        fallback_bits = _FALLBACK_OUTCOMES * (_LATENCY_BITS + _DEVIATION_BITS)
        if table_entries == 0 and gating.predictor != "oracle":
            fallback_bits += _LATENCY_BITS + _DEVIATION_BITS  # scalar predictor

    constant_bits = 0
    if gating.policy not in ("never",):
        constant_bits = _CONSTANT_REGISTERS * _LATENCY_BITS

    control_bits = 0
    if gating.policy not in ("never",):
        control_bits += _TIMER_BITS  # early-wake down-counter
    if gating.policy == "mapg_adaptive":
        control_bits += _BIAS_BITS
    if config.token.enabled:
        control_bits += _TOKEN_IFACE_BITS

    return HardwareCost(
        table_entries=table_entries,
        table_bits=table_bits,
        fallback_bits=fallback_bits,
        constant_bits=constant_bits,
        control_bits=control_bits,
    )
