"""Experiment report container.

Each benchmark builds one :class:`ExperimentReport` — the experiment id
from DESIGN.md, a caption, the table/series rows, and free-form notes
recording the shape claims checked — and prints its rendering.  Keeping the
data separate from the rendering lets EXPERIMENTS.md and tests consume the
same rows the console shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.analysis.tables import format_table


@dataclass
class ExperimentReport:
    """One table's or figure's worth of reproduced data."""

    experiment_id: str       # e.g. "F2", "T3" — ids defined in DESIGN.md
    caption: str
    headers: Sequence[str]
    rows: List[Sequence[object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """The full report block as printed by the benchmark harness."""
        lines = [f"=== [{self.experiment_id}] {self.caption} ==="]
        lines.append(format_table(self.headers, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
