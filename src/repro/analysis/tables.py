"""Plain-text table rendering.

Every benchmark prints its table/figure data through these helpers so the
output format is uniform: fixed-width columns, right-aligned numbers,
left-aligned labels — the same rows a paper table would carry.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import AnalysisError


def format_fraction_pct(fraction: float, precision: int = 1) -> str:
    """``0.1234`` -> ``'12.3 %'`` (fractions, not percents, are the input)."""
    return f"{fraction * 100.0:.{precision}f} %"


def _is_number_like(text: str) -> bool:
    stripped = text.replace("%", "").replace(",", "").strip()
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table.

    Cells are str()-ified; numeric-looking columns right-align.  Returns the
    table as one string (callers print it), so tests can assert on content.
    """
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    columns = len(headers)
    for index, row in enumerate(text_rows):
        if len(row) != columns:
            raise AnalysisError(
                f"row {index} has {len(row)} cells, expected {columns}")

    widths = [len(header) for header in headers]
    for row in text_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    # A column right-aligns if every body cell in it looks numeric.
    right_align = [
        all(_is_number_like(row[column]) for row in text_rows) and bool(text_rows)
        for column in range(columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for column, cell in enumerate(cells):
            if right_align[column]:
                parts.append(cell.rjust(widths[column]))
            else:
                parts.append(cell.ljust(widths[column]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)
