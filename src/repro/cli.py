"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points so a
downstream user can reproduce results without writing Python:

* ``run``       — one (workload, policy) simulation, summary or JSON
* ``compare``   — the policy-comparison matrix (the F2 experiment, sized
                  to taste)
* ``circuit``   — sleep-transistor characterization per technology node
* ``sweep``     — one-dimensional sensitivity sweeps (bet / wake / dram /
                  temperature), optionally parallel/cached/instrumented
                  (``--jobs``, ``--cache``, ``--telemetry-out``)
* ``multicore`` — a multiprogrammed mix with optional TAP wake tokens
* ``profiles``  — list the built-in workload profiles
* ``trace``     — generate a trace file, or summarize an existing one
* ``watch-perf``— compare a bench scorecard / self-profile / sweep
                  manifest against ``BENCH_sim_throughput.json`` and emit
                  ``anomaly_report.json`` (see ``docs/PERFORMANCE.md``)
* ``lint``      — mapglint static analysis (unit safety, determinism,
                  FSM legality, float equality); see ``docs/LINTING.md``

All commands are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import format_fraction_pct, format_table
from repro.config import SystemConfig, TokenConfig
from repro.errors import ReproError
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import TECHNOLOGY_NODES, get_technology
from repro.sim.results import SimulationResult
from repro.sim.runner import run_multicore, run_policy_comparison, run_workload, with_policy
from repro.trace.format import trace_summary
from repro.trace.io import read_trace_file, write_trace_file
from repro.units import GHZ, MJ, NJ, NS, seconds_to_cycles
from repro.version import __version__
from repro.workloads import generate_trace, get_profile, profile_names

_POLICIES = ("never", "naive", "bet_guard", "mapg", "mapg_adaptive", "oracle")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MAPG (Memory Access Power Gating, DATE 2012) reproduction")
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    run_cmd = commands.add_parser("run", help="simulate one workload/policy")
    run_cmd.add_argument("workload",
                         help="profile name (see `profiles`), or a trace "
                              "file path ending in .jsonl or .bin")
    run_cmd.add_argument("--policy", choices=_POLICIES, default="mapg")
    run_cmd.add_argument("--ops", type=int, default=20_000)
    run_cmd.add_argument("--seed", type=int, default=1)
    run_cmd.add_argument("--engine", default="oracle",
                         help="execution kernel: 'oracle' (reference "
                              "event-driven simulator) or 'fast' (columnar "
                              "batched kernel, bit-identical results); "
                              "unknown names are a configuration error")
    run_cmd.add_argument("--technology", default="45nm")
    run_cmd.add_argument("--temperature", type=float, default=85.0,
                         help="junction temperature in C")
    run_cmd.add_argument("--baseline", action="store_true",
                         help="also run the never-gate baseline and report deltas")
    run_cmd.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON instead of a table")
    run_cmd.add_argument("--sleep-mode", choices=("full", "retention", "dual"),
                         default="full", help="sleep depth selection (F12)")
    run_cmd.add_argument("--prefetch-degree", type=int, default=0,
                         help="L2 stride-prefetch degree; 0 disables (F11)")
    run_cmd.add_argument("--miss-window", type=int, default=1,
                         help="outstanding-miss window; >1 = MLP core (F15)")
    run_cmd.add_argument("--trace-out", metavar="PATH",
                         help="write a Perfetto/Chrome trace JSON of the run "
                              "to PATH, plus a run manifest "
                              "(*.manifest.json) and a JSONL metrics "
                              "snapshot (*.metrics.jsonl) next to it; open "
                              "the trace at ui.perfetto.dev (1 trace us = "
                              "1 core cycle)")
    run_cmd.add_argument("--self-profile", action="store_true",
                         help="measure the simulator itself (wall time, "
                              "instructions/sec, peak RSS) and report it")

    compare_cmd = commands.add_parser(
        "compare", help="policy-comparison matrix (F2)")
    compare_cmd.add_argument("--workloads", nargs="+", default=None,
                             help="default: all profiles")
    compare_cmd.add_argument("--policies", nargs="+", default=list(_POLICIES))
    compare_cmd.add_argument("--ops", type=int, default=10_000)
    compare_cmd.add_argument("--seed", type=int, default=1)
    compare_cmd.add_argument("--engine", default="oracle",
                             help="execution kernel per cell "
                                  "('oracle' or 'fast'; see `run --help`)")

    circuit_cmd = commands.add_parser(
        "circuit", help="sleep-transistor characterization (T2)")
    circuit_cmd.add_argument("--frequency-ghz", type=float, default=2.0)
    circuit_cmd.add_argument("--temperature", type=float, default=85.0)
    circuit_cmd.add_argument("--nodes", nargs="+",
                             default=list(TECHNOLOGY_NODES))

    sweep_cmd = commands.add_parser("sweep", help="1-D sensitivity sweep")
    sweep_cmd.add_argument("axis",
                           choices=("bet", "wake", "dram", "temperature"))
    sweep_cmd.add_argument("--workload", default="mcf_like")
    sweep_cmd.add_argument("--values", nargs="+", type=float, default=None,
                           help="sweep points (scale factors, or C for temperature)")
    sweep_cmd.add_argument("--ops", type=int, default=10_000)
    sweep_cmd.add_argument("--seed", type=int, default=1)
    sweep_cmd.add_argument("--engine", default="oracle",
                           help="execution kernel per cell "
                                "('oracle' or 'fast'; see `run --help`)")
    sweep_cmd.add_argument("--jobs", type=int, default=1,
                           help="worker processes for the sweep engine; "
                                "results are byte-identical at any count")
    sweep_cmd.add_argument("--cache", metavar="DIR", nargs="?",
                           const=".mapg-result-cache", default=None,
                           help="memoize cells in a result cache "
                                "(default dir: .mapg-result-cache)")
    sweep_cmd.add_argument("--telemetry-out", metavar="PATH",
                           help="write a sweep manifest (spec keys, "
                                "per-cell hit/miss/timing records, "
                                "counters) to PATH plus a JSONL lifecycle "
                                "event stream (*.events.jsonl) next to it; "
                                "a live progress/ETA line is shown on TTY "
                                "stderr")

    multi_cmd = commands.add_parser(
        "multicore", help="multiprogrammed mix with optional TAP tokens (F7)")
    multi_cmd.add_argument("workloads", nargs="+",
                           help="one profile per core")
    multi_cmd.add_argument("--policy", choices=_POLICIES, default="mapg")
    multi_cmd.add_argument("--tokens", type=int, default=0,
                           help="wake tokens; 0 disables arbitration")
    multi_cmd.add_argument("--ops", type=int, default=5_000)
    multi_cmd.add_argument("--seed", type=int, default=1)
    multi_cmd.add_argument("--trace-out", metavar="PATH",
                           help="write a Perfetto trace (one lane group per "
                                "core plus the shared DRAM lane), manifest, "
                                "and metrics JSONL, as in `run --trace-out`")

    commands.add_parser("profiles", help="list built-in workload profiles")

    variation_cmd = commands.add_parser(
        "variation", help="die-to-die leakage population study (F13)")
    variation_cmd.add_argument("--technology", default="45nm")
    variation_cmd.add_argument("--sigma", type=float, default=0.3,
                               help="lognormal sigma of ln(leakage)")
    variation_cmd.add_argument("--dies", type=int, default=40)
    variation_cmd.add_argument("--seed", type=int, default=17)

    trace_cmd = commands.add_parser(
        "trace", help="generate or summarize trace files")
    trace_actions = trace_cmd.add_subparsers(dest="trace_command", required=True)
    gen = trace_actions.add_parser("generate", help="write a synthetic trace")
    gen.add_argument("workload")
    gen.add_argument("path", help="output path (.jsonl or .bin)")
    gen.add_argument("--ops", type=int, default=10_000)
    gen.add_argument("--seed", type=int, default=1)
    info = trace_actions.add_parser("info", help="summarize a trace file")
    info.add_argument("path")

    watch_cmd = commands.add_parser(
        "watch-perf",
        help="compare observed perf against the bench baseline and emit "
             "anomaly_report.json")
    watch_cmd.add_argument("observed",
                           help="JSON document to judge: a bench scorecard "
                                "(scripts/bench_perf.py output), a "
                                "self-profile report, or a sweep manifest "
                                "(sweep --telemetry-out)")
    watch_cmd.add_argument("--baseline", default="BENCH_sim_throughput.json",
                           help="baseline scorecard (default: the "
                                "checked-in BENCH_sim_throughput.json)")
    watch_cmd.add_argument("--report", default="anomaly_report.json",
                           metavar="PATH",
                           help="where to write the machine-readable "
                                "anomaly report (atomic)")
    watch_cmd.add_argument("--band", action="append", default=None,
                           metavar="METRIC=TOL[:higher|lower]",
                           help="override the watch list, e.g. "
                                "single_core.ops_per_sec=0.3 or "
                                "sweep_serial.wall_s=0.5:lower; repeatable")
    watch_cmd.add_argument("--anomalies-log", default=None, metavar="PATH",
                           help="on regression, append one issue row per "
                                "anomaly to this local JSONL history "
                                "(e.g. ANOMALIES.jsonl)")
    watch_cmd.add_argument("--archive-trace", default=None, metavar="TRACE",
                           help="on regression, copy this Perfetto trace "
                                "into --archive-dir as evidence")
    watch_cmd.add_argument("--archive-dir", default="anomaly-artifacts",
                           help="destination for archived traces")
    watch_cmd.add_argument("--json", action="store_true",
                           help="print the anomaly report JSON to stdout")

    # ``lint`` is declared for --help discoverability; its arguments are
    # forwarded verbatim to repro.lint.cli in main() before parsing, since
    # argparse.REMAINDER cannot capture leading options like --list-rules.
    commands.add_parser(
        "lint", help="mapglint static analysis (see docs/LINTING.md)",
        add_help=False)

    return parser


# ---- command bodies ---------------------------------------------------------------


def _result_rows(result: SimulationResult) -> List[List[str]]:
    rows = [
        ["instructions", f"{result.instructions:,}"],
        ["total cycles", f"{result.total_cycles:,}"],
        ["IPC", f"{result.ipc:.3f}"],
        ["energy", f"{result.energy_j / MJ:.4f} mJ"],
        ["off-chip stalls", f"{int(result.offchip_stalls):,}"],
        ["gated stalls", f"{int(result.gated_stalls):,}"],
        ["sleep time", format_fraction_pct(result.sleep_fraction)],
        ["penalty cycles", f"{result.penalty_cycles:,}"],
    ]
    return rows


def _run_one(config: SystemConfig, args: argparse.Namespace,
             recorder: object = None) -> SimulationResult:
    """One simulation of the run command's workload (profile or trace file)."""
    from repro.fastsim import validate_engine

    engine = getattr(args, "engine", "oracle")
    validate_engine(engine)
    if args.workload.endswith((".jsonl", ".bin")):
        from repro.sim.simulator import Simulator

        trace = read_trace_file(args.workload)
        if engine == "fast":
            from repro.fastsim import ColumnarTrace, FastSimulator

            fast = FastSimulator(config, workload=args.workload,
                                 temperature_c=args.temperature,
                                 seed=args.seed, recorder=recorder)
            return fast.run(ColumnarTrace(trace))
        simulator = Simulator(config, workload=args.workload,
                              temperature_c=args.temperature, seed=args.seed,
                              recorder=recorder)
        return simulator.run(trace)
    return run_workload(config, args.workload, args.ops, seed=args.seed,
                        temperature_c=args.temperature, recorder=recorder,
                        engine=engine)


def _export_observability(recorder: "object", manifest: dict,
                          trace_out: str) -> None:
    """Write the trace / manifest / metrics triple next to ``trace_out``."""
    from pathlib import Path

    from repro.obs import (artifact_paths, metrics_to_jsonl, write_chrome_trace,
                           write_manifest)

    trace_path, manifest_path, metrics_path = artifact_paths(trace_out)
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    events = write_chrome_trace(recorder, trace_path, manifest=manifest)
    write_manifest(manifest, manifest_path)
    metrics_to_jsonl(recorder.metrics, metrics_path,
                     header={"schema": "mapg.run-metrics/1",
                             "workload": manifest.get("workload"),
                             "seed": manifest.get("seed"),
                             "config_digest": manifest.get("config_digest")})
    print(f"wrote {events} trace events to {trace_path} "
          f"(open at https://ui.perfetto.dev; 1 trace us = 1 cycle)",
          file=sys.stderr)
    print(f"wrote {manifest_path} and {metrics_path}", file=sys.stderr)


def _cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.config import PrefetcherConfig

    base = SystemConfig(technology=args.technology)
    base = base.replace(
        core=dataclasses.replace(base.core, miss_window=args.miss_window),
        prefetcher=PrefetcherConfig(enabled=args.prefetch_degree > 0,
                                    degree=max(1, args.prefetch_degree)))
    config = with_policy(base, args.policy, sleep_mode=args.sleep_mode)

    recorder = None
    profiler = None
    if args.trace_out:
        from repro.obs import SpanRecorder

        recorder = SpanRecorder()
    if args.trace_out or args.self_profile:
        from repro.obs.profile import SelfProfiler

        profiler = SelfProfiler()
    if profiler is not None:
        with profiler.stage("simulate") as stage:
            result = _run_one(config, args, recorder)
            stage.add_events(result.instructions)
    else:
        result = _run_one(config, args, recorder)
    payload = {
        "workload": result.workload,
        "policy": result.policy,
        "instructions": result.instructions,
        "total_cycles": result.total_cycles,
        "penalty_cycles": result.penalty_cycles,
        "energy_j": result.energy_j,
        "ipc": result.ipc,
        "sleep_fraction": result.sleep_fraction,
        "state_cycles": result.state_cycles,
    }
    if args.baseline:
        baseline = _run_one(with_policy(config, "never"), args)
        delta = result.compare(baseline)
        payload["vs_never"] = {
            "energy_saving": delta.energy_saving,
            "performance_penalty": delta.performance_penalty,
            "edp_ratio": delta.edp_ratio,
        }
    if profiler is not None and args.self_profile:
        payload["self_profile"] = profiler.report()
    if args.trace_out:
        from repro.obs import build_manifest

        manifest = build_manifest(
            config, workload=args.workload, seed=args.seed,
            num_ops=None if args.workload.endswith((".jsonl", ".bin"))
            else args.ops,
            command="run",
            extra={"self_profile": profiler.report()})
        _export_observability(recorder, manifest, args.trace_out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(format_table(["metric", "value"], _result_rows(result),
                       title=f"{args.workload} / {args.policy}"))
    if args.baseline:
        delta = payload["vs_never"]
        print(f"\nvs never-gate baseline: "
              f"saving {format_fraction_pct(delta['energy_saving'])}, "
              f"penalty {format_fraction_pct(delta['performance_penalty'], 2)}, "
              f"EDP ratio {delta['edp_ratio']:.3f}")
    if profiler is not None and args.self_profile:
        report = payload.get("self_profile") or profiler.report()
        simulate = next((stage for stage in report["stages"]
                         if stage["name"] == "simulate"), None)
        rss = report.get("peak_rss_bytes")
        print(f"\nself-profile: {report['total_wall_s']:.3f} s wall"
              + (f", {simulate['events_per_sec']:,.0f} instructions/s"
                 if simulate else "")
              + (f", peak RSS {rss / (1024 * 1024):.1f} MiB"
                 if rss else ""))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    workloads = args.workloads or profile_names()
    if "never" not in args.policies:
        args.policies.insert(0, "never")
    matrix = run_policy_comparison(SystemConfig(), workloads, args.policies,
                                   args.ops, seed=args.seed,
                                   engine=args.engine)
    rows = []
    for workload in workloads:
        baseline = matrix[workload]["never"]
        for policy in args.policies:
            if policy == "never":
                continue
            delta = matrix[workload][policy].compare(baseline)
            rows.append([
                workload, policy,
                format_fraction_pct(delta.energy_saving),
                format_fraction_pct(delta.performance_penalty, precision=2),
                f"{delta.edp_ratio:.3f}",
            ])
    print(format_table(
        ["workload", "policy", "energy saving", "perf penalty", "EDP ratio"],
        rows, title=f"policy comparison ({args.ops} ops, seed {args.seed})"))
    return 0


def _cmd_circuit(args: argparse.Namespace) -> int:
    rows = []
    for name in args.nodes:
        tech = get_technology(name)
        circuit = SleepTransistorNetwork(
            tech, temperature_c=args.temperature).characterize(
                args.frequency_ghz * GHZ)
        rows.append([
            name,
            f"{circuit.switch_width_um / 1000:.0f}",
            circuit.stagger_groups,
            circuit.drain_cycles,
            f"{circuit.wake_latency_s / NS:.1f}",
            circuit.wake_cycles,
            f"{circuit.breakeven_s / NS:.1f}",
            circuit.breakeven_cycles,
        ])
    print(format_table(
        ["node", "width (mm)", "groups", "drain (cyc)", "wake (ns)",
         "wake (cyc)", "BET (ns)", "BET (cyc)"],
        rows,
        title=f"PG circuit at {args.frequency_ghz:g} GHz, {args.temperature:g} C"))
    return 0


_SWEEP_DEFAULTS = {
    "bet": (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
    "wake": (0.5, 1.0, 2.0, 4.0, 8.0),
    "dram": (0.5, 0.75, 1.0, 1.5, 2.0, 3.0),
    "temperature": (45.0, 65.0, 85.0, 110.0),
}


def _sweep_specs(axis: str, values: Sequence[float], workload: str,
                 num_ops: int, seed: int,
                 engine: str = "oracle") -> List["object"]:
    """The sweep as JobSpecs: per value, a never-gate cell then a mapg
    cell, with the swept knob applied exactly as the table expects."""
    from repro.exec import JobSpec

    base = SystemConfig()
    specs = []
    for value in values:
        temperature = 85.0
        config = base
        overrides = {}
        if axis == "bet":
            overrides["bet_scale"] = value
        elif axis == "wake":
            overrides["wake_scale"] = value
        elif axis == "dram":
            config = base.replace(dram=base.dram.scaled(value))
        else:
            temperature = value
        specs.append(JobSpec(config=with_policy(config, "never"),
                             profile=workload, num_ops=num_ops, seed=seed,
                             temperature_c=temperature, engine=engine))
        specs.append(JobSpec(config=with_policy(config, "mapg", **overrides),
                             profile=workload, num_ops=num_ops, seed=seed,
                             temperature_c=temperature, engine=engine))
    return specs


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.exec import ResultCache, SweepRunner

    values = tuple(args.values or _SWEEP_DEFAULTS[args.axis])
    specs = _sweep_specs(args.axis, values, args.workload, args.ops,
                         args.seed, engine=args.engine)
    recorder = None
    if args.telemetry_out:
        from repro.obs import SweepRecorder

        recorder = SweepRecorder(progress=sys.stderr)
    cache = ResultCache(args.cache) if args.cache else None
    runner = SweepRunner(jobs=args.jobs, cache=cache, recorder=recorder)
    try:
        results = runner.run(specs)
    finally:
        # Telemetry lands even when cells fail — the manifest's failure
        # records are the evidence trail for the SweepError diagnosis.
        if recorder is not None:
            from repro.obs import write_sweep_artifacts

            manifest_path, events_path = write_sweep_artifacts(
                recorder, args.telemetry_out)
            print(f"wrote sweep telemetry to {manifest_path} and "
                  f"{events_path}", file=sys.stderr)
    rows = []
    for index, value in enumerate(values):
        never = results[2 * index]
        mapg = results[2 * index + 1]
        delta = mapg.compare(never)
        rows.append([
            f"{value:g}",
            format_fraction_pct(delta.energy_saving),
            format_fraction_pct(delta.performance_penalty, precision=2),
            f"{delta.edp_ratio:.3f}",
            format_fraction_pct(mapg.sleep_fraction),
        ])
    unit = "C" if args.axis == "temperature" else "x scale"
    print(format_table(
        [f"{args.axis} ({unit})", "energy saving", "perf penalty",
         "EDP ratio", "sleep time"],
        rows, title=f"{args.axis} sweep on {args.workload}"))
    return 0


def _cmd_watch_perf(args: argparse.Namespace) -> int:
    from repro.obs import (append_anomaly_rows, archive_trace,
                           compare_to_baseline, load_perf_document,
                           parse_band, write_anomaly_report)

    observed = load_perf_document(args.observed)
    baseline = load_perf_document(args.baseline)
    bands = ([parse_band(text) for text in args.band]
             if args.band else None)
    report = compare_to_baseline(observed, baseline, bands=bands)
    report_path = write_anomaly_report(report, args.report)
    for warning in report["warnings"]:
        print(f"warning: {warning}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    if report["ok"]:
        checked = ", ".join(report["checked"]) or "none"
        if not args.json:
            print(f"perf ok: metrics within bands ({checked}); "
                  f"report -> {report_path}")
        return 0
    for anomaly in report["anomalies"]:
        print(f"ANOMALY {anomaly['metric']}: baseline "
              f"{anomaly['baseline']:g} -> observed "
              f"{anomaly['observed']:g} (ratio {anomaly['ratio']:.3f}, "
              f"band {anomaly['band']:g}, {anomaly['direction']} is "
              f"better)", file=sys.stderr)
    if args.anomalies_log:
        appended = append_anomaly_rows(report, args.anomalies_log)
        print(f"appended {appended} row(s) to {args.anomalies_log}",
              file=sys.stderr)
    if args.archive_trace:
        destination = archive_trace(args.archive_trace, args.archive_dir)
        if destination is not None:
            print(f"archived trace to {destination}", file=sys.stderr)
        else:
            print(f"warning: trace {args.archive_trace} not found; "
                  f"nothing archived", file=sys.stderr)
    print(f"anomaly report -> {report_path}", file=sys.stderr)
    return 1


def _cmd_multicore(args: argparse.Namespace) -> int:
    token_config = TokenConfig(enabled=args.tokens > 0,
                               wake_tokens=max(1, args.tokens))
    config = with_policy(
        SystemConfig(num_cores=len(args.workloads), token=token_config),
        args.policy)
    recorder = None
    if args.trace_out:
        from repro.obs import SpanRecorder

        recorder = SpanRecorder()
    result = run_multicore(config, args.workloads, args.ops, seed=args.seed,
                           recorder=recorder)
    if args.trace_out:
        from repro.obs import build_manifest

        manifest = build_manifest(
            config, workload=",".join(args.workloads), seed=args.seed,
            num_ops=args.ops, command="multicore")
        _export_observability(recorder, manifest, args.trace_out)
    rows = []
    for core_id, core_result in result.per_core.items():
        rows.append([
            core_id, core_result.workload,
            f"{core_result.total_cycles:,}",
            f"{core_result.energy_j / MJ:.4f}",
            format_fraction_pct(core_result.performance_penalty, precision=2),
            format_fraction_pct(core_result.sleep_fraction),
        ])
    print(format_table(
        ["core", "workload", "cycles", "energy (mJ)", "penalty", "sleep"],
        rows,
        title=(f"{result.num_cores} cores / policy {result.policy} / "
               f"tokens {'off' if args.tokens == 0 else args.tokens}")))
    print(f"\ntotal energy {result.total_energy_j / MJ:.4f} mJ, "
          f"makespan {result.makespan_cycles:,} cycles")
    if result.token_counters:
        deferred = int(result.token_counters.get("deferred_grants", 0))
        forced = int(result.token_counters.get("forced_grants", 0))
        print(f"token arbitration: {deferred} deferred, {forced} forced grants")
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    rows = []
    for name in profile_names():
        profile = get_profile(name)
        rows.append([
            name,
            f"{profile.working_set_bytes // (1024 * 1024)} MiB",
            f"{profile.instructions_per_memory_op:g}",
            f"{profile.random_fraction:.2f}",
            f"{profile.reuse_fraction:.2f}",
            profile.description,
        ])
    print(format_table(
        ["profile", "working set", "instr/mem-op", "random frac",
         "reuse frac", "description"],
        rows, title="built-in workload profiles (most memory-bound first)"))
    return 0


def _cmd_variation(args: argparse.Namespace) -> int:
    from repro.power.variation import LeakageVariationModel

    tech = get_technology(args.technology)
    model = LeakageVariationModel(tech, sigma_log=args.sigma, seed=args.seed)
    dies = model.sample_population(args.dies)
    frequency_hz = 2e9
    rows = []
    for die in sorted(dies, key=lambda d: d.leakage_multiplier):
        bet_cycles = seconds_to_cycles(die.network.breakeven_time_s(),
                                       frequency_hz)
        saving_nj = die.network.net_saving_j(85 * NS) / NJ
        rows.append([
            die.die_id, f"{die.leakage_multiplier:.2f}",
            f"{bet_cycles:.0f}", f"{saving_nj:.1f}",
        ])
    print(format_table(
        ["die", "leakage x", "BET (cyc @2GHz)", "saving/85ns stall (nJ)"],
        rows,
        title=(f"{args.dies} virtual dies, {args.technology}, "
               f"sigma_log={args.sigma:g} (sorted by leakage)")))
    losing = sum(1 for row in rows if float(row[3]) <= 0.0)
    print(f"\ndies losing energy at a typical stall: {losing}/{args.dies}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if args.trace_command == "generate":
        ops = generate_trace(args.workload, args.ops, seed=args.seed)
        count = write_trace_file(ops, args.path)
        print(f"wrote {count} records to {args.path}")
        return 0
    ops = read_trace_file(args.path)
    summary = trace_summary(ops)
    print(format_table(
        ["metric", "value"],
        [[key, f"{value:,}"] for key, value in summary.items()],
        title=args.path))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "compare": _cmd_compare,
    "circuit": _cmd_circuit,
    "sweep": _cmd_sweep,
    "multicore": _cmd_multicore,
    "profiles": _cmd_profiles,
    "variation": _cmd_variation,
    "trace": _cmd_trace,
    "watch-perf": _cmd_watch_perf,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments and arguments[0] == "lint":
        from repro.lint.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        return _COMMANDS[args.command](args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
