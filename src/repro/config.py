"""Validated configuration objects for every subsystem.

One frozen dataclass per subsystem, aggregated into :class:`SystemConfig`.
All configs validate in ``__post_init__`` so that an invalid configuration
fails at construction time — never mid-simulation.  Every config round-trips
through plain dicts (:meth:`to_dict` / :meth:`from_dict`) and therefore
through JSON, which the benchmark harness uses to record the exact
configuration next to every result row.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError
from repro.units import GHZ


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of one trace-driven core.

    The core retires one instruction per cycle when not stalled; cache hit
    latencies are charged as extra cycles on the access path.  ``mlp_overlap``
    models memory-level parallelism as a scalar shortening factor on
    back-to-back misses (blocking core only); ``miss_window > 1`` selects
    the structural windowed-MLP core instead, which supersedes
    ``mlp_overlap``.
    """

    frequency_hz: float = 2.0 * GHZ
    pipeline_depth: int = 12
    issue_width: int = 1
    mlp_overlap: float = 0.0
    # Outstanding off-chip misses the core can run past before stalling
    # (1 = blocking in-order; >1 selects the windowed-MLP core model).
    miss_window: int = 1

    def __post_init__(self) -> None:
        _require(self.frequency_hz > 0, f"frequency_hz must be > 0, got {self.frequency_hz}")
        _require(self.pipeline_depth >= 1, f"pipeline_depth must be >= 1, got {self.pipeline_depth}")
        _require(self.issue_width >= 1, f"issue_width must be >= 1, got {self.issue_width}")
        _require(0.0 <= self.mlp_overlap <= 1.0,
                 f"mlp_overlap must be in [0, 1], got {self.mlp_overlap}")
        _require(self.miss_window >= 1,
                 f"miss_window must be >= 1, got {self.miss_window}")

    @property
    def cycle_time_s(self) -> float:
        """Duration of one core clock cycle in seconds."""
        return 1.0 / self.frequency_hz


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str = "L1D"
    size_bytes: int = 32 * 1024
    line_bytes: int = 64
    associativity: int = 8
    hit_latency_cycles: int = 3
    replacement: str = "lru"  # one of: lru, random, plru
    write_back: bool = True
    mshr_entries: int = 8

    _REPLACEMENT_POLICIES = ("lru", "random", "plru")

    def __post_init__(self) -> None:
        _require(bool(self.name), "cache name must be non-empty")
        _require(_is_power_of_two(self.line_bytes), f"line_bytes must be a power of two, got {self.line_bytes}")
        _require(self.size_bytes >= self.line_bytes,
                 f"size_bytes ({self.size_bytes}) must be >= line_bytes ({self.line_bytes})")
        _require(self.size_bytes % self.line_bytes == 0,
                 f"size_bytes must be a multiple of line_bytes")
        lines = self.size_bytes // self.line_bytes
        _require(self.associativity >= 1, f"associativity must be >= 1, got {self.associativity}")
        _require(lines % self.associativity == 0,
                 f"number of lines ({lines}) must be divisible by associativity ({self.associativity})")
        _require(_is_power_of_two(lines // self.associativity),
                 f"number of sets ({lines // self.associativity}) must be a power of two")
        _require(self.hit_latency_cycles >= 0,
                 f"hit_latency_cycles must be >= 0, got {self.hit_latency_cycles}")
        _require(self.replacement in self._REPLACEMENT_POLICIES,
                 f"replacement must be one of {self._REPLACEMENT_POLICIES}, got {self.replacement!r}")
        _require(self.mshr_entries >= 1, f"mshr_entries must be >= 1, got {self.mshr_entries}")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // self.line_bytes // self.associativity


@dataclass(frozen=True)
class DramConfig:
    """Timing and organization of the off-chip DRAM.

    Timings are in **DRAM-bus nanoseconds** following DDR3-1600-like values;
    the memory controller converts to core cycles.  The row-buffer model
    distinguishes hits (tCAS), closed-row misses (tRCD + tCAS), and conflicts
    (tRP + tRCD + tCAS), plus a fixed controller/interconnect overhead.
    """

    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 8
    row_bytes: int = 8 * 1024
    t_cas_ns: float = 13.75
    t_rcd_ns: float = 13.75
    t_rp_ns: float = 13.75
    t_ras_ns: float = 35.0
    controller_overhead_ns: float = 20.0
    bus_transfer_ns: float = 5.0
    queue_service_ns: float = 7.5
    row_policy: str = "open"  # "open" or "closed" page policy
    refresh_interval_ns: float = 7800.0
    refresh_latency_ns: float = 0.0  # 0 disables refresh modeling
    # Per-bank write buffering: writes are absorbed into a buffer and drain
    # during idle gaps (read-priority scheduling).  0 disables buffering —
    # writes then occupy the bank immediately, like reads.
    write_buffer_per_bank: int = 4

    def __post_init__(self) -> None:
        _require(self.channels >= 1, f"channels must be >= 1, got {self.channels}")
        _require(self.ranks_per_channel >= 1, "ranks_per_channel must be >= 1")
        _require(self.banks_per_rank >= 1, "banks_per_rank must be >= 1")
        _require(_is_power_of_two(self.row_bytes), f"row_bytes must be a power of two, got {self.row_bytes}")
        for label in ("t_cas_ns", "t_rcd_ns", "t_rp_ns", "t_ras_ns",
                      "controller_overhead_ns", "bus_transfer_ns", "queue_service_ns"):
            _require(getattr(self, label) >= 0.0, f"{label} must be >= 0")
        _require(self.row_policy in ("open", "closed"),
                 f"row_policy must be 'open' or 'closed', got {self.row_policy!r}")
        _require(self.refresh_interval_ns > 0.0, "refresh_interval_ns must be > 0")
        _require(self.refresh_latency_ns >= 0.0, "refresh_latency_ns must be >= 0")
        _require(self.write_buffer_per_bank >= 0,
                 "write_buffer_per_bank must be >= 0")

    @property
    def total_banks(self) -> int:
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    def scaled(self, factor: float) -> "DramConfig":
        """Return a copy with all latency components scaled by ``factor``.

        Used by the F4 memory-latency sensitivity sweep.
        """
        _require(factor > 0.0, f"latency scale factor must be > 0, got {factor}")
        return dataclasses.replace(
            self,
            t_cas_ns=self.t_cas_ns * factor,
            t_rcd_ns=self.t_rcd_ns * factor,
            t_rp_ns=self.t_rp_ns * factor,
            t_ras_ns=self.t_ras_ns * factor,
            controller_overhead_ns=self.controller_overhead_ns * factor,
            bus_transfer_ns=self.bus_transfer_ns * factor,
            queue_service_ns=self.queue_service_ns * factor,
        )


@dataclass(frozen=True)
class GatingConfig:
    """Knobs of the MAPG controller (not the circuit — see power.gating).

    ``guard_margin_cycles`` is added on top of the break-even time before a
    gating decision is taken; it absorbs prediction error.  ``early_wakeup``
    enables just-in-time wakeup scheduled ``wake latency`` before the
    predicted data return; ``early_margin_cycles`` starts that wake a few
    cycles *earlier* still, trading a sliver of sleep for robustness against
    latency over-prediction (an unbiased predictor is late half the time —
    the margin biases the wake deliberately early, so a small prediction
    error costs idle-awake cycles instead of exposed wake latency).
    ``min_confidence`` gates the use of the latency predictor: below it,
    MAPG falls back to the conservative static estimate.
    """

    policy: str = "mapg"  # never | naive | bet_guard | mapg | mapg_adaptive | oracle
    predictor: str = "table"  # fixed | last_value | ewma | table | oracle
    guard_margin_cycles: int = 10
    early_wakeup: bool = True
    early_margin_cycles: int = 8
    min_confidence: float = 0.3
    bet_scale: float = 1.0  # multiplies the circuit-derived BET (F3 sweep)
    wake_scale: float = 1.0  # multiplies the circuit-derived wake latency (F5 sweep)
    # Sleep-mode selection (F12): "full" collapses the rail every time;
    # "retention" clamps it at the retention voltage every time (faster,
    # cheaper wake; continuous clamp power); "dual" lets MAPG pick — full
    # gate on confident long stalls, retention when the estimate is coarse.
    sleep_mode: str = "full"

    _POLICIES = ("never", "naive", "bet_guard", "mapg", "mapg_adaptive", "oracle")
    _PREDICTORS = ("fixed", "last_value", "ewma", "table", "oracle")
    _SLEEP_MODES = ("full", "retention", "dual")

    def __post_init__(self) -> None:
        _require(self.policy in self._POLICIES,
                 f"policy must be one of {self._POLICIES}, got {self.policy!r}")
        _require(self.predictor in self._PREDICTORS,
                 f"predictor must be one of {self._PREDICTORS}, got {self.predictor!r}")
        _require(self.guard_margin_cycles >= 0, "guard_margin_cycles must be >= 0")
        _require(self.early_margin_cycles >= 0, "early_margin_cycles must be >= 0")
        _require(0.0 <= self.min_confidence <= 1.0, "min_confidence must be in [0, 1]")
        _require(self.bet_scale > 0.0, "bet_scale must be > 0")
        _require(self.wake_scale >= 0.0, "wake_scale must be >= 0")
        _require(self.sleep_mode in self._SLEEP_MODES,
                 f"sleep_mode must be one of {self._SLEEP_MODES}, got {self.sleep_mode!r}")


@dataclass(frozen=True)
class TokenConfig:
    """Token-based adaptive power gating (TAP) arbitration for multi-core.

    ``wake_tokens`` bounds how many cores may be *waking up* simultaneously,
    which bounds the worst-case rush current on the shared power grid.
    """

    enabled: bool = False
    wake_tokens: int = 2
    token_wait_limit_cycles: int = 1000

    def __post_init__(self) -> None:
        _require(self.wake_tokens >= 1, "wake_tokens must be >= 1")
        _require(self.token_wait_limit_cycles >= 0, "token_wait_limit_cycles must be >= 0")


@dataclass(frozen=True)
class PrefetcherConfig:
    """Stride-prefetcher parameters (L2-side; see repro.memory.prefetch)."""

    enabled: bool = False
    table_entries: int = 32
    degree: int = 2            # prefetches issued per trained trigger
    confirmations: int = 2     # identical strides needed before issuing
    max_stride_bytes: int = 8 * 1024

    def __post_init__(self) -> None:
        _require(self.table_entries >= 1, "prefetcher table needs >= 1 entry")
        _require(self.degree >= 1, "prefetch degree must be >= 1")
        _require(self.confirmations >= 1, "confirmations must be >= 1")
        _require(self.max_stride_bytes >= 1, "max_stride_bytes must be >= 1")


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration of one simulated system."""

    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L1D", size_bytes=32 * 1024, associativity=8, hit_latency_cycles=3))
    l2: CacheConfig = field(default_factory=lambda: CacheConfig(
        name="L2", size_bytes=2 * 1024 * 1024, associativity=16, hit_latency_cycles=20,
        mshr_entries=16))
    dram: DramConfig = field(default_factory=DramConfig)
    gating: GatingConfig = field(default_factory=GatingConfig)
    token: TokenConfig = field(default_factory=TokenConfig)
    prefetcher: PrefetcherConfig = field(default_factory=PrefetcherConfig)
    technology: str = "45nm"
    num_cores: int = 1

    def __post_init__(self) -> None:
        _require(self.num_cores >= 1, f"num_cores must be >= 1, got {self.num_cores}")
        _require(self.l1.line_bytes == self.l2.line_bytes,
                 "L1 and L2 must use the same line size")
        _require(bool(self.technology), "technology name must be non-empty")

    # ---- dict / JSON round-trip -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SystemConfig":
        try:
            return cls(
                core=CoreConfig(**data.get("core", {})),
                l1=CacheConfig(**data.get("l1", {})),
                l2=CacheConfig(**data.get("l2", {})),
                dram=DramConfig(**data.get("dram", {})),
                gating=GatingConfig(**data.get("gating", {})),
                token=TokenConfig(**data.get("token", {})),
                prefetcher=PrefetcherConfig(**data.get("prefetcher", {})),
                technology=data.get("technology", "45nm"),
                num_cores=data.get("num_cores", 1),
            )
        except TypeError as exc:
            raise ConfigError(f"unknown or missing configuration field: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "SystemConfig":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"invalid JSON configuration: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("JSON configuration must be an object")
        return cls.from_dict(data)

    def replace(self, **overrides: Any) -> "SystemConfig":
        """Functional update, mirroring ``dataclasses.replace``."""
        return dataclasses.replace(self, **overrides)


def default_config() -> SystemConfig:
    """The baseline single-core system used throughout the evaluation (T1)."""
    return SystemConfig()
