"""MAPG core: the power-gating controller, policies, and energy ledger.

This package is the paper's primary contribution.  Everything else in
``repro`` exists to feed it (workloads, memory timing, circuit
characterization) or to measure it (stats, analysis).
"""

from repro.core.adaptive import AdaptiveMapgPolicy
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController, StallOutcome
from repro.core.energy import EnergyLedger
from repro.core.policies import (
    GatingDecision,
    GatingPolicy,
    MapgPolicy,
    NaivePolicy,
    NeverPolicy,
    OraclePolicy,
    ThresholdPolicy,
    make_policy,
)
from repro.core.state import PgState, PowerGateStateMachine
from repro.core.token import TokenArbiter
from repro.core.wakeup import WakeupPlan, plan_wakeup, resolve_wakeup

__all__ = [
    "AdaptiveMapgPolicy",
    "BreakEvenAnalyzer",
    "MapgController",
    "StallOutcome",
    "EnergyLedger",
    "GatingDecision",
    "GatingPolicy",
    "MapgPolicy",
    "NaivePolicy",
    "NeverPolicy",
    "OraclePolicy",
    "ThresholdPolicy",
    "make_policy",
    "PgState",
    "PowerGateStateMachine",
    "TokenArbiter",
    "WakeupPlan",
    "plan_wakeup",
    "resolve_wakeup",
]
