"""Adaptive MAPG: feedback-controlled early-wake bias.

The stock :class:`~repro.core.policies.MapgPolicy` biases its wake timer
early by a *fixed* margin on confident gates.  That constant embodies a
trade-off — waking late exposes wake latency, waking early burns
idle-awake leakage — and the right operating point depends on the
workload's latency variance, which drifts across phases.

:class:`AdaptiveMapgPolicy` closes the loop: the controller reports each
gated stall's realized outcome (:class:`~repro.core.wakeup.WakeupPlan`)
back to the policy, which nudges a single bias register with an asymmetric
AIMD rule:

* a **late wake** (penalty > 0) is expensive -> additive increase;
* a comfortably **early wake** (idle-awake above a tolerance) is cheap but
  wasteful -> multiplicative decay.

The asymmetry mirrors the cost asymmetry, exactly like TCP's congestion
window mirrors the loss/underuse asymmetry.  Hardware cost: one small
register, an adder, and a shift.
"""

from __future__ import annotations

from repro.core.gating_constants import (
    AIMD_BIAS_CAP_CYCLES, AIMD_DECAY, AIMD_IDLE_TOLERANCE_CYCLES,
    AIMD_INCREASE_CYCLES)
from repro.core.policies import MapgPolicy
from repro.core.wakeup import WakeupPlan
from repro.errors import ConfigError


class AdaptiveMapgPolicy(MapgPolicy):
    """MAPG with a run-time-adapted early-wake bias (policy ``mapg_adaptive``)."""

    # AIMD constants: additive increase per late wake, multiplicative decay
    # when wakes keep landing comfortably early (class-attribute aliases of
    # the shared definitions both engines import).
    _INCREASE_CYCLES = AIMD_INCREASE_CYCLES
    _DECAY = AIMD_DECAY
    _IDLE_TOLERANCE_CYCLES = AIMD_IDLE_TOLERANCE_CYCLES
    _BIAS_CAP_CYCLES = AIMD_BIAS_CAP_CYCLES

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._bias_cycles = float(self.config.early_margin_cycles)

    @property
    def bias_cycles(self) -> int:
        """The current adapted early-wake bias, in cycles."""
        return int(round(self._bias_cycles))

    def _early_margin_cycles(self) -> int:
        return self.bias_cycles

    def feedback(self, plan: WakeupPlan) -> None:
        """Adapt the bias from one gated stall's realized timeline."""
        if not isinstance(plan, WakeupPlan):
            raise ConfigError("feedback requires a realized WakeupPlan")
        if plan.penalty > 0:
            self._bias_cycles = min(
                float(self._BIAS_CAP_CYCLES),
                self._bias_cycles + self._INCREASE_CYCLES)
        elif plan.idle_awake > self._IDLE_TOLERANCE_CYCLES:
            self._bias_cycles *= self._DECAY
