"""Break-even decision mathematics.

The circuit model (``repro.power.gating``) answers "how long must the
domain *sleep* for gating to pay off" (the BET).  The controller needs a
slightly different question answered: "given a stall predicted to last D
cycles, should we gate?"  The two differ by the mechanics of a gating
event:

* the first ``drain`` cycles of the stall cannot be slept (pipeline drain);
* the last ``wake`` cycles cannot be slept either — they are spent
  recharging the rail (hidden under the stall by early wakeup, or exposed
  as a penalty without it);
* so the *achievable sleep* of a D-cycle stall is ``D - drain - wake``.

Gating is worthwhile when that achievable sleep clears the (scaled) BET
plus the policy's guard margin.  ``bet_scale`` and the margin come from
:class:`repro.config.GatingConfig`; the F3 sweep varies ``bet_scale`` to
trace the sensitivity curve.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import GatingConfig
from repro.errors import ConfigError
from repro.power.gating import GatingCircuit


@dataclass(frozen=True)
class BreakEvenAnalyzer:
    """Pre-scaled gating thresholds for one (circuit, config) pair."""

    circuit: GatingCircuit
    config: GatingConfig

    @property
    def bet_cycles(self) -> int:
        """Effective full-gate break-even sleep duration (config-scaled)."""
        return self.bet_cycles_for("full")

    @property
    def wake_cycles(self) -> int:
        """Effective full-gate wakeup latency (config-scaled)."""
        return self.wake_cycles_for("full")

    def bet_cycles_for(self, mode: str) -> int:
        """Break-even sleep duration of one sleep ``mode`` (config-scaled)."""
        if mode == "full":
            base = self.circuit.breakeven_cycles
        elif mode == "retention":
            base = self.circuit.retention_breakeven_cycles
        else:
            raise ConfigError(f"unknown sleep mode {mode!r}")
        return max(1, int(round(base * self.config.bet_scale)))

    def wake_cycles_for(self, mode: str) -> int:
        """Wakeup latency of one sleep ``mode`` (config-scaled)."""
        if mode == "full":
            base = self.circuit.wake_cycles
        elif mode == "retention":
            base = self.circuit.retention_wake_cycles
        else:
            raise ConfigError(f"unknown sleep mode {mode!r}")
        return max(0, int(round(base * self.config.wake_scale)))

    @property
    def drain_cycles(self) -> int:
        return self.circuit.drain_cycles

    @property
    def min_gateable_stall_cycles(self) -> int:
        """Shortest stall for which a full gate can possibly pay off."""
        return self.drain_cycles + self.wake_cycles + self.bet_cycles

    def achievable_sleep_cycles(self, stall_cycles: int,
                                mode: str = "full") -> int:
        """Sleep obtainable from a ``stall_cycles`` stall (>= 0)."""
        if stall_cycles < 0:
            raise ConfigError(f"stall_cycles must be >= 0, got {stall_cycles}")
        return max(0, stall_cycles - self.drain_cycles
                   - self.wake_cycles_for(mode))

    def worthwhile(self, predicted_stall_cycles: int,
                   apply_margin: bool = True, mode: str = "full") -> bool:
        """Gate if the predicted stall's achievable sleep clears BET (+margin)."""
        threshold = self.bet_cycles_for(mode)
        if apply_margin:
            threshold += self.config.guard_margin_cycles
        return self.achievable_sleep_cycles(
            predicted_stall_cycles, mode) >= threshold

    def net_saving_j(self, stall_cycles: int) -> float:
        """Net energy a perfectly-timed gating of this stall would win."""
        sleep = self.achievable_sleep_cycles(stall_cycles)
        if sleep <= 0:
            # No sleep happens, but drain+wake overheads would still be paid.
            return -self.circuit.overhead_energy_j(0)
        return self.circuit.net_saving_j(sleep)
