"""The MAPG controller: policy + wakeup mechanics + energy accounting glue.

One controller instance manages one gated core domain.  For every off-chip
stall the simulator reports, the controller:

1. consults its :class:`~repro.core.policies.GatingPolicy`;
2. if gating, resolves the wakeup plan against the actual stall length
   (including the data-return fallback trigger and, in multi-core TAP mode,
   the token-arbiter delay);
3. returns a :class:`StallOutcome` whose interval list tiles the stall
   exactly — the simulator charges those intervals to the energy ledger;
4. feeds the measured latency back to the policy's predictor.

The controller never touches global simulation state; it is a pure
per-stall transducer, which is what makes it unit-testable against
hand-computed timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.policies import GatingDecision, GatingPolicy
from repro.core.token import TokenArbiter
from repro.core.wakeup import WakeupPlan, resolve_wakeup
from repro.errors import SimulationError
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.power.model import CorePowerModel, PowerState
from repro.stats import CounterSet, RunningMean


@dataclass(frozen=True)
class StallOutcome:
    """Everything that happened during one off-chip stall.

    ``intervals`` tiles ``stall + penalty`` cycles exactly, in timeline
    order.  ``event_energy_j`` is the one-off gating cost (0 when ungated
    or aborted before the header switched).
    """

    gated: bool
    aborted: bool
    penalty_cycles: int
    event_energy_j: float
    decision: GatingDecision
    plan: Optional[WakeupPlan] = None
    intervals: Tuple[Tuple[PowerState, int], ...] = field(default_factory=tuple)

    @property
    def total_cycles(self) -> int:
        return sum(cycles for __, cycles in self.intervals)

    @property
    def sleep_cycles(self) -> int:
        return self.plan.sleep if self.plan is not None else 0


class MapgController:
    """Per-domain gating controller."""

    def __init__(self, policy: GatingPolicy, analyzer: BreakEvenAnalyzer,
                 power_model: CorePowerModel,
                 token_arbiter: Optional[TokenArbiter] = None,
                 core_id: int = 0,
                 recorder: Optional[NullRecorder] = None) -> None:
        self.policy = policy
        self.analyzer = analyzer
        self.power_model = power_model
        self.token_arbiter = token_arbiter
        self.core_id = core_id
        self.counters = CounterSet()
        self.prediction_error = RunningMean()
        self.prediction_relative_error = RunningMean()
        # Observability: decision instants land on a per-core controller
        # track (cycle-timestamped; see docs/OBSERVABILITY.md).
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._track = f"core{core_id}/controller"
        if self._obs.enabled:
            self._m_decisions = self._obs.metrics.counter(
                "controller.decisions", help="gating decisions taken")
            self._m_aborts = self._obs.metrics.counter(
                "controller.aborts", help="gates aborted during drain")

    def process_stall(self, pc: int, bank: int, actual_stall_cycles: int,
                      start_cycle: int = 0, kind: str = "",
                      elapsed_cycles: int = 0) -> StallOutcome:
        """Handle one off-chip stall beginning at ``start_cycle``.

        ``kind`` is the DRAM row-buffer outcome of the triggering access
        (exposed by the memory controller; empty when unknown).
        ``elapsed_cycles`` is how long the blocking access had already been
        in flight when the stall began — 0 on a blocking core, positive
        under MLP, where the policy subtracts it from its total-latency
        prediction to estimate the residual.
        """
        if actual_stall_cycles < 0:
            raise SimulationError(
                f"stall length must be >= 0, got {actual_stall_cycles}")
        if elapsed_cycles < 0:
            raise SimulationError(
                f"elapsed_cycles must be >= 0, got {elapsed_cycles}")
        self.counters.add("offchip_stalls")
        self.counters.add("offchip_stall_cycles", actual_stall_cycles)

        decision = self.policy.decide(pc, bank, actual_stall_cycles, kind,
                                      elapsed_cycles)
        self._record_prediction(decision, actual_stall_cycles)

        if not decision.gate:
            outcome = self._ungated_outcome(decision, actual_stall_cycles)
        else:
            outcome = self._gated_outcome(decision, actual_stall_cycles, start_cycle)

        if self._obs.enabled:
            self._m_decisions.inc()
            if outcome.aborted:
                self._m_aborts.inc()
            name = ("abort" if outcome.aborted
                    else f"gate.{decision.mode}" if outcome.gated else "skip")
            self._obs.instant(
                self._track, name, start_cycle,
                args={"reason": decision.reason,
                      "predicted_cycles": decision.predicted_cycles,
                      "actual_cycles": actual_stall_cycles})

        # Predictors learn the *total* latency of the blocking access.
        self.policy.observe(pc, bank, actual_stall_cycles + elapsed_cycles, kind)
        if outcome.gated and not outcome.aborted and outcome.plan is not None:
            self.policy.feedback(outcome.plan)
        self._verify_tiling(outcome, actual_stall_cycles)
        return outcome

    # ---- outcome construction ----------------------------------------------------

    def _ungated_outcome(self, decision: GatingDecision,
                         stall: int) -> StallOutcome:
        self.counters.add("ungated")
        intervals: Tuple[Tuple[PowerState, int], ...] = ()
        if stall > 0:
            intervals = ((PowerState.STALL, stall),)
        return StallOutcome(
            gated=False, aborted=False, penalty_cycles=0, event_energy_j=0.0,
            decision=decision, plan=None, intervals=intervals)

    def _gated_outcome(self, decision: GatingDecision, stall: int,
                       start_cycle: int) -> StallOutcome:
        drain = self.analyzer.drain_cycles
        wake = self.analyzer.wake_cycles_for(decision.mode)
        sleep_state = (PowerState.SLEEP_RETENTION
                       if decision.mode == "retention" else PowerState.SLEEP)

        token_delay = 0
        if self.token_arbiter is not None and stall > drain:
            # The wake trigger fires at the planned offset or data return.
            if decision.planned_wake_offset is None:
                trigger_offset = stall
            else:
                trigger_offset = min(decision.planned_wake_offset, stall)
            token_delay = self.token_arbiter.request(
                core_id=self.core_id,
                trigger_cycle=start_cycle + trigger_offset,
                hold_cycles=wake)
            if token_delay:
                self.counters.add("token_delays")
                self.counters.add("token_delay_cycles", token_delay)

        plan = resolve_wakeup(stall, drain, wake,
                              decision.planned_wake_offset, token_delay)

        if plan.wake == 0 and plan.sleep == 0:
            # Abort: data returned during drain; the header never opened.
            self.counters.add("aborted")
            intervals: List[Tuple[PowerState, int]] = []
            if plan.drain > 0:
                intervals.append((PowerState.DRAIN, plan.drain))
            return StallOutcome(
                gated=True, aborted=True, penalty_cycles=0, event_energy_j=0.0,
                decision=decision, plan=plan, intervals=tuple(intervals))

        self.counters.add("gated")
        self.counters.add(f"gated_{decision.mode}")
        self.counters.add("sleep_cycles", plan.sleep)
        self.counters.add("penalty_cycles", plan.penalty)
        if plan.idle_awake:
            self.counters.add("early_wake_idle_cycles", plan.idle_awake)

        event_energy = self.power_model.gating_event_energy_j(
            plan.sleep, mode=decision.mode)
        intervals = []
        if plan.drain:
            intervals.append((PowerState.DRAIN, plan.drain))
        sleep_proper = plan.sleep - plan.token_wait
        if sleep_proper:
            intervals.append((sleep_state, sleep_proper))
        if plan.token_wait:
            # Token-blocked time is spent gated; bill it at sleep power but
            # keep it distinguishable for the F7 report.
            intervals.append((sleep_state, plan.token_wait))
        if plan.wake:
            intervals.append((PowerState.WAKE, plan.wake))
        if plan.idle_awake:
            intervals.append((PowerState.STALL, plan.idle_awake))
        return StallOutcome(
            gated=True, aborted=False, penalty_cycles=plan.penalty,
            event_energy_j=event_energy, decision=decision, plan=plan,
            intervals=tuple(intervals))

    # ---- bookkeeping ---------------------------------------------------------------

    def _record_prediction(self, decision: GatingDecision, actual: int) -> None:
        if decision.predicted_cycles <= 0:
            return
        error = abs(decision.predicted_cycles - actual)
        self.prediction_error.observe(error)
        self.prediction_relative_error.observe(error / max(1, actual))

    @staticmethod
    def _verify_tiling(outcome: StallOutcome, stall: int) -> None:
        expected = stall + outcome.penalty_cycles
        if outcome.total_cycles != expected:
            raise SimulationError(
                f"outcome intervals tile {outcome.total_cycles} cycles, "
                f"expected stall {stall} + penalty {outcome.penalty_cycles}")

    # ---- summary -------------------------------------------------------------------

    @property
    def gate_rate(self) -> float:
        """Fraction of off-chip stalls the controller actually gated."""
        return self.counters.ratio("gated", "offchip_stalls")

    @property
    def mean_absolute_prediction_error(self) -> float:
        return self.prediction_error.mean
