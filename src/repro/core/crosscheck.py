"""Cycle-accurate cross-checks: wakeup algebra, and kernel vs oracle.

``repro.core.wakeup.resolve_wakeup`` computes a gated stall's timeline
*algebraically*.  :func:`resolve_by_events` recomputes the same timeline
the way the hardware actually produces it — as a sequence of discrete
events on the :class:`~repro.events.EventQueue`:

* ``t = 0``        stall begins, drain starts
* ``t = drain``    drain completes; the domain sleeps (unless aborted)
* planned timer    wake starts (if scheduled and not already triggered)
* ``t = D``        data returns; the fallback trigger fires if the domain
                   is still asleep
* trigger + token  wake actually begins (token grant may defer it)
* wake start + w   domain ready; the stall ends at ``max(D, ready)``

The two implementations share no code, so agreement across randomized
inputs (``tests/test_crosscheck.py``) is genuine evidence the algebra is
right — the same role a SPICE-vs-analytic comparison plays for the circuit
model.

:func:`crosscheck_engines` extends the same discipline one level up: it
runs a whole simulation cell through the event-driven oracle *and*
through the columnar batched kernel (:mod:`repro.fastsim`) and compares
the two :class:`~repro.sim.results.SimulationResult` objects **byte for
byte** (canonical JSON of every field — energy ledger, state cycles,
controller counters, histograms, timeline).  The fast kernel's contract
is bit-identity, not tolerance bands, so any divergence is a bug by
definition.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional, Tuple

from repro.core.wakeup import WakeupPlan
from repro.errors import SimulationError
from repro.events import EventQueue


class _DomainState:
    """Mutable event-driven state of one gated domain during one stall."""

    __slots__ = ("asleep", "wake_started", "wake_start_cycle",
                 "data_returned", "drain_done_cycle")

    def __init__(self) -> None:
        self.asleep = False
        self.wake_started = False
        self.wake_start_cycle: Optional[int] = None
        self.data_returned = False
        self.drain_done_cycle: Optional[int] = None


def resolve_by_events(actual_stall: int, drain: int, wake: int,
                      planned_wake_offset: Optional[int],
                      token_delay: int = 0) -> WakeupPlan:
    """Event-driven equivalent of :func:`repro.core.wakeup.resolve_wakeup`."""
    if actual_stall < 0 or drain < 0 or wake < 0 or token_delay < 0:
        raise SimulationError("cross-check needs non-negative cycle counts")
    if planned_wake_offset is not None and planned_wake_offset < drain:
        raise SimulationError("planned wake offset precedes drain end")

    # Abort: data returns while still draining — no sleep, no wake.
    if actual_stall <= drain:
        return WakeupPlan(drain=actual_stall, sleep=0, wake=0,
                          idle_awake=0, penalty=0)

    queue = EventQueue()
    state = _DomainState()

    def drain_done() -> None:
        state.drain_done_cycle = queue.now
        state.asleep = True

    def try_start_wake() -> None:
        if state.wake_started or not state.asleep:
            return
        state.wake_started = True
        state.wake_start_cycle = queue.now + token_delay

    def data_return() -> None:
        state.data_returned = True
        try_start_wake()  # fallback trigger

    queue.schedule(drain, drain_done)
    queue.schedule(actual_stall, data_return)
    if planned_wake_offset is not None:
        queue.schedule(planned_wake_offset, try_start_wake)
    queue.run()

    if not state.wake_started or state.wake_start_cycle is None:
        raise SimulationError("wake never started — event model bug")

    ready = state.wake_start_cycle + wake
    sleep = state.wake_start_cycle - drain
    penalty = max(0, ready - actual_stall)
    idle_awake = max(0, actual_stall - ready)
    # The wake trigger never precedes drain completion, so the sleep always
    # contains the whole token wait.
    return WakeupPlan(drain=drain, sleep=sleep, wake=wake,
                      idle_awake=idle_awake, penalty=penalty,
                      token_wait=token_delay)


# ---- kernel vs oracle -------------------------------------------------------------


def result_digest(result: Any) -> str:
    """sha256 over the canonical JSON of a ``SimulationResult``.

    Every field participates — two results share a digest iff they are
    byte-identical under ``json.dumps(asdict(result), sort_keys=True)``,
    the same serialization the parity tests compare directly.
    """
    payload = json.dumps(dataclasses.asdict(result), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class EngineCrosscheck:
    """Outcome of one oracle-vs-kernel comparison of a simulation cell."""

    workload: str
    policy: str
    num_ops: int
    seed: int
    warmup_ops: int
    identical: bool
    oracle_digest: str
    fast_digest: str
    diverging_fields: Tuple[str, ...]
    fallback_reasons: Tuple[str, ...]

    @property
    def used_fast_path(self) -> bool:
        """False when the kernel transparently fell back to the oracle
        (the comparison is then trivially identical, not evidence)."""
        return not self.fallback_reasons


def crosscheck_engines(config: Any, profile_name: str, num_ops: int,
                       seed: int = 1, warmup_ops: int = 0,
                       temperature_c: Optional[float] = None
                       ) -> EngineCrosscheck:
    """Run one cell through both engines and compare byte-for-byte.

    The oracle runs via the streaming generator path and the kernel via
    its columnar ingest, exactly as ``run_workload(engine=...)`` would
    dispatch them — so this checks the end-to-end user-visible contract,
    not a lab setup.  Returns the comparison; use
    :func:`verify_engines` to turn divergence into an exception.
    """
    from repro.fastsim import FastSimulator, shared_columnar_store
    from repro.sim.runner import run_workload

    oracle = run_workload(config, profile_name, num_ops, seed=seed,
                          temperature_c=temperature_c,
                          warmup_ops=warmup_ops)
    kwargs = {} if temperature_c is None else {"temperature_c": temperature_c}
    fast = FastSimulator(config, workload=profile_name, seed=seed, **kwargs)
    warm_trace, measured_trace = shared_columnar_store().traces(
        profile_name, num_ops, seed=seed, warmup_ops=warmup_ops)
    if warmup_ops:
        fast.warm_up(warm_trace)
    result = fast.run(measured_trace)

    oracle_json = dataclasses.asdict(oracle)
    fast_json = dataclasses.asdict(result)
    diverging = tuple(
        field for field in sorted(set(oracle_json) | set(fast_json))
        if json.dumps(oracle_json.get(field), sort_keys=True)
        != json.dumps(fast_json.get(field), sort_keys=True))
    return EngineCrosscheck(
        workload=profile_name, policy=config.gating.policy,
        num_ops=num_ops, seed=seed, warmup_ops=warmup_ops,
        identical=not diverging,
        oracle_digest=result_digest(oracle),
        fast_digest=result_digest(result),
        diverging_fields=diverging,
        fallback_reasons=tuple(fast.fallback_reasons))


def verify_engines(config: Any, profile_name: str, num_ops: int,
                   seed: int = 1, warmup_ops: int = 0,
                   temperature_c: Optional[float] = None
                   ) -> EngineCrosscheck:
    """:func:`crosscheck_engines`, raising on any divergence."""
    check = crosscheck_engines(config, profile_name, num_ops, seed=seed,
                               warmup_ops=warmup_ops,
                               temperature_c=temperature_c)
    if not check.identical:
        raise SimulationError(
            f"fast kernel diverged from oracle on "
            f"{check.workload}/{check.policy} (ops={check.num_ops}, "
            f"seed={check.seed}, warmup={check.warmup_ops}): "
            f"fields {', '.join(check.diverging_fields)}")
    return check
