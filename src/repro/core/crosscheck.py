"""Cycle-accurate cross-check of the wakeup timing algebra.

``repro.core.wakeup.resolve_wakeup`` computes a gated stall's timeline
*algebraically*.  This module recomputes the same timeline the way the
hardware actually produces it — as a sequence of discrete events on the
:class:`~repro.events.EventQueue`:

* ``t = 0``        stall begins, drain starts
* ``t = drain``    drain completes; the domain sleeps (unless aborted)
* planned timer    wake starts (if scheduled and not already triggered)
* ``t = D``        data returns; the fallback trigger fires if the domain
                   is still asleep
* trigger + token  wake actually begins (token grant may defer it)
* wake start + w   domain ready; the stall ends at ``max(D, ready)``

The two implementations share no code, so agreement across randomized
inputs (``tests/test_crosscheck.py``) is genuine evidence the algebra is
right — the same role a SPICE-vs-analytic comparison plays for the circuit
model.
"""

from __future__ import annotations

from typing import Optional

from repro.core.wakeup import WakeupPlan
from repro.errors import SimulationError
from repro.events import EventQueue


class _DomainState:
    """Mutable event-driven state of one gated domain during one stall."""

    __slots__ = ("asleep", "wake_started", "wake_start_cycle",
                 "data_returned", "drain_done_cycle")

    def __init__(self) -> None:
        self.asleep = False
        self.wake_started = False
        self.wake_start_cycle: Optional[int] = None
        self.data_returned = False
        self.drain_done_cycle: Optional[int] = None


def resolve_by_events(actual_stall: int, drain: int, wake: int,
                      planned_wake_offset: Optional[int],
                      token_delay: int = 0) -> WakeupPlan:
    """Event-driven equivalent of :func:`repro.core.wakeup.resolve_wakeup`."""
    if actual_stall < 0 or drain < 0 or wake < 0 or token_delay < 0:
        raise SimulationError("cross-check needs non-negative cycle counts")
    if planned_wake_offset is not None and planned_wake_offset < drain:
        raise SimulationError("planned wake offset precedes drain end")

    # Abort: data returns while still draining — no sleep, no wake.
    if actual_stall <= drain:
        return WakeupPlan(drain=actual_stall, sleep=0, wake=0,
                          idle_awake=0, penalty=0)

    queue = EventQueue()
    state = _DomainState()

    def drain_done() -> None:
        state.drain_done_cycle = queue.now
        state.asleep = True

    def try_start_wake() -> None:
        if state.wake_started or not state.asleep:
            return
        state.wake_started = True
        state.wake_start_cycle = queue.now + token_delay

    def data_return() -> None:
        state.data_returned = True
        try_start_wake()  # fallback trigger

    queue.schedule(drain, drain_done)
    queue.schedule(actual_stall, data_return)
    if planned_wake_offset is not None:
        queue.schedule(planned_wake_offset, try_start_wake)
    queue.run()

    if not state.wake_started or state.wake_start_cycle is None:
        raise SimulationError("wake never started — event model bug")

    ready = state.wake_start_cycle + wake
    sleep = state.wake_start_cycle - drain
    penalty = max(0, ready - actual_stall)
    idle_awake = max(0, actual_stall - ready)
    # The wake trigger never precedes drain completion, so the sleep always
    # contains the whole token wait.
    return WakeupPlan(drain=drain, sleep=sleep, wake=wake,
                      idle_awake=idle_awake, penalty=penalty,
                      token_wait=token_delay)
