"""Energy ledger: integrates power over the state-tiled time axis.

The ledger receives (state, cycles) intervals and per-event joule charges
from the controller and keeps running totals per state.  It is the single
source of truth for every energy number in the evaluation; the invariant
tests assert that its total cycle count equals the simulated execution time
so no cycle is ever double- or un-billed.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.power.model import CorePowerModel, PowerState
from repro.units import cycles_to_seconds


class EnergyLedger:
    """Accumulates interval and event energy for one gated domain."""

    def __init__(self, power_model: CorePowerModel) -> None:
        self.power_model = power_model
        self._state_cycles: Dict[PowerState, int] = {state: 0 for state in PowerState}
        self._state_energy_j: Dict[PowerState, float] = {state: 0.0 for state in PowerState}
        self._event_energy_j = 0.0
        self._event_count = 0

    def add_interval(self, state: PowerState, cycles: int) -> None:
        """Charge ``cycles`` of residency in ``state``."""
        if cycles < 0:
            raise SimulationError(f"interval cycles must be >= 0, got {cycles}")
        if cycles == 0:
            return
        self._state_cycles[state] += cycles
        self._state_energy_j[state] += self.power_model.interval_energy_j(state, cycles)

    def add_event(self, energy_j: float) -> None:
        """Charge a one-off event cost (header drive + rail recharge)."""
        if energy_j < 0.0:
            raise SimulationError(f"event energy must be >= 0, got {energy_j}")
        self._event_energy_j += energy_j
        self._event_count += 1

    # ---- batch integration (fast-path kernel) ----------------------------------

    def add_batch(self, state: PowerState, cycles: int, energy_j: float) -> None:
        """Charge a whole region's residency in ``state`` at once.

        The batched kernel (:mod:`repro.fastsim`) integrates interval energy
        in local accumulators using the exact per-interval formula
        (``state_power_w * cycles_to_seconds(interval)``, summed in event
        order) and deposits the region totals here in one call, so ledger
        bookkeeping stays inside this module (LEDGER01).
        """
        if cycles < 0:
            raise SimulationError(f"batch cycles must be >= 0, got {cycles}")
        if energy_j < 0.0:
            raise SimulationError(f"batch energy must be >= 0, got {energy_j}")
        self._state_cycles[state] += cycles
        self._state_energy_j[state] += energy_j

    def add_events_batch(self, energy_j: float, count: int) -> None:
        """Charge ``count`` gating events totalling ``energy_j`` at once."""
        if count < 0:
            raise SimulationError(f"batch event count must be >= 0, got {count}")
        if energy_j < 0.0:
            raise SimulationError(f"event energy must be >= 0, got {energy_j}")
        self._event_energy_j += energy_j
        self._event_count += count

    # ---- queries ---------------------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return sum(self._state_cycles.values())

    @property
    def background_energy_j(self) -> float:
        """Always-on (uncore) energy over the whole execution time."""
        seconds = cycles_to_seconds(self.total_cycles,
                                    self.power_model.circuit.frequency_hz)
        return self.power_model.background_power_w * seconds

    @property
    def total_energy_j(self) -> float:
        return (sum(self._state_energy_j.values()) + self._event_energy_j
                + self.background_energy_j)

    @property
    def event_energy_j(self) -> float:
        return self._event_energy_j

    @property
    def event_count(self) -> int:
        return self._event_count

    def cycles_in(self, state: PowerState) -> int:
        return self._state_cycles[state]

    def energy_in_j(self, state: PowerState) -> float:
        return self._state_energy_j[state]

    def state_cycles(self) -> Dict[str, int]:
        """Per-state cycle residency keyed by state value (for reports)."""
        return {state.value: cycles
                for state, cycles in self._state_cycles.items() if cycles}

    def state_energy(self) -> Dict[str, float]:
        """Per-state energy keyed by state value, plus the background draw."""
        energies = {state.value: energy
                    for state, energy in self._state_energy_j.items() if energy}
        background = self.background_energy_j
        if background:
            energies["background"] = background
        return energies

    def merge(self, other: "EnergyLedger") -> None:
        """Fold another domain's ledger into this one (multi-core totals)."""
        for state in PowerState:
            self._state_cycles[state] += other._state_cycles[state]
            self._state_energy_j[state] += other._state_energy_j[state]
        self._event_energy_j += other._event_energy_j
        self._event_count += other._event_count
