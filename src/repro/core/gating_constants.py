"""Numeric constants shared by the oracle and the fast kernel.

``repro.fastsim.kernel`` inlines the oracle's policy/predictor update
rules for speed, which means every tuning constant in that arithmetic
exists at two call sites — one in the oracle class that owns it, one in
the kernel's flat replay loop.  A constant edited in one place but not
the other would silently break the engines' bit-identity contract, so
each such constant is defined here exactly once and *imported* by both
sides; the twin-engine drift analysis (mapglint rule TWIN04) enforces
that no gating/break-even constant is ever duplicated again.

This module is a leaf on purpose: no imports, so either engine (and the
predictor package) can pull constants without ordering concerns.
"""

from __future__ import annotations

# MapgPolicy's global fallback registers: EWMA weight of the (mean,
# deviation) pair, the deviation's cold-start fraction of the static
# estimate, and how many deviations early a fallback gate wakes (the
# TCP-RTO trick).
GLOBAL_ALPHA = 0.1
FALLBACK_DEV_FRACTION = 0.25
FALLBACK_DEV_BIAS = 1.5

# AdaptiveMapgPolicy's AIMD bias rule: additive increase per late wake,
# multiplicative decay when wakes land comfortably early, the idle-awake
# tolerance that defines "comfortably", and the bias ceiling.
AIMD_INCREASE_CYCLES = 4
AIMD_DECAY = 0.85
AIMD_IDLE_TOLERANCE_CYCLES = 24
AIMD_BIAS_CAP_CYCLES = 96

# HistoryTablePredictor's direct-mapped table hash: pc is folded down by
# the word shift, the bank id and the (string-hashed) row-buffer outcome
# are spread by two odd multipliers before the xor fold.
TABLE_PC_SHIFT = 2
TABLE_KIND_MASK = 0x3F
TABLE_KIND_MULT = 0x68E31
TABLE_BANK_MULT = 0x9E37
