"""Gating policies: the decision logic compared in the evaluation (F2, T3).

Every policy answers the same question at the moment an off-chip stall
begins: *gate or not, and when should the wake start?*  The answer is a
:class:`GatingDecision`.  What distinguishes the policies is the
information they use:

* :class:`NeverPolicy` — baseline; never gates (pure clock gating).
* :class:`NaivePolicy` — gates on every off-chip stall, wake triggered by
  the data return.  The straw man that shows why MAPG needs a brain:
  it pays the full wake latency on every miss and loses energy on short
  (merged / row-hit) stalls.
* :class:`ThresholdPolicy` (``bet_guard``) — gates only when the *static*
  worst-typical latency estimate clears break-even; still wakes on return.
  This is the "BET check without prediction" middle ground.
* :class:`MapgPolicy` — the contribution.  Predicts the blocking access's
  total latency from a (pc, bank, row-outcome) table, falls back to
  learned per-outcome global registers below the confidence threshold,
  gates when the predicted stall clears break-even plus a guard margin,
  picks the sleep depth (full collapse vs retention clamp) when dual mode
  is on, and schedules a deliberately-early wake timer so the wake hides
  under the stall's tail.
* :class:`OraclePolicy` — upper bound; sees the actual duration, gates
  exactly when profitable, and times the wake perfectly.

(:class:`~repro.core.adaptive.AdaptiveMapgPolicy`, in its own module,
extends MapgPolicy with a feedback-adapted wake bias.)
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.config import GatingConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.gating_constants import (
    FALLBACK_DEV_BIAS, FALLBACK_DEV_FRACTION, GLOBAL_ALPHA)
from repro.core.wakeup import plan_wakeup
from repro.errors import ConfigError
from repro.predict.base import LatencyPredictor


@dataclass(frozen=True)
class GatingDecision:
    """Outcome of one policy consultation.

    ``planned_wake_offset`` is cycles after stall start at which the wake
    sequence begins, or None for a data-return-triggered wake.
    ``predicted_cycles`` records what the policy believed (for F6 accuracy
    accounting); ``reason`` is a short machine-greppable tag.
    """

    gate: bool
    planned_wake_offset: Optional[int] = None
    predicted_cycles: int = 0
    confidence: float = 0.0
    reason: str = ""
    mode: str = "full"  # "full" or "retention" (ignored when gate=False)


class GatingPolicy(abc.ABC):
    """Base class for gating decision logic."""

    def __init__(self, analyzer: BreakEvenAnalyzer) -> None:
        self.analyzer = analyzer

    @abc.abstractmethod
    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        """Decide for a stall beginning now.

        ``actual_stall_cycles`` is ground truth; only :class:`OraclePolicy`
        may read it — every other policy must decide from (pc, bank) and
        its own learned state, exactly as hardware would.
        """

    def observe(self, pc: int, bank: int, actual_stall_cycles: int,
                kind: str = "") -> None:
        """Learn the outcome (default: stateless, nothing to learn)."""

    def feedback(self, plan) -> None:
        """Receive the realized timeline of a gated stall (a WakeupPlan).

        Default: ignored.  Adaptive policies use this to close the loop on
        their wake-timing bias.
        """


class NeverPolicy(GatingPolicy):
    """Never gate; the clock-gated baseline every saving is measured against."""

    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        return GatingDecision(gate=False, reason="never")


class NaivePolicy(GatingPolicy):
    """Gate on every off-chip stall; wake on data return."""

    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        return GatingDecision(gate=True, planned_wake_offset=None, reason="naive")


class ThresholdPolicy(GatingPolicy):
    """Gate when the static latency estimate clears break-even; late wake.

    ``static_estimate_cycles`` should be the closed-row DRAM latency — the
    number a designer would hard-wire without a predictor.
    """

    def __init__(self, analyzer: BreakEvenAnalyzer, static_estimate_cycles: int) -> None:
        super().__init__(analyzer)
        if static_estimate_cycles < 0:
            raise ConfigError(
                f"static estimate must be >= 0, got {static_estimate_cycles}")
        self.static_estimate_cycles = static_estimate_cycles

    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        if self.analyzer.worthwhile(self.static_estimate_cycles, apply_margin=False):
            return GatingDecision(
                gate=True, planned_wake_offset=None,
                predicted_cycles=self.static_estimate_cycles,
                reason="threshold_static_ok")
        return GatingDecision(
            gate=False, predicted_cycles=self.static_estimate_cycles,
            reason="threshold_below_bet")


class MapgPolicy(GatingPolicy):
    """The MAPG policy: predicted-latency gating with early wakeup.

    Two-level estimation: the per-(pc, bank) predictor when its confidence
    clears ``min_confidence``, otherwise a *global* running mean of all
    observed off-chip stalls (one EWMA register in hardware), seeded with
    the static closed-row estimate.  The global mean tracks the workload's
    actual latency level, so even low-confidence gates schedule their wake
    near the right time instead of at a hard-wired constant.

    Wake timers are biased deliberately early: a late wake exposes the full
    wake latency, an early one only converts a few sleep cycles into
    idle-awake cycles.  Confident gates subtract the fixed
    ``early_margin_cycles``; fallback gates, whose estimate is coarser,
    subtract a multiple of the tracked mean absolute deviation (the
    TCP-RTO trick).  Fallback registers are kept per row-buffer outcome,
    since that outcome — which the memory controller knows — determines
    most of the latency.
    """

    def __init__(self, analyzer: BreakEvenAnalyzer, predictor: LatencyPredictor,
                 config: GatingConfig, static_estimate_cycles: int) -> None:
        super().__init__(analyzer)
        if static_estimate_cycles < 0:
            raise ConfigError(
                f"static estimate must be >= 0, got {static_estimate_cycles}")
        self.predictor = predictor
        self.config = config
        self.static_estimate_cycles = static_estimate_cycles
        # Per-row-buffer-outcome fallback registers (mean, deviation); the
        # "" key covers accesses whose outcome the controller didn't report.
        self._fallback: dict = {}

    # EWMA weights of the global fallback registers (class-attribute
    # aliases of the shared definitions both engines import).
    _GLOBAL_ALPHA = GLOBAL_ALPHA
    _DEV_BIAS = FALLBACK_DEV_BIAS  # wake this many deviations early on fallback gates

    def _early_margin_cycles(self) -> int:
        """Early-wake bias for confident gates; adaptive subclasses override."""
        return self.config.early_margin_cycles

    def _fallback_registers(self, kind: str) -> "list[float]":
        registers = self._fallback.get(kind)
        if registers is None:
            registers = [float(self.static_estimate_cycles),
                         float(self.static_estimate_cycles)
                         * FALLBACK_DEV_FRACTION]
            self._fallback[kind] = registers
        return registers

    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        # Predictors estimate the blocking access's *total* latency; the
        # residual stall is that minus how long the access has already been
        # in flight (0 on a blocking core; positive under MLP, where the
        # request's age is architecturally known).
        prediction = self.predictor.predict(pc, bank, kind)
        if prediction.confidence >= self.config.min_confidence:
            estimate = max(0, prediction.latency_cycles - elapsed_cycles)
            wake_estimate = estimate - self._early_margin_cycles()
            confident = True
        else:
            mean, deviation = self._fallback_registers(kind)
            estimate = max(0, int(round(mean)) - elapsed_cycles)
            wake_estimate = int(round(
                mean - elapsed_cycles - self._DEV_BIAS * deviation))
            confident = False

        mode = self._select_mode(estimate, confident)
        if mode is None:
            return GatingDecision(
                gate=False, predicted_cycles=estimate,
                confidence=prediction.confidence,
                reason="mapg_below_bet" if confident else "mapg_fallback_below_bet")

        # Early wakeup is scheduled for every gate, from the best estimate
        # available — learned when confident, the static estimate otherwise.
        # A timer-started wake can only beat the return-triggered fallback:
        # if the estimate overshoots, the fallback bounds the loss at the
        # naive penalty; if it undershoots, the cost is idle-awake cycles,
        # which are far cheaper than exposed wake latency.  The early margin
        # deliberately biases the wake early for the same reason — an
        # unbiased predictor is late half the time.
        offset: Optional[int] = None
        if self.config.early_wakeup:
            offset = plan_wakeup(
                predicted_stall=max(0, wake_estimate),
                drain=self.analyzer.drain_cycles,
                wake=self.analyzer.wake_cycles_for(mode),
                early_wakeup=True)
        return GatingDecision(
            gate=True, planned_wake_offset=offset,
            predicted_cycles=estimate, confidence=prediction.confidence,
            reason="mapg_gate" if confident else "mapg_fallback_gate",
            mode=mode)

    def _select_mode(self, estimate: int, confident: bool) -> Optional[str]:
        """Pick the sleep mode for this gate, or None to skip gating.

        ``"full"`` mode: only for estimates clearing the full-gate
        threshold — and, in ``dual`` mode, only when the estimate is a
        confident one (a coarse estimate risks the expensive full wake).
        ``"retention"``: the fallback depth — cheaper, faster wake, less
        saving.  Whichever clears its threshold first wins.
        """
        sleep_mode = self.config.sleep_mode
        full_ok = self.analyzer.worthwhile(estimate, apply_margin=True,
                                           mode="full")
        if sleep_mode == "full":
            return "full" if full_ok else None
        retention_ok = self.analyzer.worthwhile(estimate, apply_margin=True,
                                                mode="retention")
        if sleep_mode == "retention":
            return "retention" if retention_ok else None
        # dual: confident long stalls take the deep mode; everything else
        # that still clears the retention threshold takes the shallow one.
        if full_ok and confident:
            return "full"
        if retention_ok:
            return "retention"
        if full_ok:
            return "full"
        return None

    def observe(self, pc: int, bank: int, actual_stall_cycles: int,
                kind: str = "") -> None:
        self.predictor.observe(pc, bank, actual_stall_cycles, kind)
        registers = self._fallback_registers(kind)
        error = actual_stall_cycles - registers[0]
        registers[0] += self._GLOBAL_ALPHA * error
        registers[1] += self._GLOBAL_ALPHA * (abs(error) - registers[1])


class OraclePolicy(GatingPolicy):
    """Perfect knowledge: gate iff profitable, wake timed exactly."""

    def decide(self, pc: int, bank: int, actual_stall_cycles: int,
               kind: str = "", elapsed_cycles: int = 0) -> GatingDecision:
        if not self.analyzer.worthwhile(actual_stall_cycles, apply_margin=False):
            return GatingDecision(
                gate=False, predicted_cycles=actual_stall_cycles,
                confidence=1.0, reason="oracle_below_bet")
        offset = plan_wakeup(
            predicted_stall=actual_stall_cycles,
            drain=self.analyzer.drain_cycles,
            wake=self.analyzer.wake_cycles,
            early_wakeup=True)
        return GatingDecision(
            gate=True, planned_wake_offset=offset,
            predicted_cycles=actual_stall_cycles, confidence=1.0,
            reason="oracle_gate")


def make_policy(config: GatingConfig, analyzer: BreakEvenAnalyzer,
                predictor: Optional[LatencyPredictor],
                static_estimate_cycles: int) -> GatingPolicy:
    """Instantiate the policy named by ``config.policy``.

    ``predictor`` is required only for ``"mapg"`` (None is accepted for the
    oracle-predictor variant, which behaves like :class:`OraclePolicy` with
    the guard margin applied).
    """
    name = config.policy
    if name == "never":
        return NeverPolicy(analyzer)
    if name == "naive":
        return NaivePolicy(analyzer)
    if name == "bet_guard":
        return ThresholdPolicy(analyzer, static_estimate_cycles)
    if name == "oracle":
        return OraclePolicy(analyzer)
    if name in ("mapg", "mapg_adaptive"):
        if predictor is None:
            # "mapg with oracle predictor" — perfect latency knowledge but
            # the real decision pipeline (margin, early wake plan).
            return OraclePolicy(analyzer)
        if name == "mapg_adaptive":
            from repro.core.adaptive import AdaptiveMapgPolicy
            return AdaptiveMapgPolicy(analyzer, predictor, config,
                                      static_estimate_cycles)
        return MapgPolicy(analyzer, predictor, config, static_estimate_cycles)
    raise ConfigError(f"unknown gating policy {name!r}")
