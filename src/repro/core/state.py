"""Power-gating state machine.

The gated domain moves through a fixed cycle of states; illegal transitions
(e.g. SLEEP directly to ACTIVE, skipping the rail recharge) are hardware
impossibilities, so the state machine rejects them — any such transition in
a simulation is a controller bug and must fail loudly rather than skew the
energy ledger.

    ACTIVE ──► STALL ──► DRAIN ──► SLEEP ──► WAKE ──► STALL/ACTIVE
       ▲          │         │                  │
       └──────────┘         └──► STALL (abort: data returned during drain)

``TOKEN_WAIT`` (TAP multi-core) interposes between SLEEP and WAKE when the
wake-token arbiter defers the rail recharge.
"""

from __future__ import annotations

import enum
from typing import Dict, FrozenSet, Optional

from repro.errors import SimulationError
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.power.model import PowerState
from repro.stats import IntervalAccumulator


class PgState(enum.Enum):
    """Controller-visible states of one gated domain."""

    ACTIVE = "active"
    STALL = "stall"
    DRAIN = "drain"
    SLEEP = "sleep"
    SLEEP_RETENTION = "sleep_retention"
    TOKEN_WAIT = "token_wait"
    WAKE = "wake"


_LEGAL_TRANSITIONS: Dict[PgState, FrozenSet[PgState]] = {
    PgState.ACTIVE: frozenset({PgState.STALL, PgState.DRAIN}),
    PgState.STALL: frozenset({PgState.ACTIVE, PgState.DRAIN}),
    # STALL = abort (data returned during drain).
    PgState.DRAIN: frozenset({PgState.SLEEP, PgState.SLEEP_RETENTION,
                              PgState.STALL}),
    PgState.SLEEP: frozenset({PgState.WAKE, PgState.TOKEN_WAIT}),
    PgState.SLEEP_RETENTION: frozenset({PgState.WAKE, PgState.TOKEN_WAIT}),
    PgState.TOKEN_WAIT: frozenset({PgState.WAKE}),
    PgState.WAKE: frozenset({PgState.ACTIVE, PgState.STALL}),
}

_POWER_STATE: Dict[PgState, PowerState] = {
    PgState.ACTIVE: PowerState.ACTIVE,
    PgState.STALL: PowerState.STALL,
    PgState.DRAIN: PowerState.DRAIN,
    PgState.SLEEP: PowerState.SLEEP,
    PgState.SLEEP_RETENTION: PowerState.SLEEP_RETENTION,
    PgState.TOKEN_WAIT: PowerState.TOKEN_WAIT,
    PgState.WAKE: PowerState.WAKE,
}


def power_state_of(state: PgState) -> PowerState:
    """Map a controller state to the power model's activity state."""
    return _POWER_STATE[state]


class PowerGateStateMachine:
    """Transition-validated state tracker with a time-in-state ledger."""

    def __init__(self, start_cycle: int = 0, keep_records: bool = False,
                 recorder: Optional[NullRecorder] = None,
                 track: str = "pg") -> None:
        self._state = PgState.ACTIVE
        self._ledger = IntervalAccumulator(
            PgState.ACTIVE.value, start_cycle, keep_records=keep_records)
        # Observability: each legal transition emits a cycle-timestamped
        # instant on ``track`` (default free NULL_RECORDER; see repro.obs).
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._track = track

    @property
    def state(self) -> PgState:
        return self._state

    @property
    def ledger(self) -> IntervalAccumulator:
        return self._ledger

    def can_transition(self, target: PgState) -> bool:
        return target in _LEGAL_TRANSITIONS[self._state]

    def transition(self, target: PgState, cycle: int) -> None:
        """Move to ``target`` at ``cycle``; raises on illegal transitions."""
        if target == self._state:
            return
        if not self.can_transition(target):
            raise SimulationError(
                f"illegal power-gate transition {self._state.value} -> {target.value}")
        if self._obs.enabled:
            self._obs.instant(
                self._track, f"{self._state.value}->{target.value}", cycle,
                args={"from": self._state.value, "to": target.value})
        self._ledger.switch(target.value, cycle)
        self._state = target

    def finish(self, cycle: int) -> None:
        """Close the ledger at the end of simulation."""
        self._ledger.close(cycle)

    def time_in(self, state: PgState) -> int:
        """Total cycles accumulated in ``state`` so far."""
        return self._ledger.total(state.value)
