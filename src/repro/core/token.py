"""Token-based adaptive power-gating (TAP) wake arbitration.

In a many-core chip, the dangerous moment for the power grid is several
cores *waking simultaneously* — rush currents add, and the combined di/dt
can collapse the shared rail.  The companion TAP scheme (same authors)
bounds this by requiring a core to hold one of ``wake_tokens`` tokens for
the duration of its wake sequence.  A core whose wake trigger fires while
all tokens are busy stays gated (sleeping, still saving leakage) until a
token frees — trading a bounded performance penalty for a hard guarantee on
worst-case simultaneous wake count.

The arbiter is deterministic: tokens are granted in trigger-time order,
ties broken by core id.  ``token_wait_limit_cycles`` caps how long a core
may be deferred; a grant is forced at the limit (modeling the escalation
path real designs include so a token never starves a core), counted
separately so the F7 report can show how often the guarantee was stretched.
"""

from __future__ import annotations

import heapq
from typing import List

from repro.config import TokenConfig
from repro.errors import SimulationError
from repro.stats import CounterSet


class TokenArbiter:
    """Grants wake tokens in global trigger-time order."""

    def __init__(self, config: TokenConfig) -> None:
        self.config = config
        # Min-heap of cycles at which each token becomes free.
        self._free_at: List[int] = [0] * config.wake_tokens
        heapq.heapify(self._free_at)
        self.counters = CounterSet()
        self._last_trigger = -(10 ** 18)

    def request(self, core_id: int, trigger_cycle: int, hold_cycles: int) -> int:
        """Request a token at ``trigger_cycle``; returns the grant delay.

        ``hold_cycles`` is how long the token is held (the wake latency).

        The multi-core scheduler merges cores by segment *start* time, so a
        long stall on one core can surface its trigger after a later-
        starting core already requested — requests may arrive slightly out
        of trigger order.  The arbiter stays deterministic (grants depend
        only on the replay order, which the heap merge fixes) and counts
        such inversions in ``out_of_order_requests`` so the F7 report can
        confirm they are rare.
        """
        if trigger_cycle < 0 or hold_cycles < 0:
            raise SimulationError("token request needs non-negative cycles")
        if trigger_cycle < self._last_trigger:
            self.counters.add("out_of_order_requests")
        self._last_trigger = max(self._last_trigger, trigger_cycle)

        self.counters.add("requests")
        earliest_free = heapq.heappop(self._free_at)
        grant_cycle = max(trigger_cycle, earliest_free)
        delay = grant_cycle - trigger_cycle

        limit = self.config.token_wait_limit_cycles
        if delay > limit:
            # Escalation: force the grant at the wait limit.  The grid
            # absorbs the transient; we count how often that safety valve
            # opened.
            self.counters.add("forced_grants")
            grant_cycle = trigger_cycle + limit
            delay = limit
        elif delay > 0:
            self.counters.add("deferred_grants")
            self.counters.add("deferred_cycles", delay)

        heapq.heappush(self._free_at, grant_cycle + hold_cycles)
        return delay

    @property
    def max_concurrent_wakes(self) -> int:
        """The bound this arbiter enforces (== configured token count)."""
        return self.config.wake_tokens
