"""Wakeup scheduling: when to start recharging the rail, and what it costs.

The defining mechanism of MAPG is *early wakeup*: since the outstanding
memory access's completion time is largely predictable, the controller can
begin the wake sequence ``wake_cycles`` before the predicted data return so
the rail is up exactly when the data arrives.

Hardware always keeps a **fallback trigger**: if the data returns while the
domain is still asleep (the prediction overshot, or no early wakeup was
scheduled), the return itself starts the wake.  This bounds the worst-case
penalty of a bad prediction at exactly the naive policy's penalty,
``wake_cycles`` — early wakeup can only help, never hurt, performance.

The functions here are pure timing algebra, shared by every policy and
unit-testable in isolation:

* :func:`plan_wakeup` — decide the planned wake-start offset from the
  prediction (or None for return-triggered wake).
* :func:`resolve_wakeup` — given the *actual* stall length, resolve the
  plan into the realized timeline: sleep cycles, awake-idle cycles, and the
  visible penalty beyond the stall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class WakeupPlan:
    """Realized timeline of one gated stall, all in cycles.

    Invariant: ``drain + sleep + wake + idle_awake == stall + penalty`` —
    the gated timeline exactly tiles the stall plus whatever it overran.

    ``token_wait`` (TAP) is the portion of ``sleep`` spent gated while
    waiting for a wake token — diagnostic, already included in ``sleep``
    (a token-blocked domain stays powered off; that is the point of TAP).
    """

    drain: int
    sleep: int
    wake: int
    idle_awake: int  # woke early, waiting for data with the rail up
    penalty: int     # cycles the stall end was pushed past the data return
    token_wait: int = 0

    def __post_init__(self) -> None:
        for label in ("drain", "sleep", "wake", "idle_awake", "penalty", "token_wait"):
            if getattr(self, label) < 0:
                raise SimulationError(f"{label} must be >= 0 in a WakeupPlan")
        if self.token_wait > self.sleep:
            raise SimulationError(
                f"token_wait ({self.token_wait}) cannot exceed sleep ({self.sleep})")

    @property
    def total(self) -> int:
        """Total cycles the stall occupies under this plan."""
        return self.drain + self.sleep + self.wake + self.idle_awake


def plan_wakeup(predicted_stall: int, drain: int, wake: int,
                early_wakeup: bool) -> Optional[int]:
    """Planned wake-start offset (cycles after stall start), or None.

    None means "no scheduled wake": the fallback (data-return) trigger will
    start the wake, costing the full ``wake`` latency after the return.
    The planned offset never precedes the end of drain.
    """
    if predicted_stall < 0 or drain < 0 or wake < 0:
        raise SimulationError("wakeup planning needs non-negative cycle counts")
    if not early_wakeup:
        return None
    return max(drain, predicted_stall - wake)


def resolve_wakeup(actual_stall: int, drain: int, wake: int,
                   planned_wake_offset: Optional[int],
                   token_delay: int = 0) -> WakeupPlan:
    """Resolve a gating attempt against the actual stall duration.

    ``token_delay`` (TAP) postpones the wake start after its trigger by up
    to that many cycles — it extends sleep, and may push the wake past the
    data return, adding penalty.

    Abort case: if the data returns before the drain completes
    (``actual_stall <= drain``), the domain never slept; the controller
    cancels gating and the core simply resumes.  We conservatively charge
    the full drain (the pipeline did drain) and no wake.
    """
    if actual_stall < 0 or drain < 0 or wake < 0 or token_delay < 0:
        raise SimulationError("wakeup resolution needs non-negative cycle counts")
    if planned_wake_offset is not None and planned_wake_offset < drain:
        raise SimulationError(
            f"planned wake offset {planned_wake_offset} precedes drain end {drain}")

    if actual_stall <= drain:
        # Abort: data arrived during drain; treat the whole stall as drain.
        return WakeupPlan(drain=actual_stall, sleep=0, wake=0,
                          idle_awake=0, penalty=0)

    # The wake trigger fires at the planned offset or the data return,
    # whichever comes first (fallback trigger).
    if planned_wake_offset is None:
        trigger = actual_stall
    else:
        trigger = min(planned_wake_offset, actual_stall)
    wake_start = trigger + token_delay
    sleep = wake_start - drain
    ready = wake_start + wake

    if ready >= actual_stall:
        penalty = ready - actual_stall
        idle_awake = 0
    else:
        penalty = 0
        idle_awake = actual_stall - ready

    return WakeupPlan(drain=drain, sleep=sleep, wake=wake,
                      idle_awake=idle_awake, penalty=penalty,
                      token_wait=token_delay)
