"""CPU substrate: trace-driven core timing model and multi-core merging."""

from repro.cpu.core import BusySegment, Core, Segment, StallSegment
from repro.cpu.multicore import MultiCoreScheduler
from repro.cpu.window import WindowedCore, make_core

__all__ = [
    "BusySegment",
    "Core",
    "Segment",
    "StallSegment",
    "MultiCoreScheduler",
    "WindowedCore",
    "make_core",
]
