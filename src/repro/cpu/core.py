"""Trace-driven core timing model.

The core replays a trace against the memory hierarchy and emits a sequence
of **segments** — the exact granularity the MAPG controller acts on:

* :class:`BusySegment` — cycles spent retiring instructions (includes
  pipelined L1 hits).
* :class:`StallSegment` — cycles the pipeline is empty waiting on memory.
  ``off_chip`` marks DRAM-bound stalls, the only ones MAPG may gate;
  on-chip (L2-hit) stalls are far below break-even and only clock-gate.

Timing model:

* compute blocks retire at ``issue_width`` instructions per cycle;
* an L1 hit is fully pipelined (1 issue cycle, no stall);
* an L2 hit stalls for the L2 latency beyond the L1 lookup;
* an off-chip access stalls for the full remaining latency.  When
  ``mlp_overlap`` > 0 and the previous off-chip stall ended within
  ``MLP_WINDOW_CYCLES`` of this one's start, the stall shortens by that
  factor — a first-order stand-in for memory-level parallelism (two misses
  whose DRAM times overlap).

The core never decides anything about power: it reports what happened and
lets the simulator/controller tile the time axis into power states.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Union

from repro.config import CoreConfig
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.stats import CounterSet
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp

MLP_WINDOW_CYCLES = 8


@dataclass(frozen=True)
class BusySegment:
    """``cycles`` of uninterrupted instruction retirement."""

    cycles: int


@dataclass(frozen=True)
class StallSegment:
    """A pipeline stall of ``cycles`` waiting for one memory access.

    ``pc``/``bank`` feed the latency predictor; ``dram_kind`` is the DRAM
    row-buffer outcome (None for on-chip stalls); ``merged`` marks MSHR
    piggyback stalls, whose short residuals are the trap for naive gating.
    """

    cycles: int
    off_chip: bool
    pc: int = 0
    bank: int = -1
    dram_kind: Optional[str] = None
    merged: bool = False
    # Cycles the blocking access had already been in flight when this stall
    # began (0 when the core stalls at issue, as the blocking core does).
    # Hardware knows this — it is the age of the outstanding request — and
    # the MAPG policy subtracts it from its *total*-latency prediction to
    # estimate the residual.
    elapsed_cycles: int = 0


Segment = Union[BusySegment, StallSegment]


class Core:
    """One trace-driven core in front of a memory hierarchy."""

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.counters = CounterSet()
        self._cycle = 0  # local completion time, pre-gating
        self._last_offchip_end = -10**18

    @property
    def cycle(self) -> int:
        """Core-local completion time of everything emitted so far."""
        return self._cycle

    def add_delay(self, cycles: int) -> None:
        """Push the core's clock forward by an externally-imposed delay.

        The simulator calls this with each gating penalty so that subsequent
        memory accesses carry timestamps that include the slowdown — DRAM
        bank state then evolves in true time, not gating-free time.
        """
        if cycles < 0:
            raise SimulationError(f"delay must be >= 0, got {cycles}")
        self._cycle += cycles

    def segments(self, ops: Iterable[TraceOp]) -> Iterator[Segment]:
        """Replay ``ops``, yielding busy/stall segments in program order.

        Loop invariants (issue width, L1 hit latency, the hierarchy and
        counter objects) are hoisted into locals — this loop runs once per
        trace op.  ``self._cycle`` stays an attribute access on purpose:
        the consumer calls :meth:`add_delay` *between* yields, so a local
        copy would go stale mid-replay.
        """
        pending_busy = 0
        issue_width = self.config.issue_width
        hierarchy = self.hierarchy
        l1_latency = hierarchy.l1.config.hit_latency_cycles
        counters_add = self.counters.add
        ceil = math.ceil
        for op in ops:
            if isinstance(op, ComputeBlock):
                cycles = ceil(op.instructions / issue_width)
                pending_busy += cycles
                self._cycle += cycles
                counters_add("instructions", op.instructions)
                continue
            if not isinstance(op, MemoryAccess):
                raise SimulationError(f"unknown trace op {type(op).__name__}")

            # The access issues after the accumulated busy run plus one cycle.
            pending_busy += 1
            self._cycle += 1
            counters_add("instructions")
            counters_add("memory_ops")

            result = hierarchy.access(op.address, self._cycle, op.is_write,
                                      pc=op.pc)

            if result.level == "l1" and not result.merged:
                # Pipelined L1 hit: no visible stall.
                continue

            stall_cycles = max(0, result.total_cycles - l1_latency)
            if stall_cycles == 0:
                continue

            if result.off_chip:
                stall_cycles = self._apply_mlp(stall_cycles)
                counters_add("offchip_stalls")
                counters_add("offchip_stall_cycles", stall_cycles)
            else:
                counters_add("onchip_stalls")
                counters_add("onchip_stall_cycles", stall_cycles)

            if pending_busy:
                yield BusySegment(pending_busy)
                pending_busy = 0
            dram_kind = result.dram.kind if result.dram is not None else None
            bank = result.dram.bank if result.dram is not None else -1
            yield StallSegment(
                cycles=stall_cycles,
                off_chip=result.off_chip,
                pc=op.pc,
                bank=bank,
                dram_kind=dram_kind,
                merged=result.merged,
            )
            self._cycle += stall_cycles
            if result.off_chip:
                self._last_offchip_end = self._cycle
        if pending_busy:
            yield BusySegment(pending_busy)

    def _apply_mlp(self, stall_cycles: int) -> int:
        """Shorten back-to-back off-chip stalls by the MLP overlap factor."""
        overlap = self.config.mlp_overlap
        if overlap <= 0.0:
            return stall_cycles
        gap = self._cycle - self._last_offchip_end
        if gap > MLP_WINDOW_CYCLES:
            return stall_cycles
        reduced = int(round(stall_cycles * (1.0 - overlap)))
        return max(1, reduced)
