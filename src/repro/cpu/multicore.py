"""Multi-core segment interleaving.

Cores in a multiprogrammed mix share only the DRAM (private L1/L2 per
core), so the interaction between them is bank contention — and, once
power gating enters, the *shared power grid*, which is what the TAP token
arbiter protects (F7).

The scheduler merges per-core segment streams in global-time order: at each
step it advances the core whose local clock is furthest behind, which is
exactly the discrete-event merge that keeps DRAM bank timestamps coherent
across cores.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

from repro.cpu.core import Core, Segment
from repro.errors import SimulationError
from repro.trace.format import TraceOp


class MultiCoreScheduler:
    """Merges the segment streams of several cores in global-time order."""

    def __init__(self, cores: Sequence[Core]) -> None:
        if not cores:
            raise SimulationError("need at least one core")
        self._cores = list(cores)

    def run(self, traces: Sequence[Sequence[TraceOp]],
            on_segment: Callable[[int, Segment], int]) -> Dict[int, int]:
        """Drive all cores to completion.

        ``on_segment(core_index, segment)`` is invoked for every segment in
        global-time order and must return the number of *extra* cycles the
        power-management layer added to that core (wake penalties, token
        waits); the scheduler folds them into the core's clock so later
        scheduling decisions see the slowdown.

        Returns the final per-core completion cycle, penalties included.
        """
        if len(traces) != len(self._cores):
            raise SimulationError(
                f"{len(self._cores)} cores but {len(traces)} traces")
        iterators: List[Iterator[Segment]] = [
            core.segments(trace) for core, trace in zip(self._cores, traces)
        ]
        # Per-core adjusted clocks (core-local time + accumulated penalties).
        clocks = [0] * len(self._cores)
        penalties = [0] * len(self._cores)
        heap: List[Tuple[int, int]] = [(0, idx) for idx in range(len(self._cores))]
        heapq.heapify(heap)
        finished = [False] * len(self._cores)

        while heap:
            __, index = heapq.heappop(heap)
            if finished[index]:
                continue
            try:
                segment = next(iterators[index])
            except StopIteration:
                finished[index] = True
                continue
            extra = on_segment(index, segment)
            if extra < 0:
                raise SimulationError(
                    f"on_segment returned negative extra cycles ({extra})")
            penalties[index] += extra
            clocks[index] += segment.cycles + extra
            heapq.heappush(heap, (clocks[index], index))

        return {index: clocks[index] for index in range(len(self._cores))}

    @property
    def cores(self) -> List[Core]:
        return list(self._cores)
