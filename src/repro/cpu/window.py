"""Windowed-MLP core: run past off-chip misses until the window fills.

The blocking :class:`~repro.cpu.core.Core` stalls on every off-chip miss —
the best case for MAPG, since every miss is a full-length gateable idle
period.  Real cores extract memory-level parallelism: an out-of-order
window lets execution continue past a miss, and the core only stalls when
``miss_window`` misses are outstanding (the ROB-full condition).

This model captures exactly that first-order effect:

* an off-chip miss *registers* its completion time and execution continues;
* when a new off-chip miss finds the window full, the core stalls until
  the **oldest** outstanding miss completes — that residual is the gateable
  stall, and it is shorter and less regular than a full miss latency;
* on-chip (L2-hit) latencies still stall briefly, as in the blocking core.

The F15 experiment uses this to quantify how MLP erodes MAPG's
opportunity — the honest sensitivity analysis of the paper's in-order
assumption.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterable, Iterator, Tuple

from repro.config import CoreConfig
from repro.cpu.core import BusySegment, Core, Segment, StallSegment
from repro.errors import SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp


class WindowedCore(Core):
    """A core that tolerates up to ``miss_window`` outstanding misses."""

    def __init__(self, config: CoreConfig, hierarchy: MemoryHierarchy) -> None:
        super().__init__(config, hierarchy)
        if config.miss_window < 1:
            raise SimulationError("miss_window must be >= 1")
        # Outstanding off-chip misses: (completion_cycle, issue_cycle,
        # pc, bank, kind), oldest first (completions are monotone per issue
        # order here).
        self._outstanding: Deque[Tuple[int, int, int, int, str]] = deque()

    def segments(self, ops: Iterable[TraceOp]) -> Iterator[Segment]:
        pending_busy = 0
        window = self.config.miss_window
        for op in ops:
            if isinstance(op, ComputeBlock):
                cycles = math.ceil(op.instructions / self.config.issue_width)
                pending_busy += cycles
                self._cycle += cycles
                self.counters.add("instructions", op.instructions)
                self._retire_completed()
                continue
            if not isinstance(op, MemoryAccess):
                raise SimulationError(f"unknown trace op {type(op).__name__}")

            pending_busy += 1
            self._cycle += 1
            self.counters.add("instructions")
            self.counters.add("memory_ops")
            self._retire_completed()

            # Pointer-chase dependence: this access's address comes from the
            # most recent load's data.  If that producer is still in flight,
            # the access cannot even issue — the core stalls for the
            # producer's residual, and no window width can hide it.
            if op.dependent and self._outstanding:
                completion, issue, producer_pc, producer_bank, producer_kind = \
                    self._outstanding[-1]
                residual = max(1, completion - self._cycle)
                self.counters.add("offchip_stalls")
                self.counters.add("offchip_stall_cycles", residual)
                self.counters.add("dependence_stalls")
                if pending_busy:
                    yield BusySegment(pending_busy)
                    pending_busy = 0
                yield StallSegment(
                    cycles=residual, off_chip=True, pc=producer_pc,
                    bank=producer_bank, dram_kind=producer_kind,
                    elapsed_cycles=max(0, self._cycle - issue))
                self._cycle += residual
                self._retire_completed()

            result = self.hierarchy.access(op.address, self._cycle,
                                           op.is_write, pc=op.pc)
            l1_latency = self.hierarchy.l1.config.hit_latency_cycles

            if result.level == "l1" and not result.merged:
                continue

            if not result.off_chip:
                stall_cycles = max(0, result.total_cycles - l1_latency)
                if stall_cycles == 0:
                    continue
                # A merged access with a long residual is a *dependent use*
                # of an in-flight off-chip miss — the load-to-use stall an
                # OoO core cannot hide.  It is off-chip idleness and thus
                # gateable; the blocking core never sees this case (its
                # merges have ~1-cycle residuals).
                dependent_use = (result.merged and stall_cycles >
                                 self.hierarchy.l2.config.hit_latency_cycles)
                if dependent_use:
                    self.counters.add("offchip_stalls")
                    self.counters.add("offchip_stall_cycles", stall_cycles)
                else:
                    self.counters.add("onchip_stalls")
                    self.counters.add("onchip_stall_cycles", stall_cycles)
                if pending_busy:
                    yield BusySegment(pending_busy)
                    pending_busy = 0
                elapsed = 0
                if dependent_use and result.in_flight_issue_cycle is not None:
                    elapsed = max(0, self._cycle - result.in_flight_issue_cycle)
                yield StallSegment(
                    cycles=stall_cycles, off_chip=dependent_use, pc=op.pc,
                    dram_kind="merged" if dependent_use else None,
                    merged=result.merged, elapsed_cycles=elapsed)
                self._cycle += stall_cycles
                self._retire_completed()
                continue

            # Off-chip miss: register it; stall only if the window is full.
            completion = self._cycle + max(0, result.total_cycles - l1_latency)
            kind = result.dram.kind if result.dram is not None else ""
            bank = result.dram.bank if result.dram is not None else -1
            if len(self._outstanding) < window:
                self._outstanding.append((completion, self._cycle, op.pc,
                                          bank, kind))
                self.counters.add("overlapped_misses")
                continue

            # Window full: stall until the oldest miss completes.
            new_miss_issue = self._cycle  # this access issued pre-stall
            oldest_completion, oldest_issue, oldest_pc, oldest_bank, \
                oldest_kind = self._outstanding.popleft()
            residual = max(1, oldest_completion - self._cycle)
            self.counters.add("offchip_stalls")
            self.counters.add("offchip_stall_cycles", residual)
            if pending_busy:
                yield BusySegment(pending_busy)
                pending_busy = 0
            yield StallSegment(cycles=residual, off_chip=True,
                               pc=oldest_pc, bank=oldest_bank,
                               dram_kind=oldest_kind, merged=False,
                               elapsed_cycles=max(0, self._cycle - oldest_issue))
            self._cycle += residual
            self._retire_completed()
            self._outstanding.append((completion, new_miss_issue, op.pc,
                                      bank, kind))
        if pending_busy:
            yield BusySegment(pending_busy)

    def _retire_completed(self) -> None:
        """Drop outstanding misses whose data has already returned."""
        while self._outstanding and self._outstanding[0][0] <= self._cycle:
            self._outstanding.popleft()
            self.counters.add("hidden_misses")


def make_core(config: CoreConfig, hierarchy: MemoryHierarchy) -> Core:
    """Build the core model the configuration asks for."""
    if config.miss_window > 1:
        return WindowedCore(config, hierarchy)
    return Core(config, hierarchy)
