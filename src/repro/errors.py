"""Exception hierarchy for the MAPG reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes partition failures by the
layer that detected them (configuration, trace handling, simulation,
circuit modeling), which keeps error-handling code in applications precise
without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class TraceError(ReproError):
    """A trace record or trace file is malformed or internally inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a bug or invalid input)."""


class CircuitModelError(ReproError):
    """The power-gating circuit model was given infeasible parameters."""


class PredictionError(ReproError):
    """A latency predictor was used incorrectly (e.g. update before observe)."""
