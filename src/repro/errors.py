"""Exception hierarchy for the MAPG reproduction library.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one base class.  Sub-classes partition failures by the
layer that detected them (configuration, trace handling, simulation,
circuit modeling), which keeps error-handling code in applications precise
without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """A configuration value is missing, malformed, or out of range."""


class TraceError(ReproError):
    """A trace record or trace file is malformed or internally inconsistent."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (a bug or invalid input)."""


class CircuitModelError(ReproError):
    """The power-gating circuit model was given infeasible parameters."""


class PredictionError(ReproError):
    """A latency predictor was used incorrectly (e.g. update before observe)."""


class StatsError(ReproError, ValueError):
    """A statistics helper was given malformed or out-of-domain input.

    Also a :class:`ValueError`: the stats helpers documented (and tests
    pin) ``ValueError`` on bad input before the hierarchy grew this
    class, so existing ``except ValueError`` callers keep working.
    """


class AnalysisError(ReproError, ValueError):
    """An analysis/reporting helper was given malformed input.

    Also a :class:`ValueError` for the same compatibility reason as
    :class:`StatsError`.
    """


class CacheError(ReproError, ValueError):
    """A result-cache entry or payload is malformed or from another schema.

    Also a :class:`ValueError`: cache deserialization documented
    ``ValueError`` on corrupt payloads before this class existed.
    """


class ManifestError(ReproError, ValueError):
    """A run manifest is malformed or references missing artifacts.

    Also a :class:`ValueError` for caller compatibility.
    """


class SweepError(ReproError):
    """One or more sweep cells failed; the rest of the sweep completed.

    Raised by :class:`~repro.exec.engine.SweepRunner` after every healthy
    cell has executed (and been cached), so a single poisoned cell cannot
    discard the surviving results.  ``failures`` maps each failing
    job-spec key to the stringified worker error.
    """

    def __init__(self, failures: "dict[str, str]") -> None:
        self.failures = dict(failures)
        cells = "; ".join(f"{key}: {err}"
                          for key, err in sorted(self.failures.items()))
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed ({cells})")
