"""Deterministic discrete-event simulation kernel.

A tiny event queue built on ``heapq`` with a monotonically-increasing
sequence number as tie-breaker, so that events scheduled for the same cycle
fire in the order they were scheduled — this keeps simulations bit-exact
across runs and Python versions.

The MAPG simulator is mostly interval-driven (see ``repro.sim``), but the
kernel is used wherever ordered future actions matter: staggered sleep-
transistor wakeup, token grants, DRAM refresh, and the multi-core scheduler.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.spans import NULL_RECORDER, NullRecorder

EventCallback = Callable[..., None]


@dataclass(frozen=True)
class Event:
    """An immutable scheduled action."""

    time: int
    seq: int
    callback: EventCallback
    args: Tuple[Any, ...] = ()
    cancelled: bool = False


class EventQueue:
    """Priority queue of events keyed by (time, insertion order)."""

    def __init__(self, recorder: Optional[NullRecorder] = None,
                 track: str = "events") -> None:
        self._heap: List[Tuple[int, int, "_Entry"]] = []
        self._seq = itertools.count()
        self._now = 0
        # Observability: each executed event emits an instant on ``track``
        # timestamped with its (simulated) fire cycle; the disabled default
        # costs one attribute check per step.
        self._obs = recorder if recorder is not None else NULL_RECORDER
        self._track = track
        if self._obs.enabled:
            self._m_executed = self._obs.metrics.counter(
                "events.executed", help="event-queue callbacks run")

    @property
    def now(self) -> int:
        """Current simulation time (cycles)."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for __, __, entry in self._heap if not entry.cancelled)

    def schedule(self, delay: int, callback: EventCallback, *args: Any) -> "_Entry":
        """Schedule ``callback(*args)`` to run ``delay`` cycles from now.

        Returns a handle whose :meth:`_Entry.cancel` removes the event.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event in the past (delay={delay})")
        entry = _Entry(time=self._now + delay, callback=callback, args=args)
        heapq.heappush(self._heap, (entry.time, next(self._seq), entry))
        return entry

    def schedule_at(self, time: int, callback: EventCallback, *args: Any) -> "_Entry":
        """Schedule ``callback(*args)`` at absolute cycle ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at cycle {time}, already at cycle {self._now}")
        entry = _Entry(time=time, callback=callback, args=args)
        heapq.heappush(self._heap, (entry.time, next(self._seq), entry))
        return entry

    def peek_time(self) -> Optional[int]:
        """Time of the next pending event, or None if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def step(self) -> bool:
        """Run the next pending event.  Returns False if none remain.

        The heap reference and ``heappop`` are hoisted into locals: this
        is the kernel's innermost function, and repeated ``self._heap``
        attribute loads are pure overhead on every event.
        """
        heap = self._heap
        pop = heapq.heappop
        while heap and heap[0][2].cancelled:
            pop(heap)
        if not heap:
            return False
        time, __, entry = pop(heap)
        self._now = time
        if self._obs.enabled:
            self._m_executed.inc()
            self._obs.instant(
                self._track,
                getattr(entry.callback, "__name__", "event"), time)
        entry.callback(*entry.args)
        return True

    def run_until(self, time: int) -> None:
        """Run all events scheduled strictly before or at cycle ``time``."""
        while True:
            next_time = self.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run(self, max_events: int = 10_000_000) -> int:
        """Drain the queue; returns the number of events executed.

        ``max_events`` is a runaway guard: exceeding it raises, because a
        self-rescheduling event loop is always a model bug here.
        """
        executed = 0
        step = self.step
        while step():
            executed += 1
            if executed > max_events:
                raise SimulationError(f"event loop exceeded {max_events} events")
        return executed

    def advance(self, delay: int) -> None:
        """Advance the clock by ``delay`` cycles, firing due events in order."""
        if delay < 0:
            raise SimulationError(f"cannot advance time backwards (delay={delay})")
        self.run_until(self._now + delay)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)


@dataclass
class _Entry:
    """Mutable heap entry; mutability is needed only for cancellation."""

    time: int
    callback: EventCallback
    args: Tuple[Any, ...] = field(default_factory=tuple)
    cancelled: bool = False

    def cancel(self) -> None:
        """Mark this event so the queue skips it; idempotent."""
        self.cancelled = True
