"""Deterministic parallel experiment engine.

Every figure in the evaluation replays deterministic traces, so a
simulation cell — one ``(config, profile, seed, num_ops, warmup,
temperature)`` tuple — always produces the same
:class:`~repro.sim.results.SimulationResult`.  This package exploits that
twice:

* :class:`ResultCache` — a content-addressed store of finished results
  under ``.mapg-result-cache/``, keyed by the cell's :class:`JobSpec`
  digest *and* a digest of the simulation-package sources, so editing any
  model code invalidates every entry at once (the same recipe as
  ``repro.lint.cache``).
* :class:`SweepRunner` — fans cache-missing cells over a spawn-safe
  ``multiprocessing`` pool and merges results in deterministic job-key
  order, so sweep output is byte-identical at any worker count.

``run_policy_comparison`` / ``run_seed_study`` and the ``benchmarks/``
harness route through this engine; see docs/PERFORMANCE.md for the
architecture and the cache-invalidation rules.
"""

from repro.exec.cache import DEFAULT_CACHE_DIR, ResultCache, result_from_dict, result_to_dict
from repro.exec.engine import SweepRunner
from repro.exec.jobspec import JobSpec
from repro.exec.tracestore import TraceStore
from repro.exec.version import simulation_version

__all__ = [
    "DEFAULT_CACHE_DIR",
    "JobSpec",
    "ResultCache",
    "SweepRunner",
    "TraceStore",
    "result_from_dict",
    "result_to_dict",
    "simulation_version",
]
