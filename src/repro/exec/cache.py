"""Content-addressed result cache for simulation cells.

Finished :class:`~repro.sim.results.SimulationResult`\\ s land under
``.mapg-result-cache/`` keyed by::

    sha256(simulation_version || job-spec key)

where ``simulation_version`` hashes the source of the whole simulation
package (:mod:`repro.exec.version`) — editing any model file orphans every
entry at once — and the job-spec key already covers the full config
digest, profile, seed, op counts, and temperature.  A hit therefore
*cannot* go stale: anything that could change the result changes the key.

Entries are JSON (stable, inspectable, no unpickling of foreign bytes);
floats round-trip exactly through ``repr`` so a cached result is
field-for-field equal to a fresh run.  Writes are atomic (temp file +
``os.replace``) so concurrent sweeps can share a directory, and the cache
directory gitignores itself the way pytest's does.  Corrupt or unreadable
entries count as misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
from typing import Any, Dict, Optional

from repro.errors import CacheError
from repro.exec.jobspec import JobSpec
from repro.exec.version import RESULT_SCHEMA, simulation_version
from repro.sim.results import SimulationResult

DEFAULT_CACHE_DIR = ".mapg-result-cache"


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """A ``SimulationResult`` as a JSON-ready plain dict."""
    return dataclasses.asdict(result)


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a ``SimulationResult``; validation reruns in __post_init__."""
    field_names = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = sorted(set(data) - field_names)
    if unknown:
        raise CacheError(f"unknown SimulationResult fields: {unknown}")
    return SimulationResult(**data)


class ResultCache:
    """Content-addressed store of serialized simulation results."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    def key(self, spec: JobSpec) -> str:
        """Full cache address of one cell: sha256(code digest ; spec digest).

        Re-hashing the pair keeps the two-character directory fanout
        uniform (a plain concatenation would start every key with the
        process-constant code digest, piling all entries into one
        subdirectory).
        """
        combined = f"{simulation_version()};{spec.key}"
        return hashlib.sha256(combined.encode("utf-8")).hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".json")

    def load(self, spec: JobSpec) -> Optional[SimulationResult]:  # mapglint: error-boundary
        """The cached result for ``spec``, or ``None`` on any miss.

        A corrupt, stale, or unreadable entry must mean a *miss*, never
        an abort — the cache is an optimization and may not change
        observable behavior — so the broad catch below is the contract
        here, declared via the error-boundary pragma.
        """
        try:
            with open(self._entry_path(self.key(spec)), "r",
                      encoding="utf-8") as handle:
                entry = json.load(handle)
            if entry.get("schema") != RESULT_SCHEMA:
                raise CacheError("stale cache schema")
            result = result_from_dict(entry["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, spec: JobSpec, result: SimulationResult) -> None:
        """Atomically persist one result; I/O failures are ignored.

        The temp name carries pid and thread ident so concurrent sweeps
        (and future in-process worker threads) can never interleave into
        one temp file; a temp file that vanishes before the replace
        means a concurrent writer already published the identical entry.
        """
        entry_path = self._entry_path(self.key(spec))
        tmp_path = (f"{entry_path}.{os.getpid()}."
                    f"{threading.get_ident()}.tmp")
        payload = {
            "schema": RESULT_SCHEMA,
            "spec": spec.canonical(),
            "result": result_to_dict(result),
        }
        try:
            self._ensure_dir(os.path.dirname(entry_path))
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True,
                          separators=(",", ":"))
        except OSError:
            self._discard(tmp_path)
            return
        try:
            os.replace(tmp_path, entry_path)
        except FileNotFoundError:
            # The temp file vanished (concurrent cleaner, unlinked tree):
            # some writer already published the identical entry.
            self._discard(tmp_path)
        except OSError:
            self._discard(tmp_path)

    @staticmethod
    def _discard(tmp_path: str) -> None:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass

    def _ensure_dir(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        # Keep the cache out of version control even when the repo's own
        # .gitignore doesn't mention it (same trick pytest uses).
        marker = os.path.join(self.cache_dir, ".gitignore")
        if not os.path.exists(marker):
            try:
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write("*\n")
            except OSError:
                pass

    def stats(self) -> Dict[str, int]:
        """Hit/miss counters of this cache instance's lifetime."""
        return {"hits": self.hits, "misses": self.misses}
