"""The parallel sweep runner: cache, fan out, merge deterministically.

``SweepRunner.run`` takes a sequence of :class:`~repro.exec.jobspec.JobSpec`
cells and returns their results **in input order**, built in three steps:

1. **Cache probe** — every distinct spec is looked up in the
   :class:`~repro.exec.cache.ResultCache` (when one is attached); hits
   skip simulation entirely.
2. **Execution** — cache misses run either inline (``jobs=1``, sharing
   one :class:`~repro.exec.tracestore.TraceStore` so identical traces are
   generated once per process) or over a spawn-safe ``multiprocessing``
   pool.  Workers receive plain-dict payloads (no pickled code objects),
   rebuild the spec, and keep a module-level trace store of their own, so
   a worker simulating several policies of one workload also generates
   its trace once.
3. **Deterministic merge** — results are keyed by the spec's sha256 job
   key and emitted in the caller's spec order, so sweep output is
   byte-identical at any worker count and any completion order.

Nothing here reads the wall clock or draws randomness: scheduling order
cannot leak into results because every cell is hermetic by construction.
Sweep telemetry (``recorder=``) keeps that contract: every emission is
behind a single ``self._obs.enabled`` attribute check, all timestamps
live inside :mod:`repro.obs.sweep` (this module stays clock-free under
DET01), and worker identities ride back as plain dicts the parent strips
before results merge — so output is byte-identical with the recorder
attached or not, at any ``jobs`` count.
"""

from __future__ import annotations

import multiprocessing
import os
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, SweepError
from repro.exec.cache import ResultCache, result_from_dict, result_to_dict
from repro.exec.jobspec import JobSpec
from repro.exec.tracestore import TraceStore
from repro.exec.version import simulation_version
from repro.obs.sweep import NULL_SWEEP_RECORDER, NullSweepRecorder
from repro.sim.results import SimulationResult

# One trace store per pool worker, lazily built on the first task so the
# parent never ships trace data across the process boundary.
_WORKER_STORE: Optional[TraceStore] = None  # mapglint: declared-cache


def _execute_payload(item: "Tuple[str, Dict[str, Any]]"  # mapglint: error-boundary
                     ) -> "Tuple[str, Dict[str, Any]]":
    """Pool worker: rebuild one spec, simulate it, return (key, result).

    Module-level (not a closure) so it pickles under the ``spawn`` start
    method; the result travels back as a plain dict for the same reason.

    Nothing may escape a pool worker — an uncaught exception surfaces as
    a bare re-raise at the pool join and discards every in-flight cell —
    so any failure comes back as a ``__mapg_error__`` record under the
    same key, and the parent aggregates them into one
    :class:`~repro.errors.SweepError` after the surviving cells land.
    """
    global _WORKER_STORE
    if _WORKER_STORE is None:
        _WORKER_STORE = TraceStore()
    key, payload = item
    try:
        result = JobSpec.from_payload(payload).execute(
            trace_store=_WORKER_STORE)
    except Exception as exc:
        return key, {"__mapg_error__": f"{type(exc).__name__}: {exc}"}
    return key, result_to_dict(result)


def _execute_payload_observed(item: "Tuple[str, Dict[str, Any]]"  # mapglint: error-boundary
                              ) -> "Tuple[str, Dict[str, Any]]":
    """Telemetry variant of :func:`_execute_payload`: same execution, plus
    the worker's identity and engine telemetry riding back under
    ``__mapg_obs__`` — a plain dict, so the payload stays
    PAR01-picklable.  The parent pops the key before rebuilding the
    result, so telemetry can never reach a
    :class:`~repro.sim.results.SimulationResult`; it exists only so the
    sweep manifest can attribute cells to workers (utilization) and to
    engines (fast-path coverage with fallback reasons).
    """
    global _WORKER_STORE
    if _WORKER_STORE is None:
        _WORKER_STORE = TraceStore()
    key, payload = item
    obs: Dict[str, Any] = {"worker": os.getpid()}
    try:
        result, telemetry = JobSpec.from_payload(payload) \
            .execute_with_telemetry(trace_store=_WORKER_STORE)
    except Exception as exc:
        return key, {"__mapg_error__": f"{type(exc).__name__}: {exc}",
                     "__mapg_obs__": obs}
    obs["engine"] = telemetry["engine"]
    obs["fallback_reasons"] = list(telemetry["fallback_reasons"])
    out = result_to_dict(result)
    out["__mapg_obs__"] = obs
    return key, out


class SweepRunner:
    """Run many simulation cells: cached, parallel, deterministic.

    ``recorder`` accepts a :class:`~repro.obs.sweep.SweepRecorder`; the
    default is the shared :data:`~repro.obs.sweep.NULL_SWEEP_RECORDER`,
    so an unobserved sweep pays one attribute check per lifecycle site.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None,
                 mp_start_method: str = "spawn",
                 trace_store: Optional[TraceStore] = None,
                 recorder: Optional[NullSweepRecorder] = None) -> None:
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.mp_start_method = mp_start_method
        self.trace_store = trace_store if trace_store is not None else TraceStore()
        self._obs = recorder if recorder is not None else NULL_SWEEP_RECORDER
        self.executed = 0
        self.cache_hits = 0

    def run(self, specs: Sequence[JobSpec]) -> List[SimulationResult]:  # mapglint: error-boundary
        """Results for ``specs``, in input order; duplicates run once.

        Failures degrade gracefully: a failing cell never takes the
        sweep down with it.  Every other cell still completes and (when
        a cache is attached) lands in the cache; the failures are then
        re-raised together as one :class:`~repro.errors.SweepError`
        naming each failed cell by its spec key, so a 10^4-cell study
        loses only the broken cells — and only once.
        """
        unique: "OrderedDict[str, JobSpec]" = OrderedDict()
        for spec in specs:
            unique.setdefault(spec.key, spec)
        if self._obs.enabled:
            self._obs.sweep_begin(
                cells=len(specs), unique=len(unique), jobs=self.jobs,
                simulation_version=simulation_version(),
                cache_attached=self.cache is not None)
            for key, spec in unique.items():
                self._obs.cell_queued(key, profile=spec.profile,
                                      policy=spec.config.gating.policy,
                                      seed=spec.seed, num_ops=spec.num_ops,
                                      engine=spec.engine)

        results: Dict[str, SimulationResult] = {}
        if self.cache is not None:
            for key, spec in unique.items():
                cached = self.cache.load(spec)
                if cached is not None:
                    results[key] = cached
                    if self._obs.enabled:
                        self._obs.cell_cache_hit(key)
                elif self._obs.enabled:
                    self._obs.cell_cache_miss(key)
        self.cache_hits += len(results)

        # Deterministic dispatch order: cells sharing a trace first (so the
        # serial path's LRU trace store never thrashes), content key last —
        # the work list is identical however the caller ordered the sweep.
        missing = sorted(
            ((key, spec) for key, spec in unique.items()
             if key not in results),
            key=lambda item: (item[1].profile, item[1].seed,
                              item[1].warmup_ops, item[1].num_ops, item[0]))
        failures: Dict[str, str] = {}
        if self.jobs > 1 and len(missing) > 1:
            payloads = [(key, spec.to_payload()) for key, spec in missing]
            context = multiprocessing.get_context(self.mp_start_method)
            workers = min(self.jobs, len(payloads))
            if self._obs.enabled:
                self._obs.dispatch(cells=len(payloads), workers=workers,
                                   mode="pool")
            with context.Pool(processes=workers) as pool:
                if self._obs.enabled:
                    # The observed worker's only extra effect over the pure
                    # one is os.getpid() for the telemetry side channel; it
                    # is stripped below before any result is rebuilt, so the
                    # PROCESS effect cannot reach simulation output.
                    result_iter = pool.imap_unordered(  # mapglint: disable=PURE01
                        _execute_payload_observed, payloads, chunksize=1)
                else:
                    result_iter = pool.imap_unordered(
                        _execute_payload, payloads, chunksize=1)
                for key, result_dict in result_iter:
                    obs_info = result_dict.pop("__mapg_obs__", None) or {}
                    worker_id = int(obs_info.get("worker", 0))
                    error = result_dict.get("__mapg_error__")
                    if error is not None:
                        failures[key] = str(error)
                        if self._obs.enabled:
                            self._obs.cell_failed(key, failures[key],
                                                  worker=worker_id)
                    else:
                        results[key] = result_from_dict(result_dict)
                        if self._obs.enabled:
                            self._obs.cell_done(
                                key, worker=worker_id,
                                engine=obs_info.get("engine"),
                                fallback_reasons=obs_info.get(
                                    "fallback_reasons", ()))
        else:
            if missing and self._obs.enabled:
                self._obs.dispatch(cells=len(missing), workers=1,
                                   mode="serial")
            for key, spec in missing:
                if self._obs.enabled:
                    self._obs.cell_start(key)
                try:
                    # The telemetry variant runs the identical simulation;
                    # the extra tuple element is observation only, so the
                    # unobserved path keeps the plain call.
                    if self._obs.enabled:
                        results[key], telemetry = spec.execute_with_telemetry(
                            trace_store=self.trace_store)
                    else:
                        results[key] = spec.execute(
                            trace_store=self.trace_store)
                        telemetry = None
                except Exception as exc:
                    failures[key] = f"{type(exc).__name__}: {exc}"
                    if self._obs.enabled:
                        self._obs.cell_failed(key, failures[key])
                else:
                    if self._obs.enabled and telemetry is not None:
                        self._obs.cell_done(
                            key, engine=telemetry["engine"],
                            fallback_reasons=telemetry["fallback_reasons"])
        self.executed += len(missing)

        if self.cache is not None:
            for key, spec in missing:
                if key in results:
                    self.cache.store(spec, results[key])
        if self._obs.enabled:
            self._obs.sweep_end()
        if failures:
            raise SweepError(failures)
        return [results[spec.key] for spec in specs]

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: cells executed vs served from the cache."""
        return {"executed": self.executed, "cache_hits": self.cache_hits}
