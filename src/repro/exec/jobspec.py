"""Canonical description of one simulation cell, hashable to a stable key.

A :class:`JobSpec` pins everything that determines a
:class:`~repro.sim.results.SimulationResult`: the full system
configuration (via its sha256 digest from :mod:`repro.obs.manifest`), the
workload profile, the trace seed, the op counts, and the operating
temperature.  Two specs with equal keys produce bit-identical results by
the determinism discipline, which is what makes the key safe to use as a
cache address and as the deterministic merge order of parallel sweeps.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.obs.manifest import config_digest

JOB_SCHEMA = "mapg.job-spec/1"


@dataclass(frozen=True)
class JobSpec:
    """One simulation cell: exactly the inputs of ``run_workload``."""

    config: SystemConfig
    profile: str
    num_ops: int
    seed: int = 1
    warmup_ops: int = 0
    temperature_c: Optional[float] = None
    engine: str = "oracle"

    def __post_init__(self) -> None:
        from repro.fastsim import validate_engine

        if not self.profile:
            raise ConfigError("JobSpec needs a workload profile name")
        if self.num_ops < 0:
            raise ConfigError(f"num_ops must be >= 0, got {self.num_ops}")
        if self.warmup_ops < 0:
            raise ConfigError(
                f"warmup_ops must be >= 0, got {self.warmup_ops}")
        validate_engine(self.engine)

    def canonical(self) -> Dict[str, Any]:
        """The key-relevant content, JSON-ready and stably ordered.

        The configuration enters through its sha256 digest: any field
        change anywhere in the config tree changes the digest and
        therefore the job key.

        ``engine`` is deliberately **not** part of the key: the fast
        kernel's contract is bit-identical results (enforced by the
        crosscheck parity suite), so oracle- and fast-engine runs of the
        same cell are the same result and may share cache entries.
        """
        return {
            "schema": JOB_SCHEMA,
            "config_digest": config_digest(self.config),
            "profile": self.profile,
            "num_ops": self.num_ops,
            "seed": self.seed,
            "warmup_ops": self.warmup_ops,
            "temperature_c": self.temperature_c,
        }

    @property
    def key(self) -> str:
        """Stable sha256 over the canonical form (code version excluded —
        the :class:`~repro.exec.cache.ResultCache` mixes that in)."""
        payload = json.dumps(self.canonical(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_payload(self) -> Dict[str, Any]:
        """A picklable, spawn-safe wire form for pool workers."""
        return {
            "config": self.config.to_dict(),
            "profile": self.profile,
            "num_ops": self.num_ops,
            "seed": self.seed,
            "warmup_ops": self.warmup_ops,
            "temperature_c": self.temperature_c,
            "engine": self.engine,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_payload` output (in a worker)."""
        return cls(
            config=SystemConfig.from_dict(payload["config"]),
            profile=payload["profile"],
            num_ops=payload["num_ops"],
            seed=payload["seed"],
            warmup_ops=payload["warmup_ops"],
            temperature_c=payload["temperature_c"],
            engine=payload.get("engine", "oracle"),
        )

    def execute(self, trace_store: Optional[Any] = None) -> Any:
        """Run this cell and return its ``SimulationResult``.

        Exactly ``run_workload`` semantics: with a
        :class:`~repro.exec.tracestore.TraceStore` the (warmup, measured)
        traces come memoized from the store; without one the generator is
        streamed straight into the simulator, never materializing the op
        list.  ``engine="fast"`` routes through the columnar batched
        kernel (bit-identical by contract; memoized per-process in
        :func:`~repro.fastsim.columnar.shared_columnar_store`).
        """
        return self.execute_with_telemetry(trace_store=trace_store)[0]

    def execute_with_telemetry(
            self, trace_store: Optional[Any] = None
    ) -> Tuple[Any, Dict[str, Any]]:
        """:meth:`execute`, plus how the cell actually ran.

        Returns ``(result, telemetry)`` where telemetry is::

            {"engine": "oracle" | "fast",
             "used_fast_path": bool,
             "fallback_reasons": [str, ...]}

        ``engine`` is the *requested* engine.  A fast-engine cell that the
        kernel refused (see ``FastSimulator.fallback_reasons``) still runs
        bit-identically through oracle delegation, but reports
        ``used_fast_path=False`` and the eligibility reasons — this is the
        ground truth the sweep recorder aggregates so a sweep manifest can
        show how much of the grid actually took the fast path.  The result
        object is byte-for-byte the one :meth:`execute` returns; telemetry
        is read-only observation, never an input to the simulation.
        """
        from repro.sim.simulator import Simulator
        from repro.workloads.profiles import get_profile
        from repro.workloads.synthetic import SyntheticTraceGenerator

        kwargs = ({} if self.temperature_c is None
                  else {"temperature_c": self.temperature_c})
        if self.engine == "fast":
            from repro.fastsim import FastSimulator, shared_columnar_store

            fast = FastSimulator(self.config, workload=self.profile,
                                 seed=self.seed, **kwargs)
            warm_trace, measured_trace = shared_columnar_store().traces(
                self.profile, self.num_ops, seed=self.seed,
                warmup_ops=self.warmup_ops)
            if self.warmup_ops:
                fast.warm_up(warm_trace)
            result = fast.run(measured_trace)
            return result, {
                "engine": "fast",
                "used_fast_path": fast.used_fast_path,
                "fallback_reasons": list(fast.fallback_reasons),
            }
        telemetry = {"engine": "oracle", "used_fast_path": False,
                     "fallback_reasons": []}
        simulator = Simulator(self.config, workload=self.profile,
                              seed=self.seed, **kwargs)
        if trace_store is not None:
            warm_trace, measured_trace = trace_store.traces(
                self.profile, self.num_ops, seed=self.seed,
                warmup_ops=self.warmup_ops)
            if self.warmup_ops:
                simulator.warm_up(warm_trace)
            return simulator.run(measured_trace), telemetry
        generator = SyntheticTraceGenerator(get_profile(self.profile),
                                            seed=self.seed)
        if self.warmup_ops:
            simulator.warm_up(generator.operations(self.warmup_ops))
        return simulator.run(generator.operations(self.num_ops)), telemetry
