"""Per-process memoization of generated traces.

``run_policy_comparison`` replays the *identical* trace once per policy —
before this store it also regenerated it once per policy, which made trace
generation scale with the policy count instead of the workload count.  The
store generates each ``(profile, seed, warmup_ops, num_ops)`` trace
exactly once per process and serves immutable tuples thereafter; pool
workers keep one module-level store each, so a worker that simulates five
policies of one workload generates its trace once.

Generation reproduces ``run_workload``'s two-call shape exactly — one
generator yields the warmup ops, then *continues* into the measured ops —
so a stored trace is op-for-op identical to the uncached path (the
generator's phase schedule and RNG advance across the warmup/measure
boundary, which a fresh generator per region would not reproduce).

The store is bounded (LRU over whole traces) because a long sweep may
touch many workloads; evicting simply means regenerating later.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.errors import ConfigError
from repro.trace.format import TraceOp
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticTraceGenerator

_TraceKey = Tuple[str, int, int, int]
_TracePair = Tuple[Tuple[TraceOp, ...], Tuple[TraceOp, ...]]


class TraceStore:
    """LRU-bounded memo of ``(warmup trace, measured trace)`` tuples."""

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"TraceStore needs max_entries >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[_TraceKey, _TracePair]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def traces(self, profile: str, num_ops: int, seed: int = 1,
               warmup_ops: int = 0) -> _TracePair:
        """The (warmup, measured) op tuples for one simulation cell."""
        trace_key: _TraceKey = (profile, seed, warmup_ops, num_ops)
        cached = self._entries.get(trace_key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(trace_key)
            return cached
        self.misses += 1
        generator = SyntheticTraceGenerator(get_profile(profile), seed=seed)
        pair: _TracePair = (
            tuple(generator.operations(warmup_ops)) if warmup_ops else (),
            tuple(generator.operations(num_ops)),
        )
        self._entries[trace_key] = pair
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return pair
