"""Simulation-source digest: the code half of every result-cache key.

A cached :class:`~repro.sim.results.SimulationResult` is only valid while
the code that produced it is unchanged, so every cache key embeds a hash
over the source of the whole ``repro`` package (the lint tree excluded —
it has its own cache and cannot influence simulation output).  Editing any
model file invalidates every entry at once, with no manual version bump to
forget — the same recipe as :func:`repro.lint.cache.ruleset_version`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional

#: Serialization-format tag mixed into the digest: bumping it orphans every
#: cache entry even when no source file changed (e.g. a result-schema edit).
RESULT_SCHEMA = "mapg.sim-result/1"

# Subpackages of repro that cannot influence a SimulationResult and would
# only cause spurious invalidations: the linter caches itself.
_EXCLUDED_DIRS = ("lint", "__pycache__")

_simulation_version: Optional[str] = None  # mapglint: declared-cache


def digest_tree(root: str, excluded: "tuple[str, ...]" = _EXCLUDED_DIRS) -> str:
    """sha256 over every ``.py`` file under ``root``, path-and-content.

    Files are visited in sorted relative-path order so the digest is
    independent of filesystem enumeration order; ``excluded`` directory
    names are pruned wherever they appear.
    """
    digest = hashlib.sha256()
    digest.update(f"schema={RESULT_SCHEMA};".encode("utf-8"))
    for current, dirs, names in os.walk(root):
        dirs[:] = sorted(d for d in dirs if d not in excluded)
        for name in sorted(names):
            if not name.endswith(".py"):
                continue
            full = os.path.join(current, name)
            digest.update(os.path.relpath(full, root).encode("utf-8"))
            with open(full, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def simulation_version() -> str:
    """Digest of the simulation package sources (computed once per process)."""
    global _simulation_version
    if _simulation_version is None:
        import repro

        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        _simulation_version = digest_tree(package_dir)[:20]
    return _simulation_version
