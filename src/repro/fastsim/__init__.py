"""repro.fastsim — the columnar batched simulation fast path.

Public surface:

* :class:`ColumnarTrace` / :class:`ColumnarTraceStore` — parallel-array
  trace representation and its per-process memo.
* :class:`FastSimulator` — the batched kernel, bit-identical to the
  oracle :class:`~repro.sim.simulator.Simulator` (falls back to it for
  unsupported configurations).
* :data:`ENGINES` / :func:`validate_engine` — the engine-selection
  vocabulary shared by the CLI, the runner, and the exec layer.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.fastsim.columnar import (ColumnarTrace, ColumnarTraceStore,
                                    shared_columnar_store)
from repro.fastsim.kernel import FastSimulator

ENGINES = ("oracle", "fast")


def validate_engine(engine: str) -> str:
    """Check an engine name, returning it; raises ConfigError otherwise."""
    if engine not in ENGINES:
        raise ConfigError(
            f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}")
    return engine


__all__ = [
    "ColumnarTrace",
    "ColumnarTraceStore",
    "ENGINES",
    "FastSimulator",
    "shared_columnar_store",
    "validate_engine",
]
