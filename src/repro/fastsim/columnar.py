"""Columnar trace representation for the batched execution kernel.

The oracle replays traces as tuples of per-op objects
(:class:`~repro.trace.format.ComputeBlock` /
:class:`~repro.trace.format.MemoryAccess`); attribute access and
``isinstance`` dispatch on those objects dominate the per-op cost.  This
module stores the same trace as parallel arrays keyed by *memory access*
— the only op kind at which memory-system state can change:

* ``addresses`` / ``pcs`` — ``array('q')`` per memory access,
* ``write_flags`` / ``dependent_flags`` — ``bytearray`` per memory access,
* ``block_instructions`` — one flat ``array('q')`` of every compute
  block's instruction count, in trace order,
* ``block_bounds`` — CSR-style bounds: the compute blocks *preceding*
  memory access ``i`` are ``block_instructions[bounds[i]:bounds[i+1]]``,
  and the trailing blocks after the last access are the final interval.

The kernel additionally needs each interval's *busy cycles*, which depend
on the core's issue width: the oracle charges ``ceil(instructions /
issue_width)`` **per block** (a sum of ceilings, not a ceiling of sums),
so :meth:`ColumnarTrace.busy_cycles_for` pre-folds each interval with
exactly that per-block ``math.ceil`` and memoizes per width.  Building a
``ColumnarTrace`` is a one-time linear pass; :meth:`ColumnarTrace.ops`
reconstructs the original op stream for the oracle fallback path.

:class:`ColumnarTraceStore` mirrors :class:`repro.exec.TraceStore`
exactly — one generator pass yields the warmup ops and *continues* into
the measured ops, so the stored pair is op-for-op identical to the
object-trace path — but memoizes columnar pairs instead of op tuples.
"""

from __future__ import annotations

import math
from array import array
from collections import OrderedDict
from typing import Dict, Iterable, Iterator, List, Tuple

try:  # vectorized key precompute; the pure-python fallback is equivalent
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the reference image
    _np = None  # type: ignore[assignment]

from repro.errors import ConfigError, TraceError
from repro.trace.format import ComputeBlock, MemoryAccess, TraceOp
from repro.workloads.profiles import get_profile
from repro.workloads.synthetic import SyntheticTraceGenerator


class ColumnarTrace:
    """One trace region as parallel arrays, keyed by memory access."""

    __slots__ = ("addresses", "pcs", "write_flags", "dependent_flags",
                 "block_instructions", "block_bounds",
                 "num_memory_ops", "num_blocks", "num_ops",
                 "total_block_instructions", "_busy_by_width",
                 "_keys_by_geometry")

    def __init__(self, ops: Iterable[TraceOp]) -> None:
        addresses = array("q")
        pcs = array("q")
        write_flags = bytearray()
        dependent_flags = bytearray()
        block_instructions = array("q")
        block_bounds = array("q", [0])
        total_instr = 0
        for op in ops:
            if type(op) is ComputeBlock:
                block_instructions.append(op.instructions)
                total_instr += op.instructions
            elif type(op) is MemoryAccess:
                addresses.append(op.address)
                pcs.append(op.pc)
                write_flags.append(1 if op.is_write else 0)
                dependent_flags.append(1 if op.dependent else 0)
                block_bounds.append(len(block_instructions))
            else:
                raise TraceError(
                    f"unknown trace op type {type(op).__name__}")
        # Close the trailing interval (compute blocks after the last
        # memory access).
        block_bounds.append(len(block_instructions))
        self.addresses = addresses
        self.pcs = pcs
        self.write_flags = write_flags
        self.dependent_flags = dependent_flags
        self.block_instructions = block_instructions
        self.block_bounds = block_bounds
        self.num_memory_ops = len(addresses)
        self.num_blocks = len(block_instructions)
        self.num_ops = self.num_memory_ops + self.num_blocks
        self.total_block_instructions = total_instr
        self._busy_by_width: Dict[int, array] = {}
        self._keys_by_geometry: Dict[Tuple[int, int],
                                     Tuple[List[int], List[int],
                                           List[int]]] = {}

    def busy_cycles_for(self, issue_width: int) -> array:
        """Busy cycles per interval at ``issue_width``, memoized.

        Entry ``i`` (for ``i < num_memory_ops``) is the busy time of the
        compute blocks issued *before* memory access ``i``; the final
        entry is the trailing run after the last access.  Each block
        contributes ``math.ceil(instructions / issue_width)`` — the exact
        float-division ceiling the oracle core computes per block.
        """
        if issue_width < 1:
            raise ConfigError(
                f"issue_width must be >= 1, got {issue_width}")
        cached = self._busy_by_width.get(issue_width)
        if cached is not None:
            return cached
        ceil = math.ceil
        blocks = self.block_instructions
        bounds = self.block_bounds
        busy = array("q", bytes(8 * (len(bounds) - 1)))
        for interval in range(len(bounds) - 1):
            total = 0
            for index in range(bounds[interval], bounds[interval + 1]):
                total += ceil(blocks[index] / issue_width)
            busy[interval] = total
        self._busy_by_width[issue_width] = busy
        return busy

    def block_keys_for(self, offset_bits: int,
                       index_mask: int) -> Tuple[List[int], List[int],
                                                 List[int]]:
        """Per-access (block, set index, tag) lists for one cache geometry.

        Precomputed once per (offset_bits, index_mask) pair and memoized —
        the batched kernel's hottest per-access work is exactly these three
        integer ops, so folding them out of the loop (vectorized when numpy
        is available; the scalar fallback computes identical values) buys a
        measurable share of the speedup.
        """
        geometry = (offset_bits, index_mask)
        cached = self._keys_by_geometry.get(geometry)
        if cached is not None:
            return cached
        index_bits = index_mask.bit_length()
        if _np is not None and self.num_memory_ops:
            raw = _np.frombuffer(self.addresses, dtype=_np.int64)
            block_v = raw >> offset_bits
            keys = (block_v.tolist(), (block_v & index_mask).tolist(),
                    (block_v >> index_bits).tolist())
        else:
            blocks = [address >> offset_bits for address in self.addresses]
            keys = (blocks, [block & index_mask for block in blocks],
                    [block >> index_bits for block in blocks])
        self._keys_by_geometry[geometry] = keys
        return keys

    def ops(self) -> Iterator[TraceOp]:
        """Reconstruct the original op stream (oracle-compatible)."""
        blocks = self.block_instructions
        bounds = self.block_bounds
        write_flags = self.write_flags
        dependent_flags = self.dependent_flags
        pcs = self.pcs
        for i, address in enumerate(self.addresses):
            for index in range(bounds[i], bounds[i + 1]):
                yield ComputeBlock(instructions=blocks[index])
            yield MemoryAccess(address=address, pc=pcs[i],
                               is_write=bool(write_flags[i]),
                               dependent=bool(dependent_flags[i]))
        for index in range(bounds[self.num_memory_ops],
                           bounds[self.num_memory_ops + 1]):
            yield ComputeBlock(instructions=blocks[index])


_TraceKey = Tuple[str, int, int, int]
_ColumnarPair = Tuple[ColumnarTrace, ColumnarTrace]

_EMPTY_TRACE = ColumnarTrace(())


class ColumnarTraceStore:
    """LRU-bounded memo of ``(warmup, measured)`` columnar trace pairs.

    Generation mirrors :class:`repro.exec.TraceStore`: one generator
    yields the warmup ops and then continues into the measured ops, so
    the phase schedule and RNG advance across the boundary exactly as the
    object-trace path does.
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ConfigError(
                f"ColumnarTraceStore needs max_entries >= 1, "
                f"got {max_entries}")
        self.max_entries = max_entries
        self._entries: "OrderedDict[_TraceKey, _ColumnarPair]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def traces(self, profile: str, num_ops: int, seed: int = 1,
               warmup_ops: int = 0) -> _ColumnarPair:
        """The (warmup, measured) columnar traces for one simulation cell."""
        trace_key: _TraceKey = (profile, seed, warmup_ops, num_ops)
        cached = self._entries.get(trace_key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(trace_key)
            return cached
        self.misses += 1
        generator = SyntheticTraceGenerator(get_profile(profile), seed=seed)
        pair: _ColumnarPair = (
            ColumnarTrace(generator.operations(warmup_ops)) if warmup_ops
            else _EMPTY_TRACE,
            ColumnarTrace(generator.operations(num_ops)),
        )
        self._entries[trace_key] = pair
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return pair


# Per-process memo of generated columnar traces: a pure function of the
# (profile, seed, warmup_ops, num_ops) key, same contract as the exec
# engine's per-worker TraceStore.  # mapglint: declared-cache
_SHARED_STORE = ColumnarTraceStore()


def shared_columnar_store() -> ColumnarTraceStore:
    """The per-process shared columnar trace store."""
    return _SHARED_STORE
