"""Batched single-core execution kernel, bit-identical to the oracle.

:class:`FastSimulator` wraps a regular :class:`~repro.sim.simulator.Simulator`
and replays a :class:`~repro.fastsim.columnar.ColumnarTrace` through one
flat Python loop instead of the oracle's object pipeline (trace-op objects
-> ``Core.segments`` generator -> segment objects -> type-keyed dispatch ->
per-call cache/MSHR/DRAM/controller methods).  Whole stall-free runs are
advanced in one step — busy cycles accumulate in a local and are charged
as a single ACTIVE batch at the next stall, exactly as the oracle's
``Core`` coalesces them into one ``BusySegment`` — and the kernel drops
into per-event handling only where controller state actually matters: at
off-chip stalls.

The contract is **bit identity**, not approximation.  Every float the
oracle computes is reproduced with the same operands in the same order:

* interval energy accumulates as ``state_power * (cycles / f)`` per
  interval, in event order, into one accumulator per power state;
* DRAM bank timing runs the oracle's nanosecond arithmetic term by term,
  with cycle<->ns conversions through the same :mod:`repro.units`
  helpers the hierarchy calls;
* the MAPG policy/predictor updates (EWMA, confidence counters, fallback
  registers, the adaptive AIMD bias) mutate the *real* policy objects with
  inlined copies of their update rules;
* prediction error streams use the same Welford recurrence.

Architectural state (cache tags as insertion-ordered per-set dicts whose
order provably equals the oracle's LRU stacks, MSHR fill maps with the
oracle's eager expiry replayed at the same call points, DRAM bank state)
lives privately on the kernel and persists across the warmup/measure
boundary; *measurement* state accumulates in locals and is flushed into
the wrapped simulator's real objects at region end — counters through
``CounterSet.add``, ledger totals through
:meth:`~repro.core.energy.EnergyLedger.add_batch` (the batch entry point,
so ledger internals stay owned by ``repro/core/energy.py``), histograms
and running means by direct state transplant into the freshly-reset
objects.  ``Simulator.reset_measurements()`` and ``Simulator.result()``
then run unmodified, so the result path is shared with the oracle.

Fallback: configurations the kernel does not replicate (miss-window
cores, prefetchers, non-LRU replacement, shared DRAM, token arbiters,
timeline recording, attached span recorders) transparently run the
oracle on the reconstructed op stream; see ``fallback_reasons``.
Policies other than Never/Mapg/AdaptiveMapg (or non-table predictors)
still take the batched memory path but call the real
``MapgController.process_stall`` per off-chip stall.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Dict, List, Optional, Tuple

from repro.config import SystemConfig
from repro.core.adaptive import AdaptiveMapgPolicy
from repro.core.gating_constants import (
    AIMD_BIAS_CAP_CYCLES, AIMD_DECAY, AIMD_IDLE_TOLERANCE_CYCLES,
    AIMD_INCREASE_CYCLES, FALLBACK_DEV_BIAS, FALLBACK_DEV_FRACTION,
    GLOBAL_ALPHA, TABLE_BANK_MULT, TABLE_KIND_MASK, TABLE_KIND_MULT,
    TABLE_PC_SHIFT)
from repro.core.policies import MapgPolicy, NeverPolicy
from repro.core.token import TokenArbiter
from repro.cpu.core import MLP_WINDOW_CYCLES
from repro.errors import SimulationError
from repro.fastsim.columnar import ColumnarTrace
from repro.memory.dram import (ROW_CLOSED, ROW_CONFLICT, ROW_HIT,
                               WRITE_BUFFERED, Dram)
from repro.obs.spans import NullRecorder
from repro.power.model import PowerState
from repro.power.temperature import NOMINAL_TEMPERATURE_C
from repro.predict.table import HistoryTablePredictor
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.units import CYCLE_CEIL_EPSILON, NS, cycles_to_ns

_INF = float("inf")

# Memory-counter slots (one flat list of ints, flushed to the named
# CounterSets at region end; a key is flushed only when its count is
# nonzero, matching the oracle's "present iff added at least once").
_H_ACC, _H_L1_MERGE, _H_L1_STALL, _H_L2_MERGE, _H_L2_STALL, _H_WB = range(6)
_L1_ACC, _L1_WR, _L1_HIT, _L1_MISS, _L1_WB = range(6, 11)
_L2_ACC, _L2_WR, _L2_HIT, _L2_MISS, _L2_WB = range(11, 16)
(_D_ACC, _D_ROW_HIT, _D_ROW_CLOSED, _D_ROW_CONFLICT, _D_WR, _D_BUF_WR,
 _D_DRAIN, _D_REFRESH) = range(16, 24)
_MC_SLOTS = 24

_MISSING = object()


class FastSimulator:
    """Columnar batched replay of one core domain, oracle-identical.

    Drop-in companion to :class:`~repro.sim.simulator.Simulator`:
    construct with the same arguments, then drive with
    :meth:`warm_up`/:meth:`run` passing
    :class:`~repro.fastsim.columnar.ColumnarTrace` regions.  The wrapped
    oracle instance is exposed as ``.sim`` (its ``result()`` is the one
    returned).  ``fallback_reasons`` lists why the kernel would not
    engage; when non-empty the replay transparently uses the oracle.
    """

    def __init__(self, config: SystemConfig, workload: str = "custom",
                 temperature_c: float = NOMINAL_TEMPERATURE_C,
                 shared_dram: Optional[Dram] = None,
                 token_arbiter: Optional[TokenArbiter] = None,
                 core_id: int = 0, seed: int = 0,
                 record_timeline: bool = False,
                 recorder: Optional[NullRecorder] = None) -> None:
        self.sim = Simulator(
            config, workload=workload, temperature_c=temperature_c,
            shared_dram=shared_dram, token_arbiter=token_arbiter,
            core_id=core_id, seed=seed, record_timeline=record_timeline,
            recorder=recorder)
        self.config = config
        self.fallback_reasons = self._eligibility(
            config, shared_dram, token_arbiter, record_timeline)
        self.used_fast_path = not self.fallback_reasons
        if self.used_fast_path:
            self._select_stall_mode()
            self._setup_state(config)

    # ---- eligibility -----------------------------------------------------------

    def _eligibility(self, config: SystemConfig,
                     shared_dram: Optional[Dram],
                     token_arbiter: Optional[TokenArbiter],
                     record_timeline: bool) -> List[str]:
        """Why the batched kernel cannot run this configuration (empty = can)."""
        reasons: List[str] = []
        if config.core.miss_window > 1:
            # WindowedCore's overlap accounting (and its counters) exists
            # only on the oracle path; the fast engine refuses it here.
            # mapglint: twin-exempt=dependence_stalls,overlapped_misses
            # mapglint: twin-exempt=hidden_misses
            reasons.append("miss_window > 1 (WindowedCore)")
        if self.sim.hierarchy.prefetcher is not None:
            # The whole prefetcher subsystem sits outside the fast
            # envelope: its config knobs and counters never occur on a
            # fast-path run because this check falls back first.
            # mapglint: twin-exempt=table_entries,max_stride_bytes
            # mapglint: twin-exempt=confirmations,useful_prefetches
            # mapglint: twin-exempt=late_prefetches,prefetch_redundant
            # mapglint: twin-exempt=prefetch_dropped,prefetch_fills
            # mapglint: twin-exempt=trained,triggers,issued
            reasons.append("prefetcher enabled")
        if config.l1.replacement != "lru":
            reasons.append(f"l1 replacement {config.l1.replacement!r}")
        if config.l2.replacement != "lru":
            reasons.append(f"l2 replacement {config.l2.replacement!r}")
        if shared_dram is not None:
            reasons.append("shared DRAM (multi-core contention)")
        if token_arbiter is not None:
            reasons.append("token arbiter (TAP mode)")
        if record_timeline:
            reasons.append("timeline recording requested")
        if self.sim._obs.enabled:
            reasons.append("span recorder attached")
        return reasons

    def _select_stall_mode(self) -> None:
        """Pick how off-chip stalls are handled (exact-type dispatch).

        Subclasses (other than the two known ones) may override hooks the
        inline path does not call, so anything unrecognized takes the
        ``generic`` path: batched memory system, real controller call.
        """
        policy = self.sim.controller.policy
        if type(policy) is NeverPolicy:
            self._stall_mode = "never"
        elif type(policy) in (MapgPolicy, AdaptiveMapgPolicy) and \
                type(getattr(policy, "predictor", None)) \
                is HistoryTablePredictor:
            self._stall_mode = "mapg"
        else:
            self._stall_mode = "generic"

    # ---- private state ---------------------------------------------------------

    def _setup_state(self, config: SystemConfig) -> None:
        sim = self.sim
        # Core / timing.
        self._freq = config.core.frequency_hz
        self._issue_width = config.core.issue_width
        self._mlp_overlap = config.core.mlp_overlap
        self._mlp_factor = 1.0 - config.core.mlp_overlap
        self._l1_lat = config.l1.hit_latency_cycles
        self._l2_lat = config.l2.hit_latency_cycles
        # L1/L2 tag state: per-set insertion-ordered dict tag -> dirty.
        # Insertion order equals the oracle's LRU stack: fills take invalid
        # ways in way order while `_touch` appends to the stack tail, so
        # stack order is insertion order; hits reinsert at the tail; the
        # victim (stack head) is the first key.
        self._l1_off = config.l1.line_bytes.bit_length() - 1
        self._l1_mask = config.l1.num_sets - 1
        self._l1_idx_bits = self._l1_mask.bit_length()
        self._l1_ways = config.l1.associativity
        self._l1_wb = config.l1.write_back
        self._l1_sets: List[Dict[int, bool]] = [
            {} for __ in range(config.l1.num_sets)]
        self._l2_off = config.l2.line_bytes.bit_length() - 1
        self._l2_mask = config.l2.num_sets - 1
        self._l2_idx_bits = self._l2_mask.bit_length()
        self._l2_ways = config.l2.associativity
        self._l2_wb = config.l2.write_back
        self._l2_sets: List[Dict[int, bool]] = [
            {} for __ in range(config.l2.num_sets)]
        # MSHRs: line -> fill cycle, plus a tracked minimum fill so the
        # oracle's eager expiry scan runs only when it could remove entries.
        self._l1_cap = config.l1.mshr_entries
        self._l2_cap = config.l2.mshr_entries
        self._l1m: Dict[int, int] = {}
        self._l1m_min: float = _INF
        self._l2m: Dict[int, int] = {}
        self._l2m_min: float = _INF
        # DRAM.
        dram_cfg = config.dram
        nbanks = dram_cfg.total_banks
        self._d_nbanks = nbanks
        self._d_rowbits = dram_cfg.row_bytes.bit_length() - 1
        self._d_overhead_ns = dram_cfg.controller_overhead_ns
        self._d_tcas_ns = dram_cfg.t_cas_ns
        self._d_trcd_ns = dram_cfg.t_rcd_ns
        self._d_trp_ns = dram_cfg.t_rp_ns
        self._d_tras_ns = dram_cfg.t_ras_ns
        self._d_qserv_ns = dram_cfg.queue_service_ns
        self._d_bus_ns = dram_cfg.bus_transfer_ns
        self._d_refresh_int_ns = dram_cfg.refresh_interval_ns
        self._d_refresh_lat_ns = dram_cfg.refresh_latency_ns
        self._d_row_open = dram_cfg.row_policy == "open"
        self._d_wbpb = dram_cfg.write_buffer_per_bank
        self._d_wserv_ns = dram_cfg.t_cas_ns + dram_cfg.queue_service_ns
        self._d_wcap_ns = dram_cfg.write_buffer_per_bank * self._d_wserv_ns
        self._d_open: List[int] = [-1] * nbanks
        self._d_busy: List[float] = [0.0] * nbanks
        self._d_act: List[float] = [-1e18] * nbanks
        self._d_debt: List[float] = [0.0] * nbanks
        # Histogram edge tables (identical floats to the oracle's, taken
        # from freshly built instances).
        self._sh_edges = list(
            sim.stall_histogram._edges)
        self._dh_edges = list(
            sim.hierarchy.dram.latency_histogram._edges)
        self._reset_dram_histogram()
        # Energy: per-state powers and the circuit clock, hoisted.
        powers = sim.power_model.state_power_table()
        self._p_active = powers[PowerState.ACTIVE]
        self._p_stall = powers[PowerState.STALL]
        self._p_drain = powers[PowerState.DRAIN]
        self._p_sleep = powers[PowerState.SLEEP]
        self._p_sret = powers[PowerState.SLEEP_RETENTION]
        self._p_wake = powers[PowerState.WAKE]
        self._p_token = powers[PowerState.TOKEN_WAIT]
        self._cfreq = sim.circuit.frequency_hz
        # Controller / policy constants for the inline stall modes.
        analyzer = sim.controller.analyzer
        gating = config.gating
        self._drain = analyzer.drain_cycles
        self._wake_full = analyzer.wake_cycles_for("full")
        self._wake_ret = analyzer.wake_cycles_for("retention")
        guard = gating.guard_margin_cycles
        self._th_full = (self._drain + self._wake_full
                         + analyzer.bet_cycles_for("full") + guard)
        self._th_ret = (self._drain + self._wake_ret
                        + analyzer.bet_cycles_for("retention") + guard)
        self._sleep_mode = gating.sleep_mode
        self._min_conf = gating.min_confidence
        self._early_wakeup = gating.early_wakeup
        self._fixed_margin = gating.early_margin_cycles
        self._event_energy_fn = sim.power_model.gating_event_energy_j
        # gating_event_energy_j is a pure function of (sleep cycles, mode);
        # memoizing per int sleep length reproduces its floats exactly.
        self._ee_full: Dict[int, float] = {}
        self._ee_ret: Dict[int, float] = {}
        policy = sim.controller.policy
        self._adaptive = isinstance(policy, AdaptiveMapgPolicy)
        if self._stall_mode == "mapg":
            assert isinstance(policy, MapgPolicy)
            self._policy: Optional[MapgPolicy] = policy
            predictor = policy.predictor
            assert isinstance(predictor, HistoryTablePredictor)
            self._table: List[Any] = predictor._table
            self._table_n = predictor._entries_count
            self._table_alpha = predictor._alpha
            self._table_tol = predictor._tolerance
            self._table_initial = predictor._initial
            self._conf_max = type(self._table[0]).CONFIDENCE_MAX
            self._fallback_regs: Dict[str, List[float]] = policy._fallback
            self._static_est = policy.static_estimate_cycles
            # kind -> (kind_bits * TABLE_KIND_MULT), the table hash's
            # kind term, pre-folded per known row-buffer outcome.
            self._kind_mult: Dict[str, int] = {
                kind: (sum(kind.encode()) & TABLE_KIND_MASK)
                * TABLE_KIND_MULT
                for kind in ("", ROW_HIT, ROW_CLOSED, ROW_CONFLICT,
                             WRITE_BUFFERED)}
        else:
            self._policy = None

    def _reset_dram_histogram(self) -> None:
        # Stats ride in one list ([n, sum, min, max]) so the replay loop's
        # local reference and the rare-path write method share them.
        self._dh_counts = [0] * (len(self._dh_edges) + 1)
        self._dh_stats: List[Any] = [0, 0.0, _INF, -_INF]

    # ---- public API ------------------------------------------------------------

    def warm_up(self, trace: ColumnarTrace) -> None:
        """Replay a warmup region, then reset measurements (oracle-equal)."""
        if not self.used_fast_path:
            self.sim.warm_up(trace.ops())
            return
        if self.sim._finished:
            raise SimulationError("cannot warm up after the measured run")
        self._replay(trace)
        self.sim.reset_measurements()

    def run(self, trace: ColumnarTrace) -> SimulationResult:
        """Replay the measured region to completion; returns the result."""
        if not self.used_fast_path:
            return self.sim.run(trace.ops())
        if self.sim._finished:
            raise SimulationError("a Simulator instance runs exactly one trace")
        self._replay(trace)
        self.sim._finished = True
        return self.sim.result()

    # ---- the batched replay loop -----------------------------------------------

    def _replay(self, trace: ColumnarTrace) -> None:
        """Advance the whole region, then flush measurements into the sim.

        One iteration per *memory access*; the busy run before each access
        (pre-folded per issue width by the columnar trace) advances the
        clock and the pending-ACTIVE batch in O(1).
        """
        sim = self.sim
        mc = [0] * _MC_SLOTS
        self._mc = mc

        # Hot architectural state -> locals.
        cyc = sim.core._cycle
        last_off = sim.core._last_offchip_end
        l1_sets = self._l1_sets
        l1m = self._l1m
        l1m_get = l1m.get
        l1m_min = self._l1m_min
        l1_off = self._l1_off
        l1_idx_bits = self._l1_idx_bits
        l1_ways = self._l1_ways
        l1_wb = self._l1_wb
        l1_lat = self._l1_lat
        l1_cap = self._l1_cap
        l2_sets = self._l2_sets
        l2m = self._l2m
        l2m_get = l2m.get
        l2m_min = self._l2m_min
        l2_off = self._l2_off
        l2_mask = self._l2_mask
        l2_idx_bits = self._l2_idx_bits
        l2_ways = self._l2_ways
        l2_lat = self._l2_lat
        l2_cap = self._l2_cap
        d_nbanks = self._d_nbanks
        d_rowbits = self._d_rowbits
        d_overhead_ns = self._d_overhead_ns
        d_tcas_ns = self._d_tcas_ns
        d_trcd_ns = self._d_trcd_ns
        d_trp_ns = self._d_trp_ns
        d_tras_ns = self._d_tras_ns
        d_qserv_ns = self._d_qserv_ns
        d_bus_ns = self._d_bus_ns
        d_refresh_int_ns = self._d_refresh_int_ns
        d_refresh_lat_ns = self._d_refresh_lat_ns
        d_refresh_on = d_refresh_lat_ns > 0.0
        d_row_open = self._d_row_open
        d_open = self._d_open
        d_busy = self._d_busy
        d_act = self._d_act
        d_debt = self._d_debt
        dh_edges = self._dh_edges
        dh_counts = self._dh_counts
        dh_stats = self._dh_stats
        freq = self._freq
        ceil_ = math.ceil
        ceil_eps = CYCLE_CEIL_EPSILON
        bisect = bisect_right
        c2ns = cycles_to_ns
        wb_l2 = self._wb_l2
        dram_write = self._dram_write
        mlp_on = self._mlp_overlap > 0.0
        mlp_factor = self._mlp_factor

        # Measurement accumulators (zero per region).
        pend = 0
        n_off = 0
        off_cyc = 0
        n_on = 0
        on_cyc = 0
        # Hot memory counters (merged into `mc` at flush; the rare-path
        # writeback methods count into `mc` directly).
        n_l1_miss = 0
        n_l1_merge = 0
        n_l1_wb = 0
        h_l1_stall = 0
        n_l2_acc = 0
        n_l2_hit = 0
        n_l2_miss = 0
        n_l2_merge = 0
        n_l2_wb = 0
        h_l2_stall = 0
        h_wb = 0
        n_d_acc = 0
        n_d_hit = 0
        n_d_closed = 0
        n_d_conflict = 0
        n_d_refresh = 0
        active_c = 0
        e_active = 0.0
        stall_c = 0
        e_stall = 0.0
        drain_c = 0
        e_drain = 0.0
        sleep_c = 0
        e_sleep = 0.0
        sret_c = 0
        e_sret = 0.0
        wake_c = 0
        e_wake = 0.0
        token_c = 0
        e_token = 0.0
        ev_energy = 0.0
        ev_count = 0
        # Controller counters (inline modes).
        cc_ungated = 0
        cc_aborted = 0
        cc_gated = 0
        cc_gated_full = 0
        cc_gated_ret = 0
        cc_sleep_sum = 0
        cc_penalty_sum = 0
        cc_idle_sum = 0
        # Prediction-error Welford streams (inline mapg mode).
        pe_n = 0
        pe_mean = 0.0
        pe_m2 = 0.0
        pre_n = 0
        pre_mean = 0.0
        pre_m2 = 0.0
        # Off-chip stall-length histogram (simulator-level).
        sh_edges = self._sh_edges
        sh_counts = [0] * (len(sh_edges) + 1)
        sh_n = 0
        sh_sum = 0.0
        sh_min = _INF
        sh_max = -_INF

        p_active = self._p_active
        p_stall = self._p_stall
        p_drain = self._p_drain
        p_wake = self._p_wake
        cfreq = self._cfreq

        mode_never = self._stall_mode == "never"
        mode_mapg = self._stall_mode == "mapg"
        if mode_mapg:
            table = self._table
            table_n = self._table_n
            alpha = self._table_alpha
            tol = self._table_tol
            conf_max = self._conf_max
            initial = self._table_initial
            fb = self._fallback_regs
            static_est = self._static_est
            kind_mult = self._kind_mult
            min_conf = self._min_conf
            sleep_mode = self._sleep_mode
            th_full = self._th_full
            th_ret = self._th_ret
            drain = self._drain
            wake_full = self._wake_full
            wake_ret = self._wake_ret
            early_wakeup = self._early_wakeup
            fixed_margin = self._fixed_margin
            adaptive = self._adaptive
            policy = self._policy
            # Shared gating constants -> locals (one definition per value;
            # the oracle classes import the same names).
            pc_shift = TABLE_PC_SHIFT
            bank_mult = TABLE_BANK_MULT
            dev_frac = FALLBACK_DEV_FRACTION
            dev_bias = FALLBACK_DEV_BIAS
            g_alpha = GLOBAL_ALPHA
            aimd_inc = AIMD_INCREASE_CYCLES
            aimd_cap = float(AIMD_BIAS_CAP_CYCLES)
            aimd_decay = AIMD_DECAY
            aimd_idle = AIMD_IDLE_TOLERANCE_CYCLES
            # AIMD bias rides in a local; written back at flush.
            bias = policy._bias_cycles if adaptive else 0.0
            p_sleep = self._p_sleep
            p_sret = self._p_sret
            event_energy_fn = self._event_energy_fn
            ee_full = self._ee_full
            ee_ret = self._ee_ret
        process_stall = sim.controller.process_stall

        busy = trace.busy_cycles_for(self._issue_width)
        blocks, idxs, tags = trace.block_keys_for(l1_off, self._l1_mask)

        for addr, pc, iw, block, idx, tag, delta in zip(
                trace.addresses, trace.pcs, trace.write_flags,
                blocks, idxs, tags, busy):
            # The access issues after the busy run plus one cycle.
            delta += 1
            pend += delta
            cyc += delta

            # ---- hierarchy access (inline L1 level; the steady-state hit
            # path falls through with zero Python calls) ----
            if l1m_min <= cyc:
                if len(l1m) == 1:
                    # The tracked minimum IS the sole entry: expired.
                    l1m.clear()
                    l1m_min = _INF
                else:
                    for k in [k for k, f in l1m.items() if f <= cyc]:
                        del l1m[k]
                    l1m_min = min(l1m.values()) if l1m else _INF
            lset = l1_sets[idx]
            fill = l1m_get(block)
            if fill is None:
                dirty = lset.pop(tag, _MISSING)
                if dirty is not _MISSING:
                    # Pipelined L1 hit: no visible stall.
                    lset[tag] = True if iw and l1_wb else dirty
                    continue
                n_l1_miss += 1
                wb1 = None
                if len(lset) >= l1_ways:
                    vtag = next(iter(lset))
                    if lset.pop(vtag):
                        n_l1_wb += 1
                        wb1 = ((vtag << l1_idx_bits) | idx) << l1_off
                lset[tag] = True if iw and l1_wb else False
                # L1 MSHR structural hazard (already expired at cyc above).
                if len(l1m) >= l1_cap:
                    h_l1_stall += 1
                    wait1 = int(l1m_min) - cyc
                    issue = cyc + wait1
                else:
                    wait1 = 0
                    issue = cyc

                # ---- L2 (inline MemoryHierarchy._access_l2) ----
                l2_block = addr >> l2_off
                if l2m_min <= issue:
                    if len(l2m) == 1:
                        l2m.clear()
                        l2m_min = _INF
                    else:
                        for k in [k for k, f in l2m.items() if f <= issue]:
                            del l2m[k]
                        l2m_min = min(l2m.values()) if l2m else _INF
                fill2 = l2m_get(l2_block)
                l2_idx = l2_block & l2_mask
                l2_tag = l2_block >> l2_idx_bits
                l2set = l2_sets[l2_idx]
                n_l2_acc += 1
                dirty2 = l2set.pop(l2_tag, _MISSING)
                if fill2 is not None:
                    # L2 MSHR merge: residual fill latency; the tag access
                    # still runs for its side effects, victim writeback
                    # address discarded (oracle behaviour).
                    n_l2_merge += 1
                    if dirty2 is not _MISSING:
                        n_l2_hit += 1
                        l2set[l2_tag] = dirty2
                    else:
                        n_l2_miss += 1
                        if len(l2set) >= l2_ways:
                            if l2set.pop(next(iter(l2set))):
                                n_l2_wb += 1
                        l2set[l2_tag] = False
                    below = l2_lat + (fill2 - issue)
                    off = False
                elif dirty2 is not _MISSING:
                    # L2 hit (demand reads never dirty the line).
                    n_l2_hit += 1
                    l2set[l2_tag] = dirty2
                    below = l2_lat
                    off = False
                else:
                    # ---- L2 miss -> DRAM demand read (inline Dram.access,
                    # is_write=False) ----
                    n_l2_miss += 1
                    wb2 = None
                    if len(l2set) >= l2_ways:
                        vtag2 = next(iter(l2set))
                        if l2set.pop(vtag2):
                            n_l2_wb += 1
                            wb2 = ((vtag2 << l2_idx_bits) | l2_idx) << l2_off
                    l2set[l2_tag] = False
                    if len(l2m) >= l2_cap:
                        h_l2_stall += 1
                        wait2 = int(l2m_min) - issue
                        issue2 = issue + wait2
                    else:
                        wait2 = 0
                        issue2 = issue
                    now = c2ns(issue2, freq)
                    row_global = addr >> d_rowbits
                    bank = row_global % d_nbanks
                    row = row_global // d_nbanks
                    arrival = now + d_overhead_ns
                    if d_refresh_on:
                        phase = arrival % d_refresh_int_ns
                        if phase < d_refresh_lat_ns:
                            n_d_refresh += 1
                            arrival += d_refresh_lat_ns - phase
                    dbt = d_debt[bank]
                    if dbt > 0.0:
                        idle_gap = arrival - d_busy[bank]
                        if idle_gap < 0.0:
                            idle_gap = 0.0
                        drained = dbt if dbt < idle_gap else idle_gap
                        d_debt[bank] = dbt - drained
                        d_busy[bank] += drained
                    queue_wait = d_busy[bank] - arrival
                    if queue_wait < 0.0:
                        queue_wait = 0.0
                    start = arrival + queue_wait
                    open_row = d_open[bank]
                    if open_row == row:
                        n_d_hit += 1
                        kind: Optional[str] = ROW_HIT
                        array_lat = d_tcas_ns
                    elif open_row == -1:
                        n_d_closed += 1
                        kind = ROW_CLOSED
                        array_lat = d_trcd_ns + d_tcas_ns
                        d_act[bank] = start
                    else:
                        n_d_conflict += 1
                        kind = ROW_CONFLICT
                        ras_wait = (d_act[bank] + d_tras_ns) - start
                        if ras_wait < 0.0:
                            ras_wait = 0.0
                        array_lat = (ras_wait + d_trp_ns + d_trcd_ns
                                     + d_tcas_ns)
                        d_act[bank] = start + ras_wait + d_trp_ns
                    done = start + array_lat + d_qserv_ns
                    if d_row_open:
                        d_open[bank] = row
                        d_busy[bank] = done
                    else:
                        d_open[bank] = -1
                        d_busy[bank] = done + d_trp_ns
                    dlat = (done + d_bus_ns) - now
                    n_d_acc += 1
                    dh_counts[bisect(dh_edges, dlat)] += 1
                    dh_stats[0] += 1
                    dh_stats[1] += dlat
                    if dlat < dh_stats[2]:
                        dh_stats[2] = dlat
                    if dlat > dh_stats[3]:
                        dh_stats[3] = dlat
                    # seconds_to_cycles_ceil(dlat * NS, freq), inlined.
                    dcyc = int(ceil_(dlat * NS * freq - ceil_eps))
                    below = wait2 + l2_lat + dcyc
                    # Allocate the L2 miss (oracle expires at issue2 first).
                    if l2m_min <= issue2:
                        if len(l2m) == 1:
                            l2m.clear()
                            l2m_min = _INF
                        else:
                            for k in [k for k, f in l2m.items()
                                      if f <= issue2]:
                                del l2m[k]
                            l2m_min = min(l2m.values()) if l2m else _INF
                    fillc2 = issue + below
                    l2m[l2_block] = fillc2
                    if fillc2 < l2m_min:
                        l2m_min = fillc2
                    if wb2 is not None:
                        h_wb += 1
                        dram_write(wb2, issue2)
                    off = True

                total = wait1 + l1_lat + below
                # Allocate the L1 miss (oracle expires at `issue` first).
                if l1m_min <= issue:
                    if len(l1m) == 1:
                        l1m.clear()
                        l1m_min = _INF
                    else:
                        for k in [k for k, f in l1m.items() if f <= issue]:
                            del l1m[k]
                        l1m_min = min(l1m.values()) if l1m else _INF
                fillc = cyc + total
                l1m[block] = fillc
                if fillc < l1m_min:
                    l1m_min = fillc
                if wb1 is not None:
                    wb_l2(wb1, issue)
                stall = total - l1_lat
                if stall <= 0:
                    continue
            else:
                # L1 MSHR merge: residual latency; tag update runs for its
                # side effects, victim writeback address discarded.
                n_l1_merge += 1
                dirty = lset.pop(tag, _MISSING)
                if dirty is not _MISSING:
                    lset[tag] = True if iw and l1_wb else dirty
                else:
                    n_l1_miss += 1
                    if len(lset) >= l1_ways:
                        if lset.pop(next(iter(lset))):
                            n_l1_wb += 1
                    lset[tag] = True if iw and l1_wb else False
                stall = fill - cyc  # >= 1: post-expiry fills are future
                off = False

            # ---- stall handling ----
            # One BusySegment per stall-free run, as the oracle yields
            # (pend >= 1 here: the access cycle itself is pending).
            active_c += pend
            e_active += p_active * (pend / cfreq)
            pend = 0
            if not off:
                n_on += 1
                on_cyc += stall
                stall_c += stall
                e_stall += p_stall * (stall / cfreq)
                cyc += stall
                continue
            if mlp_on:
                gap = cyc - last_off
                if gap <= MLP_WINDOW_CYCLES:
                    reduced = int(round(stall * mlp_factor))
                    stall = reduced if reduced > 1 else 1
            n_off += 1
            off_cyc += stall

            # Off-chip: simulator-level stall histogram, then controller.
            hidx = bisect_right(sh_edges, stall)
            sh_counts[hidx] += 1
            sh_n += 1
            sh_sum += stall
            if stall < sh_min:
                sh_min = stall
            if stall > sh_max:
                sh_max = stall

            penalty = 0
            if mode_never:
                cc_ungated += 1
                stall_c += stall
                e_stall += p_stall * (stall / cfreq)
            elif mode_mapg:
                # --- MapgPolicy.decide, inlined ---
                kstr = kind or ""
                entry = table[((pc >> pc_shift) ^ (bank * bank_mult)
                               ^ kind_mult[kstr]) % table_n]
                if entry.valid:
                    pred_lat = int(round(entry.mean))
                    conf = entry.confidence_counter / conf_max
                else:
                    pred_lat = initial
                    conf = 0.0
                if conf >= min_conf:
                    est = pred_lat if pred_lat > 0 else 0
                    margin = int(round(bias)) if adaptive else fixed_margin
                    wake_est = est - margin
                    confident = True
                else:
                    regs = fb.get(kstr)
                    if regs is None:
                        regs = [float(static_est),
                                float(static_est) * dev_frac]
                        fb[kstr] = regs
                    mean_reg = int(round(regs[0]))
                    est = mean_reg if mean_reg > 0 else 0
                    wake_est = int(round(regs[0] - dev_bias * regs[1]))
                    confident = False
                if sleep_mode == "full":
                    gate_mode = "full" if est >= th_full else None
                elif sleep_mode == "retention":
                    gate_mode = "retention" if est >= th_ret else None
                else:  # dual
                    full_ok = est >= th_full
                    if full_ok and confident:
                        gate_mode = "full"
                    elif est >= th_ret:
                        gate_mode = "retention"
                    elif full_ok:
                        gate_mode = "full"
                    else:
                        gate_mode = None
                # --- controller._record_prediction, inlined ---
                if est > 0:
                    err = est - stall
                    if err < 0:
                        err = -err
                    pe_n += 1
                    d1 = err - pe_mean
                    pe_mean += d1 / pe_n
                    pe_m2 += d1 * (err - pe_mean)
                    rel = err / (stall if stall > 1 else 1)
                    pre_n += 1
                    d2 = rel - pre_mean
                    pre_mean += d2 / pre_n
                    pre_m2 += d2 * (rel - pre_mean)
                # --- outcome (resolve_wakeup inlined, token_delay 0) ---
                gated_plan = None
                if gate_mode is None:
                    cc_ungated += 1
                    stall_c += stall
                    e_stall += p_stall * (stall / cfreq)
                elif stall <= drain:
                    # Abort: data returned during drain.
                    cc_aborted += 1
                    drain_c += stall
                    e_drain += p_drain * (stall / cfreq)
                else:
                    wake_m = wake_full if gate_mode == "full" else wake_ret
                    if early_wakeup:
                        we = wake_est if wake_est > 0 else 0
                        offset = we - wake_m
                        if offset < drain:
                            offset = drain
                        trigger = offset if offset < stall else stall
                    else:
                        trigger = stall
                    sleep = trigger - drain
                    ready = trigger + wake_m
                    if ready >= stall:
                        penalty = ready - stall
                        idle = 0
                    else:
                        idle = stall - ready
                    if wake_m == 0 and sleep == 0:
                        # The controller's abort branch would mis-tile here
                        # (wake==sleep==0 but stall > drain); it raises.
                        raise SimulationError(
                            f"outcome intervals tile {drain} cycles, "
                            f"expected stall {stall} + penalty 0")
                    cc_gated += 1
                    if gate_mode == "full":
                        cc_gated_full += 1
                        ee = ee_full.get(sleep)
                        if ee is None:
                            ee = event_energy_fn(sleep, mode="full")
                            ee_full[sleep] = ee
                    else:
                        cc_gated_ret += 1
                        ee = ee_ret.get(sleep)
                        if ee is None:
                            ee = event_energy_fn(sleep, mode="retention")
                            ee_ret[sleep] = ee
                    cc_sleep_sum += sleep
                    cc_penalty_sum += penalty
                    if idle:
                        cc_idle_sum += idle
                    if drain:
                        drain_c += drain
                        e_drain += p_drain * (drain / cfreq)
                    if sleep:
                        if gate_mode == "retention":
                            sret_c += sleep
                            e_sret += p_sret * (sleep / cfreq)
                        else:
                            sleep_c += sleep
                            e_sleep += p_sleep * (sleep / cfreq)
                    if wake_m:
                        wake_c += wake_m
                        e_wake += p_wake * (wake_m / cfreq)
                    if idle:
                        stall_c += idle
                        e_stall += p_stall * (idle / cfreq)
                    if ee > 0.0:
                        ev_energy += ee
                        ev_count += 1
                    gated_plan = (penalty, idle)
                # --- policy.observe (predictor + fallback regs), inlined ---
                if entry.valid:
                    obs_err = stall - entry.mean
                    aerr = obs_err if obs_err >= 0 else -obs_err
                    bound = entry.mean if entry.mean > 1.0 else 1.0
                    if aerr <= tol * bound:
                        nc = entry.confidence_counter + 1
                        entry.confidence_counter = (nc if nc < conf_max
                                                    else conf_max)
                    else:
                        nc = entry.confidence_counter - 2
                        entry.confidence_counter = nc if nc > 0 else 0
                    entry.mean += alpha * (stall - entry.mean)
                else:
                    entry.mean = float(stall)
                    entry.confidence_counter = 1
                    entry.valid = True
                regs = fb.get(kstr)
                if regs is None:
                    regs = [float(static_est), float(static_est) * 0.25]
                    fb[kstr] = regs
                reg_err = stall - regs[0]
                regs[0] += g_alpha * reg_err
                abs_err = reg_err if reg_err >= 0 else -reg_err
                regs[1] += g_alpha * (abs_err - regs[1])
                # --- AdaptiveMapgPolicy.feedback, inlined ---
                if adaptive and gated_plan is not None:
                    if gated_plan[0] > 0:
                        nb = bias + aimd_inc
                        bias = nb if nb < aimd_cap else aimd_cap
                    elif gated_plan[1] > aimd_idle:
                        bias *= aimd_decay
            else:
                # Generic mode: the real controller handles the stall.
                outcome = process_stall(
                    pc=pc, bank=bank, actual_stall_cycles=stall,
                    start_cycle=cyc, kind=kind or "", elapsed_cycles=0)
                for state, icyc in outcome.intervals:
                    if state is PowerState.STALL:
                        stall_c += icyc
                        e_stall += p_stall * (icyc / cfreq)
                    elif state is PowerState.DRAIN:
                        drain_c += icyc
                        e_drain += p_drain * (icyc / cfreq)
                    elif state is PowerState.SLEEP:
                        sleep_c += icyc
                        e_sleep += self._p_sleep * (icyc / cfreq)
                    elif state is PowerState.SLEEP_RETENTION:
                        sret_c += icyc
                        e_sret += self._p_sret * (icyc / cfreq)
                    elif state is PowerState.WAKE:
                        wake_c += icyc
                        e_wake += p_wake * (icyc / cfreq)
                    elif state is PowerState.ACTIVE:
                        active_c += icyc
                        e_active += p_active * (icyc / cfreq)
                    else:
                        token_c += icyc
                        e_token += self._p_token * (icyc / cfreq)
                ee = outcome.event_energy_j
                if ee > 0.0:
                    ev_energy += ee
                    ev_count += 1
                penalty = outcome.penalty_cycles

            # Penalty feeds the core clock (add_delay) before the stall
            # advance in the oracle; the sum is order-independent.
            cyc += stall + penalty
            last_off = cyc

        # Trailing busy run after the last memory access.
        delta = busy[trace.num_memory_ops]
        if delta:
            pend += delta
            cyc += delta
        if pend:
            active_c += pend
            e_active += p_active * (pend / cfreq)

        # ---- flush measurements into the wrapped simulator ----
        self._l1m_min = l1m_min
        self._l2m_min = l2m_min
        sim._cycle = cyc
        sim.core._cycle = cyc
        sim.core._last_offchip_end = last_off

        # Merge loop-local counters into the shared slots (the rare-path
        # writeback methods already counted there); derivable totals are
        # reconstructed instead of counted per iteration: every access is
        # one hierarchy access and one L1 tag access, writes are the trace's
        # write flags, and hits are the non-misses.
        n_mem = trace.num_memory_ops
        mc[_H_ACC] += n_mem
        mc[_H_L1_MERGE] += n_l1_merge
        mc[_H_L1_STALL] += h_l1_stall
        mc[_H_L2_MERGE] += n_l2_merge
        mc[_H_L2_STALL] += h_l2_stall
        mc[_H_WB] += h_wb
        mc[_L1_ACC] += n_mem
        mc[_L1_WR] += trace.write_flags.count(1)
        mc[_L1_HIT] += n_mem - n_l1_miss
        mc[_L1_MISS] += n_l1_miss
        mc[_L1_WB] += n_l1_wb
        mc[_L2_ACC] += n_l2_acc
        mc[_L2_HIT] += n_l2_hit
        mc[_L2_MISS] += n_l2_miss
        mc[_L2_WB] += n_l2_wb
        mc[_D_ACC] += n_d_acc
        mc[_D_ROW_HIT] += n_d_hit
        mc[_D_ROW_CLOSED] += n_d_closed
        mc[_D_ROW_CONFLICT] += n_d_conflict
        mc[_D_REFRESH] += n_d_refresh

        ledger = sim.ledger
        ledger.add_batch(PowerState.ACTIVE, active_c, e_active)
        ledger.add_batch(PowerState.STALL, stall_c, e_stall)
        ledger.add_batch(PowerState.DRAIN, drain_c, e_drain)
        ledger.add_batch(PowerState.SLEEP, sleep_c, e_sleep)
        ledger.add_batch(PowerState.SLEEP_RETENTION, sret_c, e_sret)
        ledger.add_batch(PowerState.WAKE, wake_c, e_wake)
        ledger.add_batch(PowerState.TOKEN_WAIT, token_c, e_token)
        ledger.add_events_batch(ev_energy, ev_count)

        core_counters = sim.core.counters
        instr = trace.total_block_instructions + trace.num_memory_ops
        if instr:
            core_counters.add("instructions", instr)
        if trace.num_memory_ops:
            core_counters.add("memory_ops", trace.num_memory_ops)
        if n_off:
            core_counters.add("offchip_stalls", n_off)
            core_counters.add("offchip_stall_cycles", off_cyc)
        if n_on:
            core_counters.add("onchip_stalls", n_on)
            core_counters.add("onchip_stall_cycles", on_cyc)

        hierarchy = sim.hierarchy
        self._flush_counters(hierarchy.counters, (
            ("accesses", mc[_H_ACC]),
            ("l1_mshr_merges", mc[_H_L1_MERGE]),
            ("l1_mshr_stalls", mc[_H_L1_STALL]),
            ("l2_mshr_merges", mc[_H_L2_MERGE]),
            ("l2_mshr_stalls", mc[_H_L2_STALL]),
            ("writebacks", mc[_H_WB])))
        self._flush_counters(hierarchy.l1.counters, (
            ("accesses", mc[_L1_ACC]), ("writes", mc[_L1_WR]),
            ("hits", mc[_L1_HIT]), ("misses", mc[_L1_MISS]),
            ("writebacks", mc[_L1_WB])))
        self._flush_counters(hierarchy.l2.counters, (
            ("accesses", mc[_L2_ACC]), ("writes", mc[_L2_WR]),
            ("hits", mc[_L2_HIT]), ("misses", mc[_L2_MISS]),
            ("writebacks", mc[_L2_WB])))
        self._flush_counters(hierarchy.dram.counters, (
            ("accesses", mc[_D_ACC]), (ROW_HIT, mc[_D_ROW_HIT]),
            (ROW_CLOSED, mc[_D_ROW_CLOSED]),
            (ROW_CONFLICT, mc[_D_ROW_CONFLICT]),
            ("writes", mc[_D_WR]), ("buffered_writes", mc[_D_BUF_WR]),
            ("write_buffer_drains", mc[_D_DRAIN]),
            ("refresh_collisions", mc[_D_REFRESH])))

        # Histograms: transplant into the (fresh-per-region) real objects.
        sh = sim.stall_histogram
        sh._counts = sh_counts
        sh._n = sh_n
        sh._sum = sh_sum
        sh._min = sh_min
        sh._max = sh_max
        dh = hierarchy.dram.latency_histogram
        dh._counts = self._dh_counts
        dh._n = dh_stats[0]
        dh._sum = dh_stats[1]
        dh._min = dh_stats[2]
        dh._max = dh_stats[3]
        self._reset_dram_histogram()

        if not (mode_never or mode_mapg):
            return  # generic mode: the real controller kept its own books
        if mode_mapg and adaptive:
            policy._bias_cycles = bias
        controller = sim.controller
        self._flush_counters(controller.counters, (
            ("offchip_stalls", n_off), ("offchip_stall_cycles", off_cyc),
            ("ungated", cc_ungated), ("aborted", cc_aborted)))
        if cc_gated:
            controller.counters.add("gated", cc_gated)
            # sleep/penalty keys exist whenever a gate completed, even at 0.
            controller.counters.add("sleep_cycles", cc_sleep_sum)
            controller.counters.add("penalty_cycles", cc_penalty_sum)
        self._flush_counters(controller.counters, (
            ("gated_full", cc_gated_full), ("gated_retention", cc_gated_ret),
            ("early_wake_idle_cycles", cc_idle_sum)))
        pe = controller.prediction_error
        pe._count = pe_n
        pe._mean = pe_mean
        pe._m2 = pe_m2
        pre = controller.prediction_relative_error
        pre._count = pre_n
        pre._mean = pre_mean
        pre._m2 = pre_m2

    @staticmethod
    def _flush_counters(counters: Any,
                        pairs: Tuple[Tuple[str, int], ...]) -> None:
        """Add nonzero counts (a key exists iff the oracle ever added it)."""
        add = counters.add
        for name, count in pairs:
            if count:
                add(name, count)

    # ---- rare-path descents (victim writebacks only; the demand path is
    # fully inlined in _replay) --------------------------------------------------

    def _l2_tag_access(self, addr: int,
                       is_write: bool) -> Tuple[bool, Optional[int]]:
        """Inlined ``Cache.access`` on the L2 tag state."""
        mc = self._mc
        block = addr >> self._l2_off
        idx = block & self._l2_mask
        tag = block >> self._l2_idx_bits
        lset = self._l2_sets[idx]
        mc[_L2_ACC] += 1
        if is_write:
            mc[_L2_WR] += 1
        dirty = lset.pop(tag, _MISSING)
        if dirty is not _MISSING:
            mc[_L2_HIT] += 1
            lset[tag] = True if (is_write and self._l2_wb) else bool(dirty)
            return True, None
        mc[_L2_MISS] += 1
        wb = None
        if len(lset) >= self._l2_ways:
            vtag = next(iter(lset))
            if lset.pop(vtag):
                mc[_L2_WB] += 1
                wb = ((vtag << self._l2_idx_bits) | idx) << self._l2_off
        lset[tag] = bool(is_write and self._l2_wb)
        return False, wb

    def _wb_l2(self, addr: int, issue: int) -> None:
        """Inlined ``MemoryHierarchy._writeback(..., to_dram=False)``."""
        self._mc[_H_WB] += 1
        hit, wb = self._l2_tag_access(addr, True)
        if not hit and wb is not None:
            self._mc[_H_WB] += 1
            self._dram_write(wb, issue)

    def _dram_write(self, addr: int, at: int) -> None:
        """Inlined ``Dram.access`` for a writeback issued at cycle ``at``.

        The oracle's writeback path discards the returned latency, so only
        bank-state mutation, counters, and (for unbuffered writes) the
        latency histogram matter.  Histogram stats go through the shared
        ``_dh_counts`` / ``_dh_stats`` accumulators so observations from
        this rare path interleave with the replay loop's demand reads in
        oracle (chronological) order.
        """
        mc = self._mc
        now = cycles_to_ns(at, self._freq)
        row_global = addr >> self._d_rowbits
        bank = row_global % self._d_nbanks
        arrival = now + self._d_overhead_ns
        if self._d_refresh_lat_ns > 0.0:
            phase = arrival % self._d_refresh_int_ns
            if phase < self._d_refresh_lat_ns:
                mc[_D_REFRESH] += 1
                arrival += self._d_refresh_lat_ns - phase
        busy = self._d_busy
        debt = self._d_debt
        if debt[bank] > 0.0:
            idle_gap = arrival - busy[bank]
            if idle_gap < 0.0:
                idle_gap = 0.0
            drained = debt[bank] if debt[bank] < idle_gap else idle_gap
            debt[bank] -= drained
            busy[bank] += drained
        mc[_D_ACC] += 1
        mc[_D_WR] += 1
        if self._d_wbpb > 0:
            debt[bank] += self._d_wserv_ns
            mc[_D_BUF_WR] += 1
            if debt[bank] > self._d_wcap_ns:
                start = arrival if arrival > busy[bank] else busy[bank]
                busy[bank] = start + debt[bank]
                debt[bank] = 0.0
                mc[_D_DRAIN] += 1
            return
        queue_wait = busy[bank] - arrival
        if queue_wait < 0.0:
            queue_wait = 0.0
        start = arrival + queue_wait
        row = row_global // self._d_nbanks
        open_rows = self._d_open
        open_row = open_rows[bank]
        if open_row == row:
            mc[_D_ROW_HIT] += 1
            array_lat = self._d_tcas_ns
        elif open_row == -1:
            mc[_D_ROW_CLOSED] += 1
            array_lat = self._d_trcd_ns + self._d_tcas_ns
            self._d_act[bank] = start
        else:
            mc[_D_ROW_CONFLICT] += 1
            ras_wait = (self._d_act[bank] + self._d_tras_ns) - start
            if ras_wait < 0.0:
                ras_wait = 0.0
            array_lat = (ras_wait + self._d_trp_ns + self._d_trcd_ns
                         + self._d_tcas_ns)
            self._d_act[bank] = start + ras_wait + self._d_trp_ns
        done = start + array_lat + self._d_qserv_ns
        if self._d_row_open:
            open_rows[bank] = row
            busy[bank] = done
        else:
            open_rows[bank] = -1
            busy[bank] = done + self._d_trp_ns
        dlat = (done + self._d_bus_ns) - now
        stats = self._dh_stats
        self._dh_counts[bisect_right(self._dh_edges, dlat)] += 1
        stats[0] += 1
        stats[1] += dlat
        if dlat < stats[2]:
            stats[2] = dlat
        if dlat > stats[3]:
            stats[3] = dlat
