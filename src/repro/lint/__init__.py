"""mapglint — project-specific static analysis for the MAPG reproduction.

The Python runtime never checks the invariants this codebase's credibility
rests on: cycle-ints and SI-floats must only mix inside ``repro.units``,
every power-gate transition must be legal per ``repro.core.state``, and a
simulation must be bit-reproducible across runs.  ``repro.lint`` walks the
AST of the source tree and enforces those conventions statically:

* **UNIT01** — unit safety: no arithmetic mixing cycle-suffixed and
  SI-suffixed identifiers outside ``repro/units.py``; no raw scale
  literals (``1e-9`` …) where the ``units`` constants belong.
* **DET01** — determinism: no module-level ``random``/``numpy.random``
  calls, no wall-clock reads in simulation code, no iteration over sets
  in ``repro/sim`` and ``repro/core``.
* **FSM01** — FSM legality: every ``(PgState.X, PgState.Y)`` pair written
  anywhere in the codebase must be a legal transition of the power-gate
  state machine.
* **FLT01** — float equality: no ``==``/``!=`` between float-typed
  expressions in energy/power code.

Run it as ``python -m repro.lint [paths]`` or ``python -m repro lint``.
Findings can be suppressed per line with ``# mapglint: disable=RULE`` or
grandfathered through a baseline file (see ``docs/LINTING.md``).
"""

from __future__ import annotations

from repro.lint.base import LintRule, all_rules, get_rule, register_rule
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity, format_json, format_text
from repro.lint.runner import LintReport, lint_files, lint_paths

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "LintRule",
    "Severity",
    "all_rules",
    "format_json",
    "format_text",
    "get_rule",
    "lint_files",
    "lint_paths",
    "register_rule",
]
