"""mapglint — project-specific static analysis for the MAPG reproduction.

The Python runtime never checks the invariants this codebase's credibility
rests on: cycle-ints and SI-floats must only mix inside ``repro.units``,
every power-gate transition must be legal per ``repro.core.state``, and a
simulation must be bit-reproducible across runs.  ``repro.lint`` enforces
those conventions statically, in two phases: per-file AST rules, then
whole-program rules over a project symbol table and call graph with
dimension inference (see ``repro.lint.project``).

Per-file rules:

* **UNIT01** — unit safety: no arithmetic mixing cycle-suffixed and
  SI-suffixed identifiers outside ``repro/units.py``; no raw scale
  literals (``1e-9`` …) where the ``units`` constants belong.
* **DET01** — determinism: no module-level ``random``/``numpy.random``
  calls, no wall-clock reads in simulation code, no iteration over sets
  in ``repro/sim`` and ``repro/core``.
* **FSM01** — FSM legality: every ``(PgState.X, PgState.Y)`` pair written
  anywhere in the codebase must be a legal transition of the power-gate
  state machine.
* **FLT01** — float equality: no ``==``/``!=`` between float-typed
  expressions in energy/power code.

Whole-program rules:

* **UNIT02** — interprocedural unit safety: argument/parameter and
  return/use dimensions must agree across call boundaries.
* **LEDGER01** — energy-ledger conservation: ``EnergyLedger`` mutations
  must charge proven joules/cycles with a known component tag, through
  the ledger API only.
* **CFG01** — config deadness: ``SystemConfig``-tree dataclass fields
  must be read somewhere in src and numeric fields range-checked in
  ``__post_init__``.
* **EVT01** — event-queue misuse: scheduling times must be cycle counts
  and heap entries must carry a deterministic tie-break.
* **CACHE01 / PURE01 / OBS01 / PAR01** — effect rules over the inferred
  effect closure: cache-key soundness, pool-worker purity, observability
  neutrality, and picklable pool payloads.
* **CONC01–CONC04** — concurrency safety over the extracted concurrency
  model: shared-state races (with the ``# mapglint: guarded-by=<lock>``
  pragma), lock discipline and project-wide lock order, fork/spawn
  hygiene for pool payloads, and atomic temp-file + ``os.replace``
  publication of digest-keyed cache entries.

Run it as ``python -m repro.lint [paths]`` or ``python -m repro lint``.
Per-file results are cached under ``.mapglint-cache/`` and recomputed in
parallel with ``--jobs``; ``--format sarif`` emits SARIF 2.1.0 for code
scanning, and ``--fix`` applies the mechanical rewrites.  Findings can be
suppressed per line with ``# mapglint: disable=RULE`` or grandfathered
through a baseline file (see ``docs/LINTING.md``).
"""

from __future__ import annotations

from repro.lint.base import (
    LintRule, ProjectRule, all_project_rules, all_rule_ids, all_rules,
    get_rule, register_project_rule, register_rule)
from repro.lint.baseline import Baseline
from repro.lint.cache import ResultCache, ruleset_version
from repro.lint.findings import Finding, Severity, format_json, format_text
from repro.lint.fixes import fix_files, fix_source
from repro.lint.runner import (
    LintReport, lint_files, lint_paths, run_project_rules)
from repro.lint.sarif import format_sarif, to_sarif

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "LintRule",
    "ProjectRule",
    "ResultCache",
    "Severity",
    "all_project_rules",
    "all_rule_ids",
    "all_rules",
    "fix_files",
    "fix_source",
    "format_json",
    "format_sarif",
    "format_text",
    "get_rule",
    "lint_files",
    "lint_paths",
    "register_project_rule",
    "register_rule",
    "ruleset_version",
    "run_project_rules",
    "to_sarif",
]
