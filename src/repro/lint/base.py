"""Rule framework: file context, visitor base class, and the rule registry.

A rule is an :class:`ast.NodeVisitor` subclass with a ``rule_id``; it emits
:class:`~repro.lint.findings.Finding` objects through :meth:`LintRule.report`.
Per-line suppression (``# mapglint: disable=RULE``) is applied here so no
rule has to know about it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, List, Optional, Tuple, Type

from repro.lint.findings import Finding, Severity

_DISABLE_RE = re.compile(r"#\s*mapglint:\s*disable=([A-Za-z0-9_,\s]+)")


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Per-line ``# mapglint: disable=RULE[,RULE…]`` pragmas of a module.

    Shared by :class:`FileContext` (per-file rules) and the project
    summaries (interprocedural rules), so both suppression paths agree.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DISABLE_RE.search(line)
        if match:
            rules = frozenset(
                part.strip().upper()
                for part in match.group(1).split(",") if part.strip())
            suppressions[lineno] = rules
    return suppressions


class FileContext:
    """Everything a rule needs to know about the file under analysis."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        # Normalized, forward-slash path used for scoping and baselines.
        self.norm_path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._suppressions = parse_suppressions(source)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self._suppressions.get(line)
        if rules is None:
            return False
        return rule_id.upper() in rules or "ALL" in rules

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def in_package(self, *fragments: str) -> bool:
        """Whether this file lives under one of the package directories.

        ``fragments`` are slash-separated path pieces such as
        ``"repro/sim"``; a file matches if the fragment appears as a
        directory component of its normalized path.
        """
        for fragment in fragments:
            if f"/{fragment}/" in f"/{self.norm_path}":
                return True
        return False

    def is_module(self, dotted_tail: str) -> bool:
        """Whether this file *is* the module whose path ends in ``dotted_tail``.

        ``dotted_tail`` is given as a path suffix, e.g. ``repro/units.py``.
        """
        return self.norm_path.endswith("/" + dotted_tail) or \
            self.norm_path == dotted_tail


class LintRule(ast.NodeVisitor):
    """Base class for mapglint rules.

    Subclasses set ``rule_id``, ``summary``, and ``default_severity``, then
    override ``visit_*`` methods and call :meth:`report` on violations.
    ``check`` returns the findings for one file, already filtered through
    per-line suppressions.
    """

    rule_id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR

    def __init__(self) -> None:
        self.context: Optional[FileContext] = None
        self._findings: List[Finding] = []

    # -- hooks -------------------------------------------------------------

    def applies_to(self, context: FileContext) -> bool:
        """Override to scope a rule to (or away from) parts of the tree."""
        return True

    def check(self, context: FileContext) -> List[Finding]:
        """Run the rule over one parsed file and return its findings."""
        if not self.applies_to(context):
            return []
        self.context = context
        self._findings = []
        self.visit(context.tree)
        # Nested expressions can trigger the same finding twice (e.g. a
        # mixed BinOp inside a mixed BinOp); report each once.
        findings = [f for f in dict.fromkeys(self._findings)
                    if not context.is_suppressed(f.rule_id, f.line)]
        self.context = None
        return findings

    def report(self, node: ast.AST, message: str,
               severity: Optional[Severity] = None) -> None:
        assert self.context is not None
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        self._findings.append(Finding(
            path=self.context.norm_path,
            line=line,
            column=column,
            rule_id=self.rule_id,
            severity=severity if severity is not None else self.default_severity,
            message=message,
            line_text=self.context.line_text(line)))


class ProjectRule:
    """Base class for whole-program ("project") rules.

    Unlike :class:`LintRule`, a project rule never sees an AST: it runs
    once per lint invocation against the merged
    :class:`~repro.lint.project.graph.ProjectModel` (phase 2) and reports
    findings anywhere in the project.  Per-line ``# mapglint: disable``
    suppressions are applied here in :meth:`check_project` — the exact
    filter :meth:`LintRule.check` applies for file rules — so every
    invocation path (the runner, direct rule calls, ``--rules`` subsets)
    honors them identically; the baseline is applied by the runner.
    """

    rule_id: str = ""
    summary: str = ""
    default_severity: Severity = Severity.ERROR

    def __init__(self) -> None:
        self._findings: List[Finding] = []

    def check_project(self, model: "object") -> List[Finding]:
        """Run the rule over the whole-program model; returns findings."""
        self._findings = []
        self.run(model)
        is_suppressed = getattr(model, "is_suppressed", None)
        findings = list(dict.fromkeys(self._findings))
        if is_suppressed is not None:
            findings = [f for f in findings
                        if not is_suppressed(f.path, f.rule_id, f.line)]
        return findings

    def run(self, model: "object") -> None:
        """Override: inspect the model and call :meth:`report`."""
        raise NotImplementedError

    def report(self, path: str, line: int, column: int, message: str,
               line_text: str = "",
               severity: Optional[Severity] = None) -> None:
        self._findings.append(Finding(
            path=path, line=line, column=column, rule_id=self.rule_id,
            severity=severity if severity is not None else self.default_severity,
            message=message, line_text=line_text))


# Both registries are content-pure memos of the imported rule modules
# (fully determined by the lint package source, which the ruleset digest
# hashes), hence the declared-cache pragmas: reading them in a pool
# worker cannot make output depend on scheduling.
_REGISTRY: Dict[str, Type[LintRule]] = {}  # mapglint: declared-cache
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}  # mapglint: declared-cache


def register_rule(rule_class: Type[LintRule]) -> Type[LintRule]:
    """Class decorator adding a per-file rule to the global registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY or rule_class.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def register_project_rule(rule_class: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_class.rule_id:
        raise ValueError(f"{rule_class.__name__} has no rule_id")
    if rule_class.rule_id in _REGISTRY or rule_class.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.rule_id}")
    _PROJECT_REGISTRY[rule_class.rule_id] = rule_class
    return rule_class


def all_rules() -> Tuple[Type[LintRule], ...]:
    """Every registered per-file rule class, ordered by rule id."""
    import repro.lint.rules  # noqa: F401  (registers the built-in rules)

    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


def all_project_rules() -> Tuple[Type[ProjectRule], ...]:
    """Every registered whole-program rule class, ordered by rule id."""
    import repro.lint.rules  # noqa: F401

    return tuple(_PROJECT_REGISTRY[rule_id]
                 for rule_id in sorted(_PROJECT_REGISTRY))


def all_rule_ids() -> Tuple[str, ...]:
    """Ids of every registered rule, file-level and project-level."""
    import repro.lint.rules  # noqa: F401

    return tuple(sorted(set(_REGISTRY) | set(_PROJECT_REGISTRY)))


def get_rule(rule_id: str) -> "Type[LintRule] | Type[ProjectRule]":
    """Look up one registered rule class by its id (e.g. ``"UNIT01"``)."""
    import repro.lint.rules  # noqa: F401

    try:
        return _REGISTRY.get(rule_id) or _PROJECT_REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(set(_REGISTRY) | set(_PROJECT_REGISTRY)))
        raise KeyError(f"unknown rule id {rule_id!r}; "
                       f"known: {known}") from None
