"""Baseline files: grandfathering pre-existing findings.

A baseline is a JSON file listing finding fingerprints — ``(path, rule,
stripped source line)`` — that are accepted for now.  A lint run loaded
with a baseline reports only *new* findings; each baseline entry absorbs
at most as many findings as its recorded count, so introducing a second
copy of a grandfathered violation still fails.  The runner also reports
*stale* entries (baselined findings that no longer occur) so the file can
be shrunk as debt is paid down.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigError
from repro.lint.findings import Finding

_Fingerprint = Tuple[str, str, str]


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, counts: "Dict[_Fingerprint, int] | None" = None) -> None:
        self._counts: Dict[_Fingerprint, int] = dict(counts or {})

    def __len__(self) -> int:
        return sum(self._counts.values())

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(dict(Counter(f.fingerprint() for f in findings)))

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigError(f"malformed baseline file {path}: "
                              f"expected an object with an 'entries' list")
        counts: Dict[_Fingerprint, int] = {}
        for entry in payload["entries"]:
            try:
                fingerprint = (entry["path"], entry["rule"],
                               entry["line_text"])
                count = int(entry.get("count", 1))
            except (TypeError, KeyError) as exc:
                raise ConfigError(
                    f"malformed baseline entry in {path}: {entry!r}") from exc
            counts[fingerprint] = counts.get(fingerprint, 0) + count
        return cls(counts)

    def save(self, path: str) -> None:
        entries = [
            {"path": fp[0], "rule": fp[1], "line_text": fp[2], "count": count}
            for fp, count in sorted(self._counts.items())
        ]
        payload = {"version": 1, "entries": entries}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def filter(self, findings: Iterable[Finding]
               ) -> "Tuple[List[Finding], List[_Fingerprint]]":
        """Split findings into (new, stale-baseline-entries).

        ``new`` is every finding not absorbed by the baseline;
        ``stale`` is every baseline entry (repeated per remaining count)
        that absorbed nothing.
        """
        remaining = dict(self._counts)
        new: List[Finding] = []
        for finding in sorted(findings):
            fingerprint = finding.fingerprint()
            if remaining.get(fingerprint, 0) > 0:
                remaining[fingerprint] -= 1
            else:
                new.append(finding)
        stale: List[_Fingerprint] = []
        for fingerprint, count in sorted(remaining.items()):
            stale.extend([fingerprint] * count)
        return new, stale
