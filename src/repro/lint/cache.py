"""Per-file result cache for warm lint runs.

The expensive part of a lint run is phase 1: parsing every file and
running the per-file rules plus the dimension inference that produces its
:class:`~repro.lint.project.summary.ModuleSummary`.  Both depend only on
the file's *content* and on the linter itself, so they are cached under
``.mapglint-cache/`` keyed by::

    sha256(ruleset_version || summary_schema || effect_schema || file bytes)

where ``ruleset_version`` is a hash over the source of the entire
``repro.lint`` package — editing any rule, the inference engine, or this
module invalidates every entry at once, with no manual version bump to
forget.  A warm run therefore deserializes findings and summaries straight
from disk and goes directly to phase 2 (the whole-program rules, which are
cheap) without parsing anything.

Entries store the findings of *all* file rules; ``--rules`` subsetting is
applied at read time so switching rule selections never misses the cache.
Writes are atomic (temp file + ``os.replace``) so concurrent lint runs
can share a cache directory safely; a corrupt or unreadable entry is
treated as a miss.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.project.effects import EFFECT_SCHEMA
from repro.lint.project.summary import SUMMARY_SCHEMA, ModuleSummary
from repro.lint.project.twin import TWIN_SCHEMA

DEFAULT_CACHE_DIR = ".mapglint-cache"

_ruleset_version: Optional[str] = None


def ruleset_version() -> str:
    """Hash of the ``repro.lint`` package source (computed once per process)."""
    global _ruleset_version
    if _ruleset_version is None:
        import repro.lint

        package_dir = os.path.dirname(os.path.abspath(repro.lint.__file__))
        digest = hashlib.sha256()
        digest.update(f"schema={SUMMARY_SCHEMA};".encode("utf-8"))
        # The effect-summary schema is folded in separately: a change to
        # the phase-1 effect layout must orphan every cached summary even
        # if the package source hash were ever to collide.
        digest.update(f"effects={EFFECT_SCHEMA};".encode("utf-8"))
        # Likewise for the twin-footprint layout feeding TWIN01–TWIN04.
        digest.update(f"twin={TWIN_SCHEMA};".encode("utf-8"))
        for root, dirs, names in os.walk(package_dir):
            dirs[:] = sorted(d for d in dirs if d != "__pycache__")
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                digest.update(os.path.relpath(full, package_dir).encode())
                with open(full, "rb") as handle:
                    digest.update(handle.read())
        _ruleset_version = digest.hexdigest()[:20]
    return _ruleset_version


class ResultCache:
    """Content-addressed store of per-file phase-1 results."""

    def __init__(self, cache_dir: str = DEFAULT_CACHE_DIR) -> None:
        self.cache_dir = cache_dir
        self.hits = 0
        self.misses = 0

    def key(self, source_bytes: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(ruleset_version().encode("utf-8"))
        digest.update(b";")
        digest.update(source_bytes)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.cache_dir, key[:2], key + ".pkl")

    def load(self, key: str  # mapglint: error-boundary
             ) -> Optional[Tuple[List[Finding], ModuleSummary]]:
        """Cached ``(findings, summary)`` for a key, or ``None`` on a miss."""
        try:
            with open(self._entry_path(key), "rb") as handle:
                entry = pickle.load(handle)
            findings = entry["findings"]
            summary = entry["summary"]
            if not isinstance(summary, ModuleSummary):
                raise TypeError("stale cache entry")
        except (OSError, pickle.PickleError, KeyError, TypeError,
                EOFError, AttributeError, ImportError):
            self.misses += 1
            return None
        self.hits += 1
        return findings, summary

    def store(self, key: str, findings: List[Finding],
              summary: ModuleSummary) -> None:
        """Atomically persist one phase-1 result; failures are ignored.

        Concurrent lint invocations share the cache directory by design:
        entries are content-addressed, so when two runs race on one key,
        whichever ``os.replace`` lands last wins with identical bytes.
        The temp name carries pid *and* thread ident so no two writers
        can ever interleave into one temp file, and a temp file that
        vanishes before the replace (a concurrent cleaner, an unlinked
        tree) means some writer already published — a no-op, not an
        error.
        """
        entry_path = self._entry_path(key)
        tmp_path = (f"{entry_path}.{os.getpid()}."
                    f"{threading.get_ident()}.tmp")
        try:
            self._ensure_dir(os.path.dirname(entry_path))
            with open(tmp_path, "wb") as handle:
                pickle.dump({"findings": findings, "summary": summary},
                            handle, protocol=pickle.HIGHEST_PROTOCOL)
        except OSError:
            self._discard(tmp_path)
            return
        try:
            os.replace(tmp_path, entry_path)
        except FileNotFoundError:
            # The temp file vanished (concurrent cleaner, unlinked tree):
            # some writer already published the identical entry.
            self._discard(tmp_path)
        except OSError:
            self._discard(tmp_path)

    @staticmethod
    def _discard(tmp_path: str) -> None:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass

    def _ensure_dir(self, directory: str) -> None:
        os.makedirs(directory, exist_ok=True)
        # Keep the cache out of version control even when the repo's own
        # .gitignore doesn't mention it (same trick pytest uses).
        marker = os.path.join(self.cache_dir, ".gitignore")
        if not os.path.exists(marker):
            try:
                with open(marker, "w", encoding="utf-8") as handle:
                    handle.write("*\n")
            except OSError:
                pass

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}
