"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes: 0 = clean (all findings baselined or none), 1 = findings,
2 = usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.lint.base import all_project_rules, all_rule_ids, all_rules
from repro.lint.baseline import Baseline
from repro.lint.cache import DEFAULT_CACHE_DIR, ResultCache
from repro.lint.findings import format_json, format_text
from repro.lint.fixes import fix_files, fix_twin_constants
from repro.lint.runner import collect_files, lint_files
from repro.lint.sarif import format_sarif


def build_parser() -> argparse.ArgumentParser:
    """Construct the mapglint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="mapglint: MAPG-specific static analysis "
                    "(unit safety, determinism, FSM legality, float "
                    "equality, and whole-program unit/ledger/config/event/"
                    "effect/concurrency checks)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--rules", metavar="IDS", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print one rule's documentation with a "
                             "minimal bad/good example and exit")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for per-file analysis "
                             "(default: 1)")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (float equality -> "
                             "math.isclose, raw scale literals -> "
                             "repro.units constants, duplicated engine "
                             "constants -> their shared definition) "
                             "before linting")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the per-file result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        default=DEFAULT_CACHE_DIR,
                        help=f"result cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.explain:
        from repro.lint.explain import explain_rule

        try:
            print(explain_rule(args.explain))
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        return 0

    if args.list_rules:
        for rule_class in list(all_rules()) + list(all_project_rules()):
            scope = "project" if rule_class in all_project_rules() else "file"
            print(f"{rule_class.rule_id}  "
                  f"[{rule_class.default_severity.value}/{scope}]"
                  f"  {rule_class.summary}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip().upper() for part in args.rules.split(",")
                    if part.strip()]
        known = set(all_rule_ids())
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (ReproError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        files = collect_files(args.paths)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix:
        changed = fix_files(files)
        for path, count in fix_twin_constants(files).items():
            changed[path] = changed.get(path, 0) + count
        total = sum(changed.values())
        for path in sorted(changed):
            print(f"fixed: {path} ({changed[path]} edit(s))")
        print(f"--fix applied {total} edit(s) in {len(changed)} file(s)")

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    try:
        report = lint_files(files, baseline=baseline, rule_ids=rule_ids,
                            jobs=args.jobs, cache=cache)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    if args.format == "json":
        print(format_json(report.all_findings))
    elif args.format == "sarif":
        print(format_sarif(report.all_findings, rule_ids=rule_ids))
    else:
        if report.all_findings:
            print(format_text(report.all_findings))
        for path, rule, line_text in report.stale_baseline:
            print(f"note: stale baseline entry {path} [{rule}]: "
                  f"{line_text.strip()!r} no longer occurs", file=sys.stderr)
        summary = (f"{len(report.all_findings)} finding(s) in "
                   f"{report.files_checked} file(s)")
        if cache is not None:
            summary += (f" [cache: {report.cache_hits} hit(s), "
                        f"{report.cache_misses} miss(es)]")
        if baseline is not None:
            summary += f" (baseline: {len(baseline)} grandfathered)"
        print(summary if report.all_findings else f"clean: {summary}")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
