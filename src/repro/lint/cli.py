"""Command-line front end: ``python -m repro.lint [paths]``.

Exit codes: 0 = clean (all findings baselined or none), 1 = findings,
2 = usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.lint.base import all_rules
from repro.lint.baseline import Baseline
from repro.lint.findings import format_json, format_text
from repro.lint.runner import lint_paths


def build_parser() -> argparse.ArgumentParser:
    """Construct the mapglint argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="mapglint: MAPG-specific static analysis "
                    "(unit safety, determinism, FSM legality, float equality)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings")
    parser.add_argument("--write-baseline", metavar="FILE", default=None,
                        help="write current findings to FILE and exit 0")
    parser.add_argument("--rules", metavar="IDS", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_class in all_rules():
            print(f"{rule_class.rule_id}  [{rule_class.default_severity.value}]"
                  f"  {rule_class.summary}")
        return 0

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip().upper() for part in args.rules.split(",")
                    if part.strip()]
        known = {rule_class.rule_id for rule_class in all_rules()}
        unknown = sorted(set(rule_ids) - known)
        if unknown:
            print(f"error: unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2

    baseline = None
    if args.baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(args.baseline)
        except (ReproError, OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    try:
        report = lint_paths(args.paths, baseline=baseline, rule_ids=rule_ids)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(args.write_baseline)
        print(f"wrote {len(report.findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    if args.format == "json":
        print(format_json(report.all_findings))
    else:
        if report.all_findings:
            print(format_text(report.all_findings))
        for path, rule, line_text in report.stale_baseline:
            print(f"note: stale baseline entry {path} [{rule}]: "
                  f"{line_text.strip()!r} no longer occurs", file=sys.stderr)
        summary = (f"{len(report.all_findings)} finding(s) in "
                   f"{report.files_checked} file(s)")
        if baseline is not None:
            summary += f" (baseline: {len(baseline)} grandfathered)"
        print(summary if report.all_findings else f"clean: {summary}")
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
