"""``repro lint --explain RULE``: rule documentation with examples.

Each registered rule gets a short prose explanation straight from its
class docstring plus a minimal *bad*/*good* example pair kept here, so
the CLI can answer "what is this finding and how do I fix it" without a
trip to docs/LINTING.md.
"""

from __future__ import annotations

import inspect
import textwrap
from typing import Dict, Tuple

from repro.lint.base import _PROJECT_REGISTRY, get_rule

#: rule_id -> (bad example, good example).  Examples are deliberately
#: minimal: one screen, one defect, one fix.
_EXAMPLES: Dict[str, Tuple[str, str]] = {
    "UNIT01": (
        "stall_ns = wakeup_cycles * 1.25  # mixes cycles with SI units",
        "stall_cycles = wakeup_cycles + WAKEUP_LATENCY_CYCLES",
    ),
    "UNIT02": (
        "charge(ledger, idle_ns)        # callee expects cycles",
        "charge(ledger, idle_cycles)    # dimension agrees across the call",
    ),
    "DET01": (
        "jitter = random.random()       # global RNG in simulation code",
        "jitter = self.rng.random()     # seeded per-run Random instance",
    ),
    "FSM01": (
        "self.state = PgState.OFF       # skips the DRAIN transition",
        "self.transition(PgState.DRAIN) # legal edge, checked by the FSM",
    ),
    "FLT01": (
        "if energy_pj == budget_pj: ...",
        "if math.isclose(energy_pj, budget_pj, rel_tol=1e-9): ...",
    ),
    "LEDGER01": (
        "ledger.total_pj += 3.2          # direct mutation, no component",
        "ledger.charge('bank', active_pj(cycles))  # tagged, derived",
    ),
    "CFG01": (
        "retention_uw: float = 0.0       # never read, never range-checked",
        "retention_uw: float = 0.0  # read by idle_power(); validated "
        "in __post_init__",
    ),
    "EVT01": (
        "heapq.heappush(queue, (time_ns, event))   # SI time, ties unstable",
        "heapq.heappush(queue, (time_cycles, seq, event))  # cycle time + "
        "deterministic tie-break",
    ),
    "CACHE01": (
        "def gate_mode():\n"
        "    return os.environ.get('MAPG_GATE', 'fixed')  # invisible to "
        "the cache key",
        "def gate_mode(config):\n"
        "    return config.gate_mode  # threaded through JobSpec, hashed "
        "into the key",
    ),
    "PURE01": (
        "_SEEN = []\n"
        "def _worker(item):\n"
        "    _SEEN.append(item)      # accumulates across pool tasks\n"
        "    return item",
        "def _worker(item):\n"
        "    return item             # everything flows through the payload",
    ),
    "OBS01": (
        "recorder.instant('core0', 'tick', now)   # unguarded emission",
        "if recorder.enabled:\n"
        "    recorder.instant('core0', 'tick', now)",
    ),
    "PAR01": (
        "pool.map(lambda x: x + 1, items)   # lambdas do not pickle",
        "pool.map(_scale_item, items)       # module-level function",
    ),
    "CONC01": (
        "_STATE = {}  # mapglint: guarded-by=_LOCK\n"
        "def _watcher():\n"
        "    _STATE['tick'] += 1     # guarded field, no lock held",
        "_STATE = {}  # mapglint: guarded-by=_LOCK\n"
        "def _watcher():\n"
        "    with _LOCK:\n"
        "        _STATE['tick'] += 1  # binding lock held at the write",
    ),
    "CONC02": (
        "lock.acquire()\n"
        "do_work()                   # an exception leaks the lock\n"
        "lock.release()",
        "with lock:\n"
        "    do_work()               # released on every exit edge",
    ),
    "CONC03": (
        "with state_lock:\n"
        "    pool.map(_worker, cells)   # submission under a held lock",
        "pool.map(_worker, cells)\n"
        "with state_lock:\n"
        "    merge(results)             # lock around the merge only",
    ),
    "CONC04": (
        "with open(entry_path, 'wb') as fh:\n"
        "    fh.write(payload)       # readers can see the torn entry",
        "tmp = f'{entry_path}.{os.getpid()}.tmp'\n"
        "with open(tmp, 'wb') as fh:\n"
        "    fh.write(payload)\n"
        "os.replace(tmp, entry_path)  # atomic publication",
    ),
    "ERR01": (
        "def _worker(item):\n"
        "    return simulate(item)   # ConfigError escapes, pool join dies",
        "def _worker(item):  # mapglint: error-boundary\n"
        "    try:\n"
        "        return key(item), simulate(item)\n"
        "    except Exception as exc:\n"
        "        return key(item), {'__mapg_error__': str(exc)}",
    ),
    "ERR02": (
        "try:\n"
        "    entry = json.load(handle)\n"
        "except Exception:\n"
        "    pass                    # every future bug becomes silence",
        "try:\n"
        "    entry = json.load(handle)\n"
        "except (OSError, ValueError) as exc:\n"
        "    log.warning('cache entry unreadable: %s', exc)\n"
        "    return None",
    ),
    "ERR03": (
        "self._registry[name] = entry   # registered...\n"
        "validate(entry)                # ...then the raise unwinds",
        "validate(entry)                # raise first\n"
        "self._registry[name] = entry   # mutate last",
    ),
    "ERR04": (
        "raise ValueError('percentile must be in [0, 100]')  # breaks "
        "the errors.py contract",
        "raise StatsError('percentile must be in [0, 100]')  # "
        "StatsError(ReproError, ValueError) keeps old callers working",
    ),
    "RES01": (
        "pool = context.Pool(workers)\n"
        "merge(pool.map(_worker, cells))\n"
        "pool.terminate()            # skipped when map() raises",
        "with context.Pool(workers) as pool:\n"
        "    merge(pool.map(_worker, cells))  # released on every exit edge",
    ),
    "TWIN01": (
        "# oracle: Dram.access honors config.dram.row_policy\n"
        "# fast kernel: never reads it, never refuses it -> sweeps "
        "diverge silently",
        "if config.dram.row_policy != 'open':\n"
        "    reasons.append('closed-row DRAM')   # refused, visibly, or\n"
        "row_open = config.dram.row_policy == 'open'  # read by the kernel",
    ),
    "TWIN02": (
        "# oracle: controller.counters.add('token_delays', 1)\n"
        "# fast flush: never writes 'token_delays' -> fast results drop "
        "the column",
        "self._flush_counters(controller.counters, (\n"
        "    ('token_delays', n_delay),))   # every oracle key has a "
        "fast writer",
    ),
    "TWIN03": (
        "# engine helper lives in repro/lint/shared.py, but\n"
        "_EXCLUDED_DIRS = ('lint', '__pycache__')  # digest never sees it",
        "# engine code lives under a digested directory, so editing it\n"
        "# orphans every cached result (repro/sim/shared.py)",
    ),
    "TWIN04": (
        "bias = min(96.0, bias + 4)      # kernel literal...\n"
        "_BIAS_CAP_CYCLES = 96           # ...twin literal in the policy",
        "from repro.core.gating_constants import AIMD_BIAS_CAP_CYCLES\n"
        "# one definition, imported by both engines",
    ),
}


def explain_rule(rule_id: str) -> str:
    """Human-readable explanation of one rule: doc plus bad/good example.

    Raises :class:`KeyError` (with the known-rule list) for unknown ids,
    exactly as :func:`repro.lint.base.get_rule` does.
    """
    rule_id = rule_id.strip().upper()
    rule_class = get_rule(rule_id)
    scope = "project" if rule_id in _PROJECT_REGISTRY else "file"
    # Rule prose lives in the class docstring when present, otherwise in
    # the defining module's docstring (the house style for rule files).
    module = inspect.getmodule(rule_class)
    doc = inspect.cleandoc(
        rule_class.__doc__ or (module.__doc__ if module else "") or ""
    ).strip()

    parts = [
        f"{rule_id}  [{rule_class.default_severity.value}/{scope}]",
        "",
        rule_class.summary,
    ]
    if doc:
        parts += ["", doc]
    example = _EXAMPLES.get(rule_id)
    if example is not None:
        bad, good = example
        parts += [
            "",
            "bad:",
            textwrap.indent(bad, "    "),
            "",
            "good:",
            textwrap.indent(good, "    "),
        ]
    return "\n".join(parts)
