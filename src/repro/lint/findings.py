"""Finding records and report formatting for mapglint."""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Iterable, List


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are correctness hazards (unit mixing, illegal FSM
    transitions); ``WARNING`` findings are determinism/robustness smells
    that are occasionally intentional.  Both fail the lint run — the
    distinction exists for reporting and for baseline triage.
    """

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    column: int
    rule_id: str
    severity: Severity
    message: str
    line_text: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def fingerprint(self) -> "tuple[str, str, str]":
        """Line-number-independent identity used for baseline matching.

        Keyed on (path, rule, stripped source line) so that findings keep
        matching their baseline entry when unrelated edits shift line
        numbers, but stop matching as soon as the offending line changes.
        """
        return (self.path, self.rule_id, self.line_text.strip())


def format_text(findings: Iterable[Finding]) -> str:
    """Human-readable report, one line per finding, sorted by location."""
    lines: List[str] = []
    for finding in sorted(findings):
        lines.append(f"{finding.location()}: {finding.severity.value} "
                     f"[{finding.rule_id}] {finding.message}")
        if finding.line_text.strip():
            lines.append(f"    {finding.line_text.strip()}")
    return "\n".join(lines)


def format_json(findings: Iterable[Finding]) -> str:
    """Machine-readable report: a JSON array of finding objects."""
    payload = [
        {
            "path": finding.path,
            "line": finding.line,
            "column": finding.column,
            "rule": finding.rule_id,
            "severity": finding.severity.value,
            "message": finding.message,
            "line_text": finding.line_text,
        }
        for finding in sorted(findings)
    ]
    return json.dumps(payload, indent=2)
