"""``--fix``: mechanical rewrites for the fixable rule patterns.

Only transformations with exactly one correct spelling are automated:

* **FLT01** — ``a == b`` between float-typed operands becomes
  ``math.isclose(a, b)`` (and ``!=`` becomes ``not math.isclose(a, b)``),
  inserting ``import math`` when the module lacks it.

* **UNIT01 scale literals** — ``x * 1e-9`` becomes ``x * NS`` when the
  surrounding expression proves *which* constant is meant: the other
  operand's (or the assignment target's) dimension picks between NS/NW/NJ.
  Frequency scales (``1e3``/``1e6``/``1e9``) are unambiguous.  A literal
  whose dimension can't be proven is left alone — a wrong constant is
  worse than a magic number.

* **TWIN04 duplicated engine constants** — a literal in the fast
  engine's source whose value duplicates an oracle-side literal *and*
  already has a shared module-level definition (e.g. in
  ``repro.core.gating_constants``) is rewritten to that name, inserting
  the import.  Values with no shared definition are left for a human:
  inventing a name and a home module is not mechanical.

Fixes are applied as source-text splices from the parsed AST's column
spans, bottom-up so earlier edits never shift later offsets, and the
result is re-parsed before writing: if the rewritten module no longer
parses (which would indicate a fixer bug, not a user error), the file is
left untouched.  Running ``--fix`` twice is a no-op by construction —
``math.isclose(a, b)`` contains no float equality and ``x * NS`` no raw
literal.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.base import FileContext
from repro.lint.project.dimensions import (
    HERTZ, JOULES, SECONDS, WATTS, dim_of_name)
from repro.lint.rules.float_equality import _SCOPE as _FLT_SCOPE
from repro.lint.rules.float_equality import _is_floaty
from repro.lint.rules.unit_safety import _is_scale_literal

#: value -> dimension -> repro.units constant name.
_SCALE_BY_DIM: Dict[float, Dict[str, str]] = {
    1e-15: {SECONDS: "FS", JOULES: "FJ"},
    1e-12: {SECONDS: "PS", JOULES: "PJ"},
    1e-9: {SECONDS: "NS", WATTS: "NW", JOULES: "NJ"},
    1e-6: {SECONDS: "US", WATTS: "UW", JOULES: "UJ"},
    1e-3: {SECONDS: "MS", WATTS: "MW", JOULES: "MJ"},
    1e3: {HERTZ: "KHZ"},
    1e6: {HERTZ: "MHZ"},
    1e9: {HERTZ: "GHZ"},
}

# (line, col, end_line, end_col, replacement) in 0-based offsets.
_Edit = Tuple[int, int, int, int, str]


def _span(node: ast.AST) -> Optional[Tuple[int, int, int, int]]:
    end_line = getattr(node, "end_lineno", None)
    end_col = getattr(node, "end_col_offset", None)
    if end_line is None or end_col is None:
        return None
    return (node.lineno - 1, node.col_offset, end_line - 1, end_col)


def _segment(lines: List[str], span: Tuple[int, int, int, int]) -> str:
    line, col, end_line, end_col = span
    if line == end_line:
        return lines[line][col:end_col]
    parts = [lines[line][col:]]
    parts.extend(lines[line + 1:end_line])
    parts.append(lines[end_line][:end_col])
    return "\n".join(parts)


class _FixCollector(ast.NodeVisitor):
    """Walks one module collecting (edit, needed-import) pairs."""

    def __init__(self, context: FileContext) -> None:
        self.context = context
        self.lines = context.source.splitlines()
        self.edits: List[_Edit] = []
        self.needs_math = False
        self.needs_units: List[str] = []
        self._target_dim = "unknown"

    # -- FLT01: float equality -> math.isclose ----------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.context.in_package(*_FLT_SCOPE) and len(node.ops) == 1 and \
                isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
            left, right = node.left, node.comparators[0]
            if _is_floaty(left) or _is_floaty(right):
                span = _span(node)
                left_span = _span(left)
                right_span = _span(right)
                if span and left_span and right_span:
                    left_text = _segment(self.lines, left_span)
                    right_text = _segment(self.lines, right_span)
                    call = f"math.isclose({left_text}, {right_text})"
                    if isinstance(node.ops[0], ast.NotEq):
                        call = f"not {call}"
                    self.edits.append(span + (call,))
                    self.needs_math = True
                    return  # operands are rewritten wholesale; don't recurse
        self.generic_visit(node)

    # -- UNIT01: raw scale literal -> units constant -----------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        previous = self._target_dim
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._target_dim = dim_of_name(node.targets[0].id)
        self.generic_visit(node)
        self._target_dim = previous

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        previous = self._target_dim
        if isinstance(node.target, ast.Name):
            self._target_dim = dim_of_name(node.target.id)
        self.generic_visit(node)
        self._target_dim = previous

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Mult, ast.Div)) and \
                not self.context.is_module("repro/units.py"):
            for operand, other in ((node.left, node.right),
                                   (node.right, node.left)):
                if _is_scale_literal(operand, self.context):
                    assert isinstance(operand, ast.Constant)
                    constant = self._pick_constant(operand.value, other)
                    span = _span(operand)
                    if constant and span:
                        self.edits.append(span + (constant,))
                        self.needs_units.append(constant)
        self.generic_visit(node)

    def _pick_constant(self, value: float, other: ast.AST) -> Optional[str]:
        by_dim = _SCALE_BY_DIM.get(value, {})
        if len(by_dim) == 1:
            return next(iter(by_dim.values()))
        other_dim = "unknown"
        if isinstance(other, ast.Name):
            other_dim = dim_of_name(other.id)
        elif isinstance(other, ast.Attribute):
            other_dim = dim_of_name(other.attr)
        if other_dim in by_dim:
            return by_dim[other_dim]
        return by_dim.get(self._target_dim)


def _apply_edits(source: str, edits: Sequence[_Edit]) -> str:
    lines = source.splitlines(keepends=True)
    for line, col, end_line, end_col, replacement in sorted(
            edits, key=lambda e: (e[0], e[1]), reverse=True):
        if line == end_line:
            text = lines[line]
            lines[line] = text[:col] + replacement + text[end_col:]
        else:
            first = lines[line][:col] + replacement
            tail = lines[end_line][end_col:]
            lines[line:end_line + 1] = [first + tail]
    return "".join(lines)


def _insert_imports(source: str, needs_math: bool,
                    needs_units: Sequence[str]) -> str:
    tree = ast.parse(source)
    have_math = False
    units_import: Optional[ast.ImportFrom] = None
    last_import_line = 0
    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            have_math = have_math or any(
                alias.name == "math" for alias in stmt.names)
            last_import_line = max(last_import_line, stmt.lineno)
        elif isinstance(stmt, ast.ImportFrom):
            if stmt.module == "repro.units":
                units_import = stmt
            last_import_line = max(last_import_line,
                                   getattr(stmt, "end_lineno", stmt.lineno))
    wanted_units = sorted(set(needs_units))
    if units_import is not None and wanted_units:
        have = {alias.name for alias in units_import.names}
        wanted_units = [name for name in wanted_units if name not in have]

    lines = source.splitlines(keepends=True)
    additions: List[str] = []
    if needs_math and not have_math:
        additions.append("import math\n")
    if wanted_units:
        if units_import is not None:
            # Extend the existing import in place (single-line form only;
            # a parenthesized multi-line import just gets a second line).
            lineno = units_import.lineno - 1
            end = getattr(units_import, "end_lineno", units_import.lineno) - 1
            if lineno == end and wanted_units:
                text = lines[lineno].rstrip("\n")
                lines[lineno] = text + ", " + ", ".join(wanted_units) + "\n"
                wanted_units = []
        if wanted_units:
            additions.append(
                f"from repro.units import {', '.join(wanted_units)}\n")
    if additions:
        if last_import_line:
            insert_at = last_import_line
        else:
            # After a module docstring, before the first statement.
            insert_at = 0
            if tree.body and isinstance(tree.body[0], ast.Expr) and \
                    isinstance(tree.body[0].value, ast.Constant) and \
                    isinstance(tree.body[0].value.value, str):
                insert_at = getattr(tree.body[0], "end_lineno",
                                    tree.body[0].lineno)
        lines[insert_at:insert_at] = additions
    return "".join(lines)


def fix_source(path: str, source: str) -> Tuple[str, int]:
    """Rewritten source and number of edits (0 edits returns it unchanged)."""
    tree = ast.parse(source, filename=path)
    context = FileContext(path, source, tree)
    collector = _FixCollector(context)
    collector.visit(tree)
    if not collector.edits:
        return source, 0
    fixed = _apply_edits(source, collector.edits)
    fixed = _insert_imports(fixed, collector.needs_math,
                            collector.needs_units)
    ast.parse(fixed, filename=path)  # a fixer bug must not corrupt the file
    return fixed, len(collector.edits)


def fix_files(files: Sequence[str]) -> Dict[str, int]:
    """Apply fixes in place; returns ``{path: edit_count}`` for changed files."""
    changed: Dict[str, int] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            fixed, count = fix_source(path, source)
        except (OSError, SyntaxError):
            continue
        if count:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(fixed)
            changed[path.replace("\\", "/")] = count
    return changed


# ---------------------------------------------------------------------------
# TWIN04: hoist duplicated engine constants onto their shared definition
# ---------------------------------------------------------------------------


def _module_dotted(path: str) -> Optional[str]:
    """``src/repro/core/x.py`` -> ``repro.core.x`` (None outside repro)."""
    parts = path.replace("\\", "/").split("/")
    if "repro" not in parts or not parts[-1].endswith(".py"):
        return None
    start = len(parts) - 1 - parts[::-1].index("repro")
    dotted = parts[start:]
    dotted[-1] = dotted[-1][:-3]
    return ".".join(dotted)


def _insert_from_import(source: str, module: str,
                        names: Sequence[str]) -> str:
    """Add ``from module import names`` (merging into an existing one)."""
    tree = ast.parse(source)
    existing: Optional[ast.ImportFrom] = None
    last_import_line = 0
    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom):
            if stmt.module == module:
                existing = stmt
            last_import_line = max(last_import_line,
                                   getattr(stmt, "end_lineno", stmt.lineno))
        elif isinstance(stmt, ast.Import):
            last_import_line = max(last_import_line, stmt.lineno)
    wanted = sorted(set(names))
    if existing is not None:
        have = {alias.name for alias in existing.names}
        wanted = [name for name in wanted if name not in have]
        if not wanted:
            return source
    lines = source.splitlines(keepends=True)
    if existing is not None:
        lineno = existing.lineno - 1
        end = getattr(existing, "end_lineno", existing.lineno) - 1
        if lineno == end:
            text = lines[lineno].rstrip("\n")
            lines[lineno] = text + ", " + ", ".join(wanted) + "\n"
            return "".join(lines)
    addition = f"from {module} import {', '.join(wanted)}\n"
    insert_at = last_import_line
    if not insert_at and tree.body and isinstance(tree.body[0], ast.Expr) \
            and isinstance(tree.body[0].value, ast.Constant) \
            and isinstance(tree.body[0].value.value, str):
        insert_at = getattr(tree.body[0], "end_lineno", tree.body[0].lineno)
    lines[insert_at:insert_at] = [addition]
    return "".join(lines)


def fix_twin_constants(files: Sequence[str]) -> Dict[str, int]:
    """Hoist TWIN04 duplicated constants onto their shared definitions.

    Runs the whole-program twin analysis over ``files`` (it needs both
    closures to know which literals are duplicated), then rewrites each
    duplicated fastsim literal whose value already has a module-level
    definition outside fastsim to that definition's name, inserting the
    import.  Returns ``{path: edit_count}`` for changed files.
    """
    from repro.lint.base import parse_suppressions
    from repro.lint.project.graph import ProjectModel
    from repro.lint.project.summary import extract_summary

    sources: Dict[str, Tuple[str, str]] = {}  # norm -> (fs path, source)
    summaries = []
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError):
            continue
        norm = path.replace("\\", "/")
        sources[norm] = (path, source)
        summaries.append(
            extract_summary(path, source, tree, parse_suppressions(source)))
    if not summaries:
        return {}
    twin = ProjectModel(summaries).twin()
    fast_consts = twin.fastsim_constants()
    oracle_consts = twin.oracle_constants()
    shared_defs = twin.shared_constant_defs()

    # norm path -> (edits, names to import per module)
    per_file: Dict[str, Tuple[List[_Edit], Dict[str, List[str]]]] = {}
    for key in sorted(set(fast_consts) & set(oracle_consts)):
        hoist = shared_defs.get(key)
        if hoist is None:
            continue
        def_path, const_def = hoist
        module = _module_dotted(def_path)
        if module is None:
            continue
        fast_qual, const = fast_consts[key]
        norm = twin.module_of(fast_qual)
        if norm not in sources:
            continue
        edits, imports = per_file.setdefault(norm, ([], {}))
        edits.append((const.line - 1, const.col,
                      const.line - 1, const.end_col, const_def.name))
        imports.setdefault(module, []).append(const_def.name)

    changed: Dict[str, int] = {}
    for norm, (edits, imports) in sorted(per_file.items()):
        path, source = sources[norm]
        fixed = _apply_edits(source, edits)
        for module, names in sorted(imports.items()):
            fixed = _insert_from_import(fixed, module, names)
        try:
            ast.parse(fixed, filename=path)
        except SyntaxError:  # a fixer bug must not corrupt the file
            continue
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(fixed)
        changed[norm] = len(edits)
    return changed
