"""Whole-program analysis engine for mapglint.

Phase 1 (:mod:`repro.lint.project.summary`) turns each file into a
picklable :class:`~repro.lint.project.summary.ModuleSummary`; phase 2
(:mod:`repro.lint.project.graph`) merges the summaries into a
:class:`~repro.lint.project.graph.ProjectModel` that the interprocedural
rules consume.  :mod:`repro.lint.project.dimensions` holds the dimension
lattice both phases share.
"""

from __future__ import annotations

from repro.lint.project.dimensions import (
    ALL_DIMS, CYCLES, HERTZ, JOULES, NUM, SECONDS, UNKNOWN, WATTS,
    FunctionAnalyzer, definite_mismatch, dim_of_name, is_known)
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path
from repro.lint.project.summary import (
    CallSite, DataclassInfo, FieldInfo, FunctionInfo, ModuleSummary,
    extract_summary)

__all__ = [
    "ALL_DIMS",
    "CYCLES",
    "CallSite",
    "DataclassInfo",
    "FieldInfo",
    "FunctionAnalyzer",
    "FunctionInfo",
    "HERTZ",
    "JOULES",
    "ModuleSummary",
    "NUM",
    "ProjectModel",
    "SECONDS",
    "UNKNOWN",
    "WATTS",
    "definite_mismatch",
    "dim_of_name",
    "extract_summary",
    "in_repro",
    "is_known",
    "is_test_path",
]
