"""Shared substrate for the CONC rules: roots, lock identity, bindings.

The four concurrency rules (CONC01–CONC04) all reason from the same
three questions, answered here so they answer them identically:

* **What are the concurrent roots?** Every spawn site (thread, timer,
  async task) and every pool submission whose worker resolves — by the
  project's agreement rule, to exactly one definition — is an entry
  point from which a second flow of control can reach shared state.

* **Which lock guards a symbol?** ``# mapglint: guarded-by=<lock>``
  bindings are per-module facts; :func:`binding_locks` looks them up in
  the module that *defines* the symbol (where phase 1 emitted the
  guarded-write effect), so a rule never has to rediscover the pragma.

* **When are two lock spellings the same lock?** Spellings are only
  comparable within a scope: ``self._lock`` in two different classes is
  two locks, a bare ``_lock`` parameter in two functions likewise, but a
  lock-typed module global is one lock everywhere in its module.
  :func:`qualify_lock` canonicalizes a spelling to a project-wide
  identity so CONC02's order graph never aliases unrelated locks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List

from repro.lint.project.graph import ProjectModel, in_repro, is_test_path


@dataclass(frozen=True)
class ConcurrentRoot:
    """One resolved concurrent entry point (spawn site or pool submission)."""

    kind: str                  # "thread" | "task" | "pool"
    api: str                   # "threading.Thread", "map", "submit", ...
    worker_name: str           # the bare worker name that resolved
    worker_qualname: str       # qualname of the resolved definition
    path: str                  # module containing the spawn/submission
    line: int
    col: int
    line_text: str = ""


def concurrent_roots(model: ProjectModel) -> List[ConcurrentRoot]:
    """Every spawn site and pool submission with a uniquely resolved worker.

    Only non-test ``repro`` source contributes roots; ambiguous or
    unresolvable workers contribute nothing (under-approximate, never
    guess — every reported spawn-to-access chain must be real).
    """
    roots: List[ConcurrentRoot] = []
    for summary in model.summaries:
        if is_test_path(summary.path) or not in_repro(summary.path):
            continue
        effects = summary.module_effects
        if effects is None:
            continue
        for spawn in effects.spawn_sites:
            if spawn.worker_kind != "name":
                continue
            candidates = model.resolve(spawn.worker_name)
            if len(candidates) != 1:
                continue
            roots.append(ConcurrentRoot(
                kind=spawn.kind, api=spawn.api,
                worker_name=spawn.worker_name,
                worker_qualname=candidates[0].qualname,
                path=summary.path, line=spawn.line, col=spawn.col,
                line_text=spawn.line_text))
        for submission in effects.pool_submissions:
            if submission.worker_kind != "name":
                continue
            candidates = model.resolve(submission.worker_name)
            if len(candidates) != 1:
                continue
            roots.append(ConcurrentRoot(
                kind="pool", api=submission.method,
                worker_name=submission.worker_name,
                worker_qualname=candidates[0].qualname,
                path=summary.path, line=submission.line,
                col=submission.col, line_text=submission.line_text))
    return roots


def binding_locks(model: ProjectModel, path: str,
                  symbol: str) -> FrozenSet[str]:
    """The lock spellings bound to ``symbol`` in the module at ``path``."""
    summary = model.summary_for(path)
    effects = getattr(summary, "module_effects", None)
    if effects is None:
        return frozenset()
    return frozenset(binding.lock for binding in effects.guarded_bindings
                     if binding.symbol == symbol)


def lock_globals_of(model: ProjectModel, path: str) -> FrozenSet[str]:
    """Lock-typed module globals defined by the module at ``path``."""
    summary = model.summary_for(path)
    effects = getattr(summary, "module_effects", None)
    if effects is None:
        return frozenset()
    return effects.lock_globals


def qualify_lock(path: str, function_qualname: str, lock: str,
                 module_locks: FrozenSet[str] = frozenset()) -> str:
    """Canonical project-wide identity for a lock spelling at a site.

    ``self.X``/``cls.X`` locks are per-class (qualified by the defining
    class); lock-typed module globals (``module_locks``) are per-module;
    everything else (parameters, locals) is per-function.
    """
    head = lock.split(".", 1)[0]
    if head in ("self", "cls"):
        qual = function_qualname.split("::", 1)[-1]
        class_name = qual.rsplit(".", 1)[0] if "." in qual else qual
        return f"{path}::{class_name}::{lock}"
    if head in module_locks:
        return f"{path}::{lock}"
    return f"{function_qualname}::{lock}"


def iter_module_effects(model: ProjectModel,
                        include_tests: bool = False) -> Iterator[tuple]:
    """``(summary, module_effects)`` for every in-scope source module."""
    for summary in model.summaries:
        if not in_repro(summary.path):
            continue
        if not include_tests and is_test_path(summary.path):
            continue
        effects = summary.module_effects
        if effects is not None:
            yield summary, effects
