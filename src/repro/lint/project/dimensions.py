"""Dimension lattice and abstract interpretation for the project analyzer.

The whole-program rules (UNIT02, LEDGER01, EVT01) need to know, for any
expression, *what physical quantity it denotes* — not just whether its
spelling carries a cycle or SI suffix (that is UNIT01's per-expression
view).  This module defines a small dimension lattice::

    cycles   s   j   w   hz   dimensionless
         \\   |   |   |   |   /
               unknown

and a forward abstract interpreter that infers an element of it for every
local, parameter, and return value of a function.  Seeds come from three
places:

* **identifier suffixes** — the package naming convention (``*_cycles``,
  ``*_s``, ``*_j``, ``*_w``, ``*_hz`` and their scaled variants);
* **``repro.units`` constants and helpers** — ``13.75 * NS`` is seconds,
  ``seconds_to_cycles_ceil(...)`` is cycles, ``energy_joules(...)`` is
  joules;
* **propagation** — assignments carry dimensions to new names, and
  arithmetic combines them physically (``w * s -> j``, ``j / s -> w``,
  ``cycles / hz -> s``, dimensionless scales are transparent).

The interpreter is deliberately optimistic: it only ever claims a dimension
it can actually justify, and rules fire only on a *definite* mismatch of
two known, non-dimensionless dimensions — an ``unknown`` never triggers a
finding on its own (except where a rule explicitly demands a proven
dimension, e.g. LEDGER01's joules requirement).
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Optional, Sequence, Tuple

# ---- the lattice -----------------------------------------------------------

CYCLES = "cycles"
SECONDS = "s"
JOULES = "j"
WATTS = "w"
HERTZ = "hz"
NUM = "dimensionless"
UNKNOWN = "unknown"

#: Every element of the lattice, top row first (for docs and SARIF help).
ALL_DIMS = (CYCLES, SECONDS, JOULES, WATTS, HERTZ, NUM, UNKNOWN)

_KNOWN = frozenset({CYCLES, SECONDS, JOULES, WATTS, HERTZ})

# ---- seeding tables --------------------------------------------------------

_SUFFIXES: Tuple[Tuple[str, str], ...] = (
    ("_cycles", CYCLES), ("_cycle", CYCLES),
    ("_seconds", SECONDS), ("_ns", SECONDS), ("_us", SECONDS),
    ("_ms", SECONDS), ("_ps", SECONDS), ("_fs", SECONDS), ("_s", SECONDS),
    ("_joules", JOULES), ("_nj", JOULES), ("_pj", JOULES), ("_uj", JOULES),
    ("_mj", JOULES), ("_fj", JOULES), ("_j", JOULES),
    ("_watts", WATTS), ("_nw", WATTS), ("_uw", WATTS), ("_mw", WATTS),
    ("_w", WATTS),
    ("_hertz", HERTZ), ("_khz", HERTZ), ("_mhz", HERTZ), ("_ghz", HERTZ),
    ("_hz", HERTZ),
)

_BARE_NAMES: Dict[str, str] = {
    "cycles": CYCLES, "cycle": CYCLES,
    "seconds": SECONDS, "ns": SECONDS, "us": SECONDS, "ms": SECONDS,
    "ps": SECONDS, "fs": SECONDS,
    "joules": JOULES, "nj": JOULES, "pj": JOULES, "uj": JOULES,
    "mj": JOULES, "fj": JOULES,
    "watts": WATTS, "nw": WATTS, "uw": WATTS, "mw": WATTS,
    "hertz": HERTZ, "khz": HERTZ, "mhz": HERTZ, "ghz": HERTZ,
}

#: ``repro.units`` scale constants and the dimension a product with them has.
UNITS_CONSTANTS: Dict[str, str] = {
    "FS": SECONDS, "PS": SECONDS, "NS": SECONDS, "US": SECONDS,
    "MS": SECONDS,
    "FJ": JOULES, "PJ": JOULES, "NJ": JOULES, "UJ": JOULES, "MJ": JOULES,
    "NW": WATTS, "UW": WATTS, "MW": WATTS,
    "KHZ": HERTZ, "MHZ": HERTZ, "GHZ": HERTZ,
}

#: Return dimensions of the ``repro.units`` conversion helpers.
UNITS_HELPERS: Dict[str, str] = {
    "cycles_to_seconds": SECONDS,
    "cycles_to_ns": SECONDS,
    "seconds_to_cycles": CYCLES,
    "seconds_to_cycles_ceil": CYCLES,
    "energy_joules": JOULES,
}

# Builtins/stdlib calls that pass their argument's dimension through.
_PASSTHROUGH_CALLS = frozenset({
    "int", "float", "abs", "round", "min", "max", "sum",
    "ceil", "floor", "fabs", "copysign",
})
_NUM_CALLS = frozenset({"len", "range", "enumerate", "bool", "ord", "hash"})


def dim_of_name(name: str) -> str:
    """Seed dimension of an identifier from the naming convention."""
    if name in UNITS_CONSTANTS:
        return UNITS_CONSTANTS[name]
    lowered = name.lower()
    if lowered in _BARE_NAMES:
        return _BARE_NAMES[lowered]
    for suffix, dim in _SUFFIXES:
        if lowered.endswith(suffix):
            return dim
    return UNKNOWN


def is_known(dim: str) -> bool:
    """Whether ``dim`` is a definite physical dimension (not num/unknown)."""
    return dim in _KNOWN


def definite_mismatch(a: str, b: str) -> bool:
    """Two *proven* dimensions that disagree (the only thing rules act on)."""
    return is_known(a) and is_known(b) and a != b


# ---- arithmetic ------------------------------------------------------------

_MUL: Dict[Tuple[str, str], str] = {
    (WATTS, SECONDS): JOULES,
    (SECONDS, HERTZ): CYCLES,
}

_DIV: Dict[Tuple[str, str], str] = {
    (JOULES, SECONDS): WATTS,
    (JOULES, WATTS): SECONDS,
    (CYCLES, HERTZ): SECONDS,
    (CYCLES, SECONDS): HERTZ,
    (NUM, SECONDS): HERTZ,
    (NUM, HERTZ): SECONDS,
}


def multiply(a: str, b: str) -> str:
    """Dimension of ``a * b`` (``w * s -> j``, dimensionless transparent)."""
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if a == NUM:
        return b
    if b == NUM:
        return a
    return _MUL.get((a, b)) or _MUL.get((b, a)) or UNKNOWN


def divide(a: str, b: str) -> str:
    """Dimension of ``a / b`` (``j / s -> w``, like-over-like cancels)."""
    if a == UNKNOWN or b == UNKNOWN:
        return UNKNOWN
    if b == NUM:
        return a
    if a == b:
        return NUM
    return _DIV.get((a, b), UNKNOWN)


def add(a: str, b: str) -> str:
    """Addition/subtraction: dimensions must agree; tolerate epsilons.

    A dimensionless operand is treated as "the other side's dimension"
    because epsilon literals (``x_s + 1e-12``) are pervasive and harmless;
    a disagreement of two known dimensions yields ``unknown`` (UNIT01 and
    UNIT02 flag the mix where it matters — silently poisoning downstream
    inference would double-report it).
    """
    if a == b:
        return a
    if a in (NUM, UNKNOWN):
        return b if b != UNKNOWN else UNKNOWN
    if b in (NUM, UNKNOWN):
        return a
    return UNKNOWN


def join(a: str, b: str) -> str:
    """Control-flow merge: keep a dimension only when both paths agree."""
    return a if a == b else UNKNOWN


# ---- expression / function inference ---------------------------------------

class CallObservation:
    """One call expression seen during inference (consumed by summary.py)."""

    __slots__ = ("node", "name", "receiver", "arg_dims", "arg_tuple_lens",
                 "kw_dims", "result_context", "obs_guarded", "result_used",
                 "result_target")

    def __init__(self, node: ast.Call, name: str, receiver: str,
                 arg_dims: List[str], arg_tuple_lens: List[Optional[int]],
                 kw_dims: Dict[str, str], result_context: str,
                 obs_guarded: bool = False, result_used: bool = True,
                 result_target: str = "") -> None:
        self.node = node
        self.name = name
        self.receiver = receiver
        self.arg_dims = arg_dims
        self.arg_tuple_lens = arg_tuple_lens
        self.kw_dims = kw_dims
        self.result_context = result_context
        self.obs_guarded = obs_guarded
        self.result_used = result_used
        self.result_target = result_target


def dotted_name(node: ast.AST) -> str:
    """Best-effort dotted rendering of a call target (``self.ledger.add``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else node.attr
    if isinstance(node, ast.Call):
        return dotted_name(node.func) + "()"
    return ""


def _is_enabled_test(node: ast.AST) -> bool:
    """Whether a condition proves the observability fast-path is on:
    ``X.enabled``, a bare ``enabled``, or an ``and`` chain containing one."""
    if isinstance(node, ast.Attribute) and node.attr == "enabled":
        return True
    if isinstance(node, ast.Name) and node.id == "enabled":
        return True
    if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
        return any(_is_enabled_test(value) for value in node.values)
    return False


def _is_negative_enabled_guard(stmt: ast.stmt) -> bool:
    """``if not X.enabled: return`` — everything after it is guarded."""
    if not isinstance(stmt, ast.If) or stmt.orelse:
        return False
    test = stmt.test
    if not (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
            and _is_enabled_test(test.operand)):
        return False
    return all(isinstance(sub, (ast.Return, ast.Continue, ast.Raise))
               for sub in stmt.body)


class FunctionAnalyzer:
    """Forward abstract interpreter over one function body.

    One linear pass in statement order — no fixpoint.  That under-infers
    loop-carried dimensions but never *mis*-infers them, which is the right
    trade for a linter.  Every :class:`ast.Call` encountered is reported to
    ``on_call`` together with its locally inferred argument dimensions, the
    dimension context its result flows into (assignment-target suffix),
    whether the call sits under an observability ``enabled`` guard, and
    whether/where its result is used.
    """

    def __init__(self, on_call: Optional[Callable[[CallObservation], None]] = None) -> None:
        self._on_call = on_call
        self.env: Dict[str, str] = {}
        self.return_dims: List[str] = []
        self._guard_depth = 0

    # -- public API --------------------------------------------------------

    def analyze(self, func: ast.AST, is_method: bool = False
                ) -> Tuple[List[Tuple[str, str]], str]:
        """Infer ``(params, return_dim)`` for a FunctionDef/AsyncFunctionDef."""
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        params: List[Tuple[str, str]] = []
        args = func.args
        all_args = list(args.posonlyargs) + list(args.args)
        for index, arg in enumerate(all_args):
            if is_method and index == 0 and arg.arg in ("self", "cls"):
                self.env[arg.arg] = UNKNOWN
                continue
            dim = dim_of_name(arg.arg)
            params.append((arg.arg, dim))
            self.env[arg.arg] = dim
        for arg in args.kwonlyargs:
            dim = dim_of_name(arg.arg)
            params.append((arg.arg, dim))
            self.env[arg.arg] = dim
        self._exec_block(func.body)
        return_dim = UNKNOWN
        if self.return_dims:
            return_dim = self.return_dims[0]
            for dim in self.return_dims[1:]:
                return_dim = join(return_dim, dim)
        return params, return_dim

    # -- statements --------------------------------------------------------

    def _exec_block(self, stmts: Sequence[ast.stmt]) -> None:
        """Execute a statement sequence, tracking early-return guards:
        after ``if not X.enabled: return`` the rest of the block runs only
        with observability on, so its calls count as guarded."""
        bumped = 0
        for stmt in stmts:
            self._exec(stmt)
            if _is_negative_enabled_guard(stmt):
                self._guard_depth += 1
                bumped += 1
        self._guard_depth -= bumped

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            context = UNKNOWN
            target_repr = ""
            if len(stmt.targets) == 1:
                target_repr = dotted_name(stmt.targets[0])
                if isinstance(stmt.targets[0], ast.Name):
                    context = dim_of_name(stmt.targets[0].id)
            value_dim = self.infer(stmt.value, context=context,
                                   target=target_repr)
            for target in stmt.targets:
                self._bind(target, stmt.value, value_dim)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                context = (dim_of_name(stmt.target.id)
                           if isinstance(stmt.target, ast.Name) else UNKNOWN)
                value_dim = self.infer(stmt.value, context=context,
                                       target=dotted_name(stmt.target))
                self._bind(stmt.target, stmt.value, value_dim)
        elif isinstance(stmt, ast.AugAssign):
            value_dim = self.infer(stmt.value,
                                   target=dotted_name(stmt.target))
            if isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id,
                                       dim_of_name(stmt.target.id))
                self.env[stmt.target.id] = self._combine(
                    stmt.op, current, value_dim)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.return_dims.append(UNKNOWN)
            else:
                self.return_dims.append(
                    self.infer(stmt.value, target="<return>"))
        elif isinstance(stmt, ast.Expr):
            self.infer(stmt.value, used=False)
        elif isinstance(stmt, ast.For):
            iter_dim = self.infer(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter, iter_dim)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.infer(stmt.test)
            self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.infer(stmt.test)
            if _is_enabled_test(stmt.test):
                self._guard_depth += 1
                self._exec_block(stmt.body)
                self._guard_depth -= 1
            else:
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self.infer(item.context_expr)
                if item.optional_vars is not None and \
                        isinstance(item.optional_vars, ast.Name):
                    self.env[item.optional_vars.id] = UNKNOWN
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs get their own analyzer in summary.py; here we only
            # note the name so it doesn't look like an undefined quantity.
            self.env[stmt.name] = UNKNOWN
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for value in ast.iter_child_nodes(stmt):
                if isinstance(value, ast.expr):
                    self.infer(value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        # pass/break/continue/global/import/class: nothing to propagate.

    def _bind(self, target: ast.AST, value: ast.AST, value_dim: str) -> None:
        if isinstance(target, ast.Name):
            # When inference can't justify a dimension, the target's own
            # suffix is still the author's claim — seed from it so
            # ``leak_w = v * 0.1`` makes the function return watts.
            if value_dim == UNKNOWN:
                value_dim = dim_of_name(target.id)
            self.env[target.id] = value_dim
        elif isinstance(target, (ast.Tuple, ast.List)):
            elements: Sequence[ast.AST] = target.elts
            value_elts: Sequence[Optional[ast.AST]]
            if isinstance(value, (ast.Tuple, ast.List)) and \
                    len(value.elts) == len(elements):
                value_elts = value.elts
            else:
                value_elts = [None] * len(elements)
            for element, sub_value in zip(elements, value_elts):
                if isinstance(element, ast.Name):
                    if sub_value is not None:
                        self.env[element.id] = self.infer(sub_value)
                    else:
                        self.env[element.id] = dim_of_name(element.id)
        # Attribute/Subscript targets: no local binding to track.

    def _bind_loop_target(self, target: ast.AST, iterable: ast.AST,
                          iter_dim: str) -> None:
        if isinstance(target, ast.Name):
            if isinstance(iterable, ast.Call) and \
                    isinstance(iterable.func, ast.Name) and \
                    iterable.func.id == "range":
                self.env[target.id] = NUM
            else:
                # Iterating a *_cycles container yields cycles, etc.; else
                # fall back to the loop variable's own suffix.
                self.env[target.id] = iter_dim if is_known(iter_dim) \
                    else dim_of_name(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = dim_of_name(element.id)

    @staticmethod
    def _combine(op: ast.operator, a: str, b: str) -> str:
        if isinstance(op, (ast.Mult,)):
            return multiply(a, b)
        if isinstance(op, (ast.Div, ast.FloorDiv)):
            return divide(a, b)
        if isinstance(op, (ast.Add, ast.Sub, ast.Mod)):
            return add(a, b)
        return UNKNOWN

    # -- expressions -------------------------------------------------------

    def infer(self, node: ast.AST, context: str = UNKNOWN,
              used: bool = True, target: str = "") -> str:
        """Dimension of an expression under the current environment.

        ``used``/``target`` describe how the *top-level* expression's value
        is consumed (statement-expression results are unused; assignment
        targets are named); nested subexpressions are always "used".
        """
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return NUM
            if isinstance(node.value, (int, float)):
                return NUM
            return UNKNOWN
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return dim_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.infer(node.value)
            return dim_of_name(node.attr)
        if isinstance(node, ast.Subscript):
            # ``state_cycles[state]`` carries its container's dimension.
            return self.infer(node.value)
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left)
            right = self.infer(node.right)
            return self._combine(node.op, left, right)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.infer(value)
            return UNKNOWN
        if isinstance(node, ast.Compare):
            self.infer(node.left)
            for comparator in node.comparators:
                self.infer(comparator)
            return NUM
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            return join(self.infer(node.body), self.infer(node.orelse))
        if isinstance(node, ast.Call):
            return self._infer_call(node, context, used=used, target=target)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return UNKNOWN
        if isinstance(node, ast.Dict):
            for value in list(node.keys) + list(node.values):
                if value is not None:
                    self.infer(value)
            return UNKNOWN
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                             ast.DictComp)):
            return UNKNOWN
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        return UNKNOWN

    def _infer_call(self, node: ast.Call, context: str,
                    used: bool = True, target: str = "") -> str:
        name = ""
        receiver = ""
        if isinstance(node.func, ast.Name):
            name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            name = node.func.attr
            receiver = dotted_name(node.func.value)
        arg_dims: List[str] = []
        arg_tuple_lens: List[Optional[int]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                arg_dims.append(UNKNOWN)
                arg_tuple_lens.append(None)
                self.infer(arg.value)
                continue
            arg_dims.append(self.infer(arg))
            arg_tuple_lens.append(len(arg.elts)
                                  if isinstance(arg, ast.Tuple) else None)
        kw_dims: Dict[str, str] = {}
        for keyword in node.keywords:
            if keyword.arg is not None:
                kw_dims[keyword.arg] = self.infer(keyword.value)
            else:
                self.infer(keyword.value)

        if self._on_call is not None and name:
            self._on_call(CallObservation(
                node=node, name=name, receiver=receiver, arg_dims=arg_dims,
                arg_tuple_lens=arg_tuple_lens, kw_dims=kw_dims,
                result_context=context, obs_guarded=self._guard_depth > 0,
                result_used=used, result_target=target))

        # Result dimension.
        if name in UNITS_HELPERS:
            return UNITS_HELPERS[name]
        if name in _NUM_CALLS:
            return NUM
        if name in _PASSTHROUGH_CALLS:
            if name in ("min", "max"):
                result = UNKNOWN
                if arg_dims:
                    result = arg_dims[0]
                    for dim in arg_dims[1:]:
                        result = join(result, dim)
                return result
            return arg_dims[0] if arg_dims else UNKNOWN
        if name:
            return dim_of_name(name)
        return UNKNOWN
