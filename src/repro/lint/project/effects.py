"""Effect inference for the whole-program analyzer.

The dimension lattice (:mod:`repro.lint.project.dimensions`) answers *what
quantity* an expression denotes; this module answers *what the world does
to a function and what the function does to the world*.  Phase 1 extracts,
per function, a set of :class:`Effect` facts — environment-variable reads,
filesystem access, global-RNG draws, wall-clock reads, process/pool
management, and reads/writes of mutable module globals — each with the
exact source site as evidence.  Phase 2 (:class:`EffectPropagator`)
closes those local facts transitively over the resolved call graph with a
fixpoint over the effect lattice (a powerset lattice: union is the join,
the bottom element is the empty set, and every transfer function is
monotone, so the fixpoint exists and is reached in finitely many sweeps).

Effects are what turn the execution engine's correctness assumptions into
machine-checked facts:

* a value that reaches simulation state from an **env read** or a mutable
  **module global** is invisible to the ``JobSpec``/source digest that
  addresses the result cache — a stale-cache hazard (CACHE01);
* a function submitted to a ``multiprocessing`` pool must be **effect-free**
  beyond its payload, or worker scheduling leaks into results (PURE01);
* pool payloads must be **plain-picklable** (PAR01), which is a *shape*
  fact recorded here as :class:`PoolSubmission`.

Call-graph edges follow the project's agreement philosophy: effects
propagate only through **unambiguously resolved** calls (exactly one
definition for the bare name).  An ambiguous or unresolvable callee
contributes nothing — the engine under-approximates rather than guesses,
so every reported effect chain is real.

A module global that is a *deliberate, content-pure memo* (a cache whose
value is derived entirely from the payload or the source tree) can be
declared on its definition line::

    _WORKER_STORE = None  # mapglint: declared-cache

Declared caches produce no global-read/global-write effects; the
declaration is the author's auditable claim that the memo cannot change
any result, placed where a reviewer will see it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.project.dimensions import dotted_name

#: Bump when the effect-summary layout or inference changes; folded into
#: the result-cache key (see :mod:`repro.lint.cache`) so upgrading the
#: linter can never serve stale phase-1 effect summaries.
EFFECT_SCHEMA = 1

# ---- the effect alphabet ---------------------------------------------------

ENV = "env"                    # os.environ / os.getenv reads
FS = "fs"                      # filesystem reads or writes
RNG = "rng"                    # process-global RNG draws
CLOCK = "clock"                # wall-clock reads
PROCESS = "process"            # process/pool management, pids
GLOBAL_WRITE = "global-write"  # post-import mutation of a module global
GLOBAL_READ = "global-read"    # read of a post-import-mutated module global
OBS_EMIT = "obs-emit"          # recorder/metrics emission (from call sites)

#: Every effect kind phase 1 can emit, in display order.
ALL_EFFECTS = (ENV, FS, RNG, CLOCK, PROCESS, GLOBAL_WRITE, GLOBAL_READ,
               OBS_EMIT)

#: The kinds that make a pool worker impure (PURE01) — everything except
#: recorder emission, which workers never see (recorders are per-process).
IMPURE_KINDS = frozenset({ENV, FS, RNG, CLOCK, PROCESS,
                          GLOBAL_WRITE, GLOBAL_READ})

#: The kinds that make a cached simulation result stale-prone (CACHE01):
#: inputs the JobSpec/source digest cannot see.
CACHE_HAZARD_KINDS = frozenset({ENV, GLOBAL_WRITE, GLOBAL_READ})


@dataclass(frozen=True)
class Effect:
    """One observed effect with its evidence site."""

    kind: str                  # one of ALL_EFFECTS
    detail: str                # human-readable evidence ("os.getenv('X')")
    line: int
    col: int
    line_text: str = ""
    symbol: str = ""           # the global/attr involved, when applicable


@dataclass(frozen=True)
class FunctionEffects:
    """The locally observed effects of one function or method."""

    qualname: str              # matches FunctionInfo.qualname
    name: str
    line: int
    effects: Tuple[Effect, ...]


@dataclass(frozen=True)
class ClassAttrInfo:
    """One mutable class-body attribute (a latent shared cache)."""

    class_name: str
    attr: str
    line: int
    col: int
    line_text: str = ""


@dataclass(frozen=True)
class PoolSubmission:
    """One site handing work to a multiprocessing pool/process."""

    method: str                # "map", "imap_unordered", "Process", ...
    worker_kind: str           # "name" | "lambda" | "attribute" | "other"
    worker_name: str           # bare name when worker_kind == "name"
    worker_repr: str           # source spelling of the worker expression
    receiver: str              # dotted receiver ("pool"), may be ""
    in_function: str           # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""
    lambda_in_args: bool = False
    open_in_args: bool = False


@dataclass(frozen=True)
class ModuleEffects:
    """Everything effect-related phase 2 needs from one module."""

    path: str
    functions: Tuple[FunctionEffects, ...] = ()
    pool_submissions: Tuple[PoolSubmission, ...] = ()
    class_mutable_attrs: Tuple[ClassAttrInfo, ...] = ()
    mutable_globals: FrozenSet[str] = frozenset()
    mutated_globals: FrozenSet[str] = frozenset()
    declared_caches: FrozenSet[str] = frozenset()
    nested_functions: FrozenSet[str] = frozenset()


# ---- detection tables ------------------------------------------------------

_DECLARED_CACHE_RE = re.compile(r"#\s*mapglint:\s*declared-cache\b")

_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns", "perf_counter", "perf_counter_ns",
                       "monotonic", "monotonic_ns", "process_time"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

_OS_FS_FUNCS = frozenset({
    "replace", "remove", "unlink", "makedirs", "mkdir", "rmdir", "rename",
    "renames", "link", "symlink", "walk", "listdir", "scandir", "chmod",
    "chown", "truncate", "utime", "stat", "lstat", "access",
})

_OS_PATH_FS_FUNCS = frozenset({
    "exists", "isfile", "isdir", "getsize", "getmtime", "getatime",
    "getctime", "samefile", "realpath",
})

#: Methods distinctive enough to mean pathlib I/O whatever the receiver.
_PATHLIKE_FS_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes", "touch",
    "rglob", "iterdir",
})

_OS_PROC_FUNCS = frozenset({"getpid", "fork", "forkpty", "kill", "system",
                            "popen", "waitpid"})

_POOL_METHODS = frozenset({"map", "imap", "imap_unordered", "map_async",
                           "starmap", "starmap_async", "apply",
                           "apply_async", "submit"})

_POOL_RECEIVER_HINTS = ("pool", "executor")

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end",
})

_MUTABLE_VALUE_NODES = (ast.Dict, ast.List, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)

_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict",
                                "OrderedDict", "deque", "Counter"})


def parse_declared_caches(source: str) -> Set[int]:
    """Line numbers carrying a ``# mapglint: declared-cache`` pragma."""
    lines: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _DECLARED_CACHE_RE.search(line):
            lines.add(lineno)
    return lines


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_VALUE_NODES):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else "")
        return name in _MUTABLE_FACTORIES
    return False


def _line_text(lines: List[str], line: int) -> str:
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _source_repr(source: str, node: ast.AST, limit: int = 60) -> str:
    segment = ast.get_source_segment(source, node)
    if segment is None:
        return ""
    segment = " ".join(segment.split())
    return segment if len(segment) <= limit else segment[:limit - 3] + "..."


def _call_base(func: ast.Attribute) -> str:
    """Dotted spelling of everything left of the final attribute hop."""
    return dotted_name(func.value)


# ---- per-function effect visitor -------------------------------------------


class _EffectVisitor(ast.NodeVisitor):
    """Collects the local effects of one function body.

    ``write_watch`` are module globals whose mutation is an effect;
    ``read_watch`` the (sub)set whose *reads* are also effects (globals
    some function mutates after import).  Names the function rebinds
    locally (without a ``global`` declaration) shadow the module binding
    and are excluded by the caller.
    """

    def __init__(self, lines: List[str], source: str,
                 write_watch: FrozenSet[str], read_watch: FrozenSet[str],
                 global_decls: FrozenSet[str]) -> None:
        self.lines = lines
        self.source = source
        self.write_watch = write_watch
        self.read_watch = read_watch
        self.global_decls = global_decls
        self.effects: List[Effect] = []

    # -- helpers -----------------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, detail: str,
              symbol: str = "") -> None:
        line = getattr(node, "lineno", 1)
        self.effects.append(Effect(
            kind=kind, detail=detail, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            line_text=_line_text(self.lines, line), symbol=symbol))

    # -- env ----------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and node.attr == "environ" and \
                isinstance(node.value, ast.Name) and node.value.id == "os":
            self._emit(ENV, node, "reads os.environ")
        self.generic_visit(node)

    # -- globals -------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.read_watch:
            self._emit(GLOBAL_READ, node,
                       f"reads mutable module global '{node.id}'",
                       symbol=node.id)
        self.generic_visit(node)

    def _check_write_target(self, target: ast.AST, node: ast.AST) -> None:
        base = target
        subscripted = False
        while isinstance(base, ast.Subscript):
            base = base.value
            subscripted = True
        if isinstance(base, ast.Name):
            name = base.id
            if name not in self.write_watch:
                return
            if subscripted or name in self.global_decls:
                verb = ("mutates" if subscripted else "rebinds")
                self._emit(GLOBAL_WRITE, node,
                           f"{verb} module global '{name}'", symbol=name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target, node)
        # An augmented write is also a read of the previous value.
        base = node.target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.read_watch:
            self._emit(GLOBAL_READ, node,
                       f"reads mutable module global '{base.id}'",
                       symbol=base.id)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_bare_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attr_call(node, func)
        self.generic_visit(node)

    def _check_bare_call(self, node: ast.Call, name: str) -> None:
        if name == "open":
            self._emit(FS, node, "open() touches the filesystem")
        elif name == "getenv":
            self._emit(ENV, node, "getenv() reads the environment")
        elif name in ("Pool", "Process"):
            self._emit(PROCESS, node, f"{name}() manages processes")

    def _check_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = _call_base(func)
        attr = func.attr
        rendering = f"{base}.{attr}" if base else attr
        if base == "os":
            if attr == "getenv":
                self._emit(ENV, node, "os.getenv() reads the environment")
            elif attr in _OS_FS_FUNCS:
                self._emit(FS, node, f"{rendering}() touches the filesystem")
            elif attr in _OS_PROC_FUNCS:
                self._emit(PROCESS, node,
                           f"{rendering}() reads/manages process state")
        elif base == "os.environ":
            self._emit(ENV, node, "reads os.environ")
        elif base == "os.path" and attr in _OS_PATH_FS_FUNCS:
            self._emit(FS, node, f"{rendering}() inspects the filesystem")
        elif base in ("shutil", "tempfile"):
            self._emit(FS, node, f"{rendering}() touches the filesystem")
        elif base == "subprocess":
            self._emit(PROCESS, node, f"{rendering}() spawns a process")
        elif base in ("multiprocessing", "mp") or \
                base.startswith("multiprocessing."):
            self._emit(PROCESS, node, f"{rendering}() manages processes")
        elif attr in ("Pool", "Process", "get_context"):
            self._emit(PROCESS, node, f"{rendering}() manages processes")
        elif base in _WALL_CLOCK and attr in _WALL_CLOCK[base]:
            self._emit(CLOCK, node, f"{rendering}() reads the wall clock")
        elif base == "random" and attr in _GLOBAL_RANDOM_FUNCS:
            self._emit(RNG, node,
                       f"{rendering}() draws from the global RNG")
        elif base in ("np.random", "numpy.random"):
            self._emit(RNG, node,
                       f"{rendering}() draws from the global NumPy RNG")
        elif attr in _PATHLIKE_FS_METHODS:
            self._emit(FS, node, f".{attr}() touches the filesystem")
        elif isinstance(func.value, ast.Name) and \
                func.value.id in self.write_watch and \
                attr in _MUTATOR_METHODS:
            self._emit(GLOBAL_WRITE, node,
                       f"mutates module global '{func.value.id}' via "
                       f".{attr}()", symbol=func.value.id)

    # Nested defs are analyzed as functions of their own; don't double-count.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _MutationScanner(ast.NodeVisitor):
    """Module-wide prepass: which globals do function bodies mutate?"""

    def __init__(self, candidates: FrozenSet[str]) -> None:
        self.candidates = candidates
        self.mutated: Set[str] = set()
        self.global_decls: Set[str] = set()

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.global_decls.add(name)
            self.mutated.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in self.candidates and \
                func.attr in _MUTATOR_METHODS:
            self.mutated.add(func.value.id)
        self.generic_visit(node)

    def _check(self, target: ast.AST) -> None:
        subscripted = False
        while isinstance(target, ast.Subscript):
            target = target.value
            subscripted = True
        if isinstance(target, ast.Name) and subscripted and \
                target.id in self.candidates:
            self.mutated.add(target.id)


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names a function rebinds without declaring them global."""
    bound: Set[str] = set()
    global_decls: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.For):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    return bound - global_decls


class _PoolSiteCollector(ast.NodeVisitor):
    """Finds pool/process submission sites inside one function body."""

    def __init__(self, lines: List[str], source: str, qualname: str,
                 into: List[PoolSubmission]) -> None:
        self.lines = lines
        self.source = source
        self.qualname = qualname
        self.into = into

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        worker: Optional[ast.AST] = None
        method = ""
        receiver = ""
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            receiver = dotted_name(func.value)
            tail = receiver.lower().rsplit(".", 1)[-1]
            if any(hint in tail for hint in _POOL_RECEIVER_HINTS):
                method = func.attr
                worker = node.args[0] if node.args else None
                if worker is None:
                    for keyword in node.keywords:
                        if keyword.arg in ("func", "fn"):
                            worker = keyword.value
        elif (isinstance(func, ast.Name) and func.id == "Process") or \
                (isinstance(func, ast.Attribute) and func.attr == "Process"):
            method = "Process"
            receiver = dotted_name(func.value) \
                if isinstance(func, ast.Attribute) else ""
            for keyword in node.keywords:
                if keyword.arg == "target":
                    worker = keyword.value
        if method and worker is not None:
            self._record(node, method, receiver, worker)
        self.generic_visit(node)

    def _record(self, node: ast.Call, method: str, receiver: str,
                worker: ast.AST) -> None:
        if isinstance(worker, ast.Lambda):
            kind, name = "lambda", ""
        elif isinstance(worker, ast.Name):
            kind, name = "name", worker.id
        elif isinstance(worker, ast.Attribute):
            kind, name = "attribute", worker.attr
        else:
            kind, name = "other", ""
        others = [arg for arg in node.args if arg is not worker]
        others.extend(kw.value for kw in node.keywords
                      if kw.value is not worker)
        lambda_in_args = any(isinstance(sub, ast.Lambda)
                             for other in others
                             for sub in ast.walk(other))
        open_in_args = any(
            isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            and sub.func.id == "open"
            for other in others for sub in ast.walk(other))
        self.into.append(PoolSubmission(
            method=method, worker_kind=kind, worker_name=name,
            worker_repr=_source_repr(self.source, worker),
            receiver=receiver, in_function=self.qualname,
            line=node.lineno, col=node.col_offset + 1,
            line_text=_line_text(self.lines, node.lineno),
            lambda_in_args=lambda_in_args, open_in_args=open_in_args))


# ---- module extraction -----------------------------------------------------


def extract_module_effects(path: str, source: str,
                           tree: ast.Module) -> ModuleEffects:
    """Phase 1: the :class:`ModuleEffects` record for one parsed module."""
    norm = path.replace("\\", "/")
    lines = source.splitlines()
    declared_lines = parse_declared_caches(source)

    # Module-level bindings: which names hold mutable containers, which
    # definitions carry the declared-cache pragma.
    mutable: Set[str] = set()
    declared: Set[str] = set()
    class_attrs: List[ClassAttrInfo] = []
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if stmt.lineno in declared_lines:
                declared.add(target.id)
            if value is not None and _is_mutable_value(value):
                mutable.add(target.id)

    # Mutable class-body attributes (shared across every instance).
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            value = None
            name = ""
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                name, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                name, value = stmt.target.id, stmt.value
            if value is not None and _is_mutable_value(value) and \
                    stmt.lineno not in declared_lines:
                class_attrs.append(ClassAttrInfo(
                    class_name=node.name, attr=name, line=stmt.lineno,
                    col=stmt.col_offset + 1,
                    line_text=_line_text(lines, stmt.lineno)))

    # Which globals does any function body mutate after import?
    scanner = _MutationScanner(frozenset(mutable))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            scanner.visit(node)
    mutated = (set(scanner.mutated) | set(scanner.global_decls)) - declared
    write_watch = frozenset((mutable | scanner.global_decls) - declared)
    read_watch = frozenset(mutated)

    functions: List[FunctionEffects] = []
    pool_sites: List[PoolSubmission] = []
    nested: Set[str] = set()

    def analyze(func: ast.AST, class_name: str) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = f"{class_name}.{func.name}" if class_name else func.name
        qualname = f"{norm}::{qual}"
        locals_ = frozenset(_local_bindings(func))
        visitor = _EffectVisitor(
            lines, source,
            write_watch=frozenset(write_watch - locals_),
            read_watch=frozenset(read_watch - locals_),
            global_decls=frozenset(scanner.global_decls))
        for stmt in func.body:
            visitor.visit(stmt)
        if visitor.effects:
            functions.append(FunctionEffects(
                qualname=qualname, name=func.name, line=func.lineno,
                effects=tuple(visitor.effects)))
        collector = _PoolSiteCollector(lines, source, qualname, pool_sites)
        for stmt in func.body:
            collector.visit(stmt)

    def walk_body(body: List[ast.stmt], class_name: str = "",
                  in_function: bool = False) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    nested.add(stmt.name)
                analyze(stmt, class_name)
                walk_body(stmt.body, class_name=class_name, in_function=True)
            elif isinstance(stmt, ast.ClassDef):
                walk_body(stmt.body, class_name=stmt.name,
                          in_function=in_function)

    walk_body(tree.body)

    # Module-level statements: import-time effects (an env read at import
    # is just as invisible to the cache key as one inside a function).
    module_stmts = [stmt for stmt in tree.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef, ast.Import,
                                             ast.ImportFrom))]
    if module_stmts:
        visitor = _EffectVisitor(lines, source, write_watch=frozenset(),
                                 read_watch=frozenset(),
                                 global_decls=frozenset())
        for stmt in module_stmts:
            visitor.visit(stmt)
        if visitor.effects:
            functions.append(FunctionEffects(
                qualname=f"{norm}::<module>", name="<module>", line=1,
                effects=tuple(visitor.effects)))
        collector = _PoolSiteCollector(lines, source, f"{norm}::<module>",
                                       pool_sites)
        for stmt in module_stmts:
            collector.visit(stmt)

    return ModuleEffects(
        path=norm,
        functions=tuple(functions),
        pool_submissions=tuple(pool_sites),
        class_mutable_attrs=tuple(class_attrs),
        mutable_globals=frozenset(mutable),
        mutated_globals=frozenset(mutated),
        declared_caches=frozenset(declared),
        nested_functions=frozenset(nested),
    )


# ---- phase 2: transitive closure over the call graph -----------------------


@dataclass(frozen=True)
class ReachedEffect:
    """One effect visible from a root, with the function it lives in."""

    origin: str                # qualname of the function with the effect
    effect: Effect


class EffectPropagator:
    """Fixpoint closure of per-function effects over resolved calls.

    Edges follow the agreement rule: a call contributes its callee's
    transitive effects only when the bare name resolves to **exactly one**
    definition.  The transfer function is set union — monotone over the
    powerset lattice of ``(origin, effect)`` pairs — so repeated sweeps
    reach the least fixpoint, cycles included.
    """

    def __init__(self, model: "object") -> None:
        # ``model`` is a ProjectModel; typed loosely to avoid a cycle.
        local: Dict[str, FrozenSet[ReachedEffect]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            module_effects = getattr(summary, "module_effects", None)
            if module_effects is None:
                continue
            for info in module_effects.functions:
                local[info.qualname] = frozenset(
                    ReachedEffect(origin=info.qualname, effect=effect)
                    for effect in info.effects)
        edges: Dict[str, Tuple[str, ...]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            for info in summary.functions:
                targets: List[str] = []
                for call in info.calls:
                    candidates = model.resolve(call.name)  # type: ignore[attr-defined]
                    if len(candidates) == 1:
                        targets.append(candidates[0].qualname)
                edges[info.qualname] = tuple(dict.fromkeys(targets))
        self._edges = edges
        self._transitive = self._fixpoint(local, edges)

    @staticmethod
    def _fixpoint(local: Dict[str, FrozenSet[ReachedEffect]],
                  edges: Dict[str, Tuple[str, ...]]
                  ) -> Dict[str, FrozenSet[ReachedEffect]]:
        state: Dict[str, Set[ReachedEffect]] = {
            qualname: set(local.get(qualname, frozenset()))
            for qualname in sorted(set(edges) | set(local))}
        changed = True
        while changed:
            changed = False
            for qualname in sorted(state):
                current = state[qualname]
                before = len(current)
                for callee in edges.get(qualname, ()):
                    reached = state.get(callee)
                    if reached:
                        current |= reached
                if len(current) != before:
                    changed = True
        return {qualname: frozenset(reached)
                for qualname, reached in state.items()}

    def transitive(self, qualname: str) -> FrozenSet[ReachedEffect]:
        """Every ``(origin, effect)`` reachable from ``qualname``."""
        return self._transitive.get(qualname, frozenset())

    def call_path(self, root: str, origin: str) -> List[str]:
        """A shortest root→origin chain over the propagated edges."""
        if root == origin:
            return [root]
        parents: Dict[str, str] = {root: ""}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                for callee in self._edges.get(qualname, ()):
                    if callee in parents:
                        continue
                    parents[callee] = qualname
                    if callee == origin:
                        chain = [callee]
                        while parents[chain[-1]]:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return [root, origin]


def format_chain(path_names: List[str]) -> str:
    """Render a call chain compactly: drop module prefixes, arrow-join."""
    return " -> ".join(name.split("::", 1)[-1] for name in path_names)
