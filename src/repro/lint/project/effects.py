"""Effect inference for the whole-program analyzer.

The dimension lattice (:mod:`repro.lint.project.dimensions`) answers *what
quantity* an expression denotes; this module answers *what the world does
to a function and what the function does to the world*.  Phase 1 extracts,
per function, a set of :class:`Effect` facts — environment-variable reads,
filesystem access, global-RNG draws, wall-clock reads, process/pool
management, and reads/writes of mutable module globals — each with the
exact source site as evidence.  Phase 2 (:class:`EffectPropagator`)
closes those local facts transitively over the resolved call graph with a
fixpoint over the effect lattice (a powerset lattice: union is the join,
the bottom element is the empty set, and every transfer function is
monotone, so the fixpoint exists and is reached in finitely many sweeps).

Effects are what turn the execution engine's correctness assumptions into
machine-checked facts:

* a value that reaches simulation state from an **env read** or a mutable
  **module global** is invisible to the ``JobSpec``/source digest that
  addresses the result cache — a stale-cache hazard (CACHE01);
* a function submitted to a ``multiprocessing`` pool must be **effect-free**
  beyond its payload, or worker scheduling leaks into results (PURE01);
* pool payloads must be **plain-picklable** (PAR01), which is a *shape*
  fact recorded here as :class:`PoolSubmission`.

Call-graph edges follow the project's agreement philosophy: effects
propagate only through **unambiguously resolved** calls (exactly one
definition for the bare name).  An ambiguous or unresolvable callee
contributes nothing — the engine under-approximates rather than guesses,
so every reported effect chain is real.

A module global that is a *deliberate, content-pure memo* (a cache whose
value is derived entirely from the payload or the source tree) can be
declared on its definition line::

    _WORKER_STORE = None  # mapglint: declared-cache

Declared caches produce no global-read/global-write effects; the
declaration is the author's auditable claim that the memo cannot change
any result, placed where a reviewer will see it.

Since the worker-pool and daemon roadmap items make the repo genuinely
concurrent, phase 1 also extracts a **concurrency model**:

* **spawn sites** — thread and async-task entry points
  (``threading.Thread(target=...)``, ``asyncio.create_task``); together
  with the pool submissions already recorded, these are the roots from
  which concurrent execution can reach shared state (CONC01, CONC03);
* **lock structure** — lock-typed module globals, every ``with lock:``
  block, and bare ``acquire``/``release`` calls with their control-flow
  context (CONC02), plus the statically-known set of locks held at each
  write site;
* **guarded fields** — a ``# mapglint: guarded-by=<lock>`` pragma on a
  definition line binds a module global or instance attribute to the
  lock that must be held to write it (CONC01);
* **persistence writes** — every write-mode ``open`` with its path
  spelling, so digest-keyed cache entries can be required to use the
  temp-file + ``os.replace`` publication pattern (CONC04).

The daemon-readiness roadmap items also need **exception flow**: at
10^4–10^6 sweep cells, one escaped exception kills a pool join and one
swallowed one corrupts a run silently.  Phase 1 therefore extracts an
**error-flow model** per function:

* **raise sites** — every explicit ``raise`` with the spelled exception
  type (resolved against the :class:`ReproError` hierarchy in phase 2;
  ``raise err`` of a lowercase local is unknowable and skipped — the
  engine under-approximates rather than guesses);
* **handler spans** — every ``except`` clause with its caught types, the
  try-body line span it protects, and whether the handler re-raises
  (bare ``raise``), raises a replacement, logs, or returns — the facts
  ERR01/ERR02 need to tell a boundary from a swallow;
* **protected spans** — try bodies with a handler or ``finally``, so
  ERR03 can see that a state mutation is exception-guarded;
* **resource sites** — ``open``/``Pool``/``Executor``/``tempfile``
  acquisitions with their ``with``/close/escape context (RES01);
* **exception classes** — every ``class X(Base, ...)`` definition, so
  phase 2 can resolve project exception subtyping.

A function that *intentionally* swallows exceptions (a cache ``load``
where a corrupt entry must mean a miss, a pool worker that must return a
failure record instead of dying) declares it on its definition line::

    def load(self, spec):  # mapglint: error-boundary

The pragma is the author's auditable claim that swallowing is the
contract there; ERR01/ERR02 trust it and phase 2 records the qualname in
:attr:`ModuleEffects.error_boundaries`.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.project.dimensions import dotted_name

#: Bump when the effect-summary layout or inference changes; folded into
#: the result-cache key (see :mod:`repro.lint.cache`) so upgrading the
#: linter can never serve stale phase-1 effect summaries.
#: 3: ModuleEffects grew the error-flow model (raise sites, handler
#: spans, protected spans, resource sites, exception classes, and the
#: error-boundary pragma) for ERR01–ERR04/RES01.
EFFECT_SCHEMA = 3

# ---- the effect alphabet ---------------------------------------------------

ENV = "env"                    # os.environ / os.getenv reads
FS = "fs"                      # filesystem reads or writes
RNG = "rng"                    # process-global RNG draws
CLOCK = "clock"                # wall-clock reads
PROCESS = "process"            # process/pool management, pids
GLOBAL_WRITE = "global-write"  # post-import mutation of a module global
GLOBAL_READ = "global-read"    # read of a post-import-mutated module global
OBS_EMIT = "obs-emit"          # recorder/metrics emission (from call sites)
THREAD = "thread-spawn"        # thread/async-task creation (CONC03)
LOCK = "lock-acquire"          # lock acquisition, with-block or bare call
GUARDED_WRITE = "guarded-write"    # write to a guarded-by bound symbol
SHARED_WRITE = "shared-attr-write"  # mutation of a class-level mutable attr

#: Every effect kind phase 1 can emit, in display order.
ALL_EFFECTS = (ENV, FS, RNG, CLOCK, PROCESS, GLOBAL_WRITE, GLOBAL_READ,
               OBS_EMIT, THREAD, LOCK, GUARDED_WRITE, SHARED_WRITE)

#: The kinds that make a pool worker impure (PURE01) — everything except
#: recorder emission, which workers never see (recorders are per-process).
IMPURE_KINDS = frozenset({ENV, FS, RNG, CLOCK, PROCESS,
                          GLOBAL_WRITE, GLOBAL_READ})

#: The kinds that make a cached simulation result stale-prone (CACHE01):
#: inputs the JobSpec/source digest cannot see.
CACHE_HAZARD_KINDS = frozenset({ENV, GLOBAL_WRITE, GLOBAL_READ})

#: The concurrency kinds.  Deliberately *not* part of IMPURE_KINDS or
#: CACHE_HAZARD_KINDS: they have dedicated rules (CONC01/CONC03) with
#: their own reachability conditions, and folding them into PURE01 or
#: CACHE01 would double-report every finding.
CONCURRENCY_KINDS = frozenset({THREAD, LOCK, GUARDED_WRITE, SHARED_WRITE})


@dataclass(frozen=True)
class Effect:
    """One observed effect with its evidence site."""

    kind: str                  # one of ALL_EFFECTS
    detail: str                # human-readable evidence ("os.getenv('X')")
    line: int
    col: int
    line_text: str = ""
    symbol: str = ""           # the global/attr involved, when applicable
    locks_held: Tuple[str, ...] = ()  # with-blocks enclosing the site


@dataclass(frozen=True)
class FunctionEffects:
    """The locally observed effects of one function or method."""

    qualname: str              # matches FunctionInfo.qualname
    name: str
    line: int
    effects: Tuple[Effect, ...]


@dataclass(frozen=True)
class ClassAttrInfo:
    """One mutable class-body attribute (a latent shared cache)."""

    class_name: str
    attr: str
    line: int
    col: int
    line_text: str = ""


@dataclass(frozen=True)
class PoolSubmission:
    """One site handing work to a multiprocessing pool/process."""

    method: str                # "map", "imap_unordered", "Process", ...
    worker_kind: str           # "name" | "lambda" | "attribute" | "other"
    worker_name: str           # bare name when worker_kind == "name"
    worker_repr: str           # source spelling of the worker expression
    receiver: str              # dotted receiver ("pool"), may be ""
    in_function: str           # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""
    lambda_in_args: bool = False
    open_in_args: bool = False
    locks_held: Tuple[str, ...] = ()  # locks held at the submission site


@dataclass(frozen=True)
class SpawnSite:
    """One thread or async-task creation site (a concurrent entry point)."""

    kind: str                  # "thread" | "task"
    api: str                   # source spelling ("threading.Thread", ...)
    worker_kind: str           # "name" | "lambda" | "attribute" | "other"
    worker_name: str           # bare name when worker_kind == "name"
    worker_repr: str           # source spelling of the worker expression
    in_function: str           # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""


@dataclass(frozen=True)
class LockOp:
    """One lock operation: a ``with lock:`` block or a bare acquire/release."""

    op: str                    # "with" | "acquire" | "release"
    lock: str                  # dotted lock spelling ("self._lock")
    function: str              # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""
    conditional: bool = False  # under an if/while/for/except branch
    in_finally: bool = False   # directly inside a finally block
    held_before: Tuple[str, ...] = ()  # locks already held (order pairs)


@dataclass(frozen=True)
class GuardedBinding:
    """One ``# mapglint: guarded-by=<lock>`` field-to-lock binding."""

    symbol: str                # global name or attribute name ("_metrics")
    lock: str                  # dotted lock spelling that must be held
    scope: str                 # "global" | "attr"
    line: int
    col: int
    line_text: str = ""


@dataclass(frozen=True)
class FileWrite:
    """One write-mode ``open`` call (a persistence write site)."""

    path_repr: str             # source spelling of the path expression
    mode: str                  # the mode string ("w", "wb", "a", ...)
    in_function: str           # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""
    replace_in_function: bool = False  # os.replace() in the same function


@dataclass(frozen=True)
class RaiseSite:
    """One explicit ``raise`` statement with its spelled exception type.

    ``exc_type`` is the last segment of the raised expression's spelling
    (``errors.ConfigError`` records as ``ConfigError``); a bare re-raise
    records ``exc_type=""``/``is_reraise=True`` and an unknowable raise
    (``raise err`` of a lowercase local) is not recorded at all.
    """

    exc_type: str              # class name, "" for a bare re-raise
    in_function: str           # qualname of the enclosing function
    in_handler: bool           # lexically inside an except suite
    line: int
    col: int
    line_text: str = ""
    is_reraise: bool = False   # bare ``raise`` (re-raise of the caught exc)


@dataclass(frozen=True)
class HandlerInfo:
    """One ``except`` clause with the try-body span it protects.

    ``caught`` holds the last segment of each caught spelling in source
    order (empty for a bare ``except:``); a caught expression the
    extractor cannot name records as ``"*"`` and phase 2 treats it as a
    catch-all (under-approximating escapes, never inventing them).
    """

    in_function: str           # qualname of the enclosing function
    caught: Tuple[str, ...]    # caught type names, () for bare except
    is_bare: bool              # ``except:`` with no type at all
    try_start: int             # first line of the protected try body
    try_end: int               # last line of the protected try body
    line: int                  # the ``except`` line
    col: int
    line_text: str = ""
    reraises: bool = False     # bare ``raise`` in the handler suite
    raises_new: bool = False   # typed ``raise X`` in the handler suite
    logs: bool = False         # print()/log/warn-style call in the suite
    returns: bool = False      # ``return`` in the handler suite


@dataclass(frozen=True)
class ProtectedSpan:
    """One try-body line span guarded by a handler or ``finally``."""

    in_function: str
    start: int                 # first line of the try body
    end: int                   # last line of the try body
    has_finally: bool
    has_handlers: bool


@dataclass(frozen=True)
class ResourceSite:
    """One resource acquisition with its lifecycle context.

    ``escapes`` is true when ownership visibly leaves the function —
    returned/yielded, stored on ``self``/a global, passed to another
    call, or placed in a container — in which case the closer lives
    elsewhere and RES01 stays quiet.
    """

    kind: str                  # "open" | "pool" | "executor" | "tempfile"
    api: str                   # source spelling ("open", "tempfile.mkstemp")
    var: str                   # bound local name, "" when unnamed
    in_function: str           # qualname of the enclosing function
    line: int
    col: int
    line_text: str = ""
    in_with: bool = False      # acquired as a ``with`` context manager
    escapes: bool = False      # ownership leaves the function
    closed: bool = False       # var.close()/terminate()/shutdown() seen
    close_line: int = 0
    close_in_finally: bool = False


@dataclass(frozen=True)
class ExceptionClassInfo:
    """One project class definition with its base spellings.

    Recorded for *every* class with bases — phase 2's exception
    hierarchy only ever queries names that appear in raise/except
    clauses, so the extra entries are inert.
    """

    name: str
    bases: Tuple[str, ...]     # last segment of each base spelling
    line: int


@dataclass(frozen=True)
class ModuleEffects:
    """Everything effect-related phase 2 needs from one module."""

    path: str
    functions: Tuple[FunctionEffects, ...] = ()
    pool_submissions: Tuple[PoolSubmission, ...] = ()
    class_mutable_attrs: Tuple[ClassAttrInfo, ...] = ()
    mutable_globals: FrozenSet[str] = frozenset()
    mutated_globals: FrozenSet[str] = frozenset()
    declared_caches: FrozenSet[str] = frozenset()
    nested_functions: FrozenSet[str] = frozenset()
    spawn_sites: Tuple[SpawnSite, ...] = ()
    lock_ops: Tuple[LockOp, ...] = ()
    guarded_bindings: Tuple[GuardedBinding, ...] = ()
    file_writes: Tuple[FileWrite, ...] = ()
    lock_globals: FrozenSet[str] = frozenset()
    raise_sites: Tuple[RaiseSite, ...] = ()
    handlers: Tuple[HandlerInfo, ...] = ()
    protected_spans: Tuple[ProtectedSpan, ...] = ()
    resource_sites: Tuple[ResourceSite, ...] = ()
    exception_classes: Tuple[ExceptionClassInfo, ...] = ()
    error_boundaries: FrozenSet[str] = frozenset()


# ---- detection tables ------------------------------------------------------

_DECLARED_CACHE_RE = re.compile(r"#\s*mapglint:\s*declared-cache\b")

_ERROR_BOUNDARY_RE = re.compile(r"#\s*mapglint:\s*error-boundary\b")

_GUARDED_BY_RE = re.compile(
    r"#\s*mapglint:\s*guarded-by=([A-Za-z_][A-Za-z0-9_.]*)")

#: Constructors whose result is a lock object.
_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                             "BoundedSemaphore"})

#: Name segments marking a receiver as lock-like (``self._lock``,
#: ``_CACHE_MUTEX``, ``state_cond`` ...).  Matching by spelling keeps the
#: model honest about what it can know statically; locks the convention
#: cannot name should be renamed, not special-cased.  Segments are
#: underscore-split words of the dotted tail: ``blocked_cycles`` has no
#: lock segment, ``cache_lock`` does.
_LOCK_NAME_HINTS = frozenset({"mutex", "sem", "semaphore", "cond",
                              "condition"})

#: ``*lock`` segments that are not locks (a clock is a clock).
_NOT_A_LOCK = frozenset({"clock", "block", "unblock"})

#: Thread/async-task creation: the task-spawning attribute calls.
_TASK_SPAWN_FUNCS = frozenset({"create_task", "ensure_future",
                               "run_coroutine_threadsafe"})

_WRITE_MODE_CHARS = frozenset("wax+")

_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns", "perf_counter", "perf_counter_ns",
                       "monotonic", "monotonic_ns", "process_time"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

_OS_FS_FUNCS = frozenset({
    "replace", "remove", "unlink", "makedirs", "mkdir", "rmdir", "rename",
    "renames", "link", "symlink", "walk", "listdir", "scandir", "chmod",
    "chown", "truncate", "utime", "stat", "lstat", "access",
})

_OS_PATH_FS_FUNCS = frozenset({
    "exists", "isfile", "isdir", "getsize", "getmtime", "getatime",
    "getctime", "samefile", "realpath",
})

#: Methods distinctive enough to mean pathlib I/O whatever the receiver.
_PATHLIKE_FS_METHODS = frozenset({
    "write_text", "read_text", "write_bytes", "read_bytes", "touch",
    "rglob", "iterdir",
})

_OS_PROC_FUNCS = frozenset({"getpid", "fork", "forkpty", "kill", "system",
                            "popen", "waitpid"})

_POOL_METHODS = frozenset({"map", "imap", "imap_unordered", "map_async",
                           "starmap", "starmap_async", "apply",
                           "apply_async", "submit"})

_POOL_RECEIVER_HINTS = ("pool", "executor")

#: Container methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "extend", "insert", "setdefault", "pop",
    "popitem", "clear", "remove", "discard", "move_to_end",
})

_MUTABLE_VALUE_NODES = (ast.Dict, ast.List, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)

_MUTABLE_FACTORIES = frozenset({"dict", "list", "set", "defaultdict",
                                "OrderedDict", "deque", "Counter"})


def parse_declared_caches(source: str) -> Set[int]:
    """Line numbers carrying a ``# mapglint: declared-cache`` pragma."""
    lines: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _DECLARED_CACHE_RE.search(line):
            lines.add(lineno)
    return lines


def parse_guarded_pragmas(source: str) -> Dict[int, str]:
    """``line -> lock`` for every ``# mapglint: guarded-by=<lock>`` pragma."""
    pragmas: Dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _GUARDED_BY_RE.search(line)
        if match:
            pragmas[lineno] = match.group(1)
    return pragmas


def parse_error_boundaries(source: str) -> Set[int]:
    """Line numbers carrying a ``# mapglint: error-boundary`` pragma."""
    lines: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        if _ERROR_BOUNDARY_RE.search(line):
            lines.add(lineno)
    return lines


def is_lock_name(dotted: str) -> bool:
    """Whether a dotted spelling denotes a lock by naming convention."""
    tail = dotted.rsplit(".", 1)[-1].lower()
    for segment in re.split(r"[^a-z0-9]+", tail):
        if segment in _LOCK_NAME_HINTS:
            return True
        if segment.endswith("lock") and segment not in _NOT_A_LOCK:
            return True
    return False


def _extract_guarded_bindings(tree: ast.Module, lines: List[str],
                              pragmas: Dict[int, str]
                              ) -> List[GuardedBinding]:
    """Resolve each guarded-by pragma to the symbol its line defines.

    A pragma on a module-level ``X = ...`` binds the global ``X``; on a
    class-body or ``self.X = ...`` definition it binds the attribute
    ``X`` (any receiver — attribute bindings are matched by name within
    the defining module).
    """
    if not pragmas:
        return []
    bindings: List[GuardedBinding] = []
    module_level = {id(stmt) for stmt in tree.body}

    def record(target: ast.AST, stmt: ast.stmt) -> None:
        lock = pragmas.get(stmt.lineno)
        if lock is None:
            return
        if isinstance(target, ast.Attribute):
            symbol, scope = target.attr, "attr"
        elif isinstance(target, ast.Name):
            scope = "global" if id(stmt) in module_level else "attr"
            symbol = target.id
        else:
            return
        bindings.append(GuardedBinding(
            symbol=symbol, lock=lock, scope=scope, line=stmt.lineno,
            col=stmt.col_offset + 1,
            line_text=_line_text(lines, stmt.lineno)))

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                record(target, node)
        elif isinstance(node, ast.AnnAssign):
            record(node.target, node)
    return bindings


class _LockSpans:
    """Line ranges over which each lock-like ``with`` item is held.

    Built once per function body; ``held_at(line)`` answers which locks
    statically enclose a site.  The context expressions themselves are
    evaluated before acquisition, so a ``with`` item's own line counts as
    held only when the block's body starts on that same line.
    """

    def __init__(self, body: List[ast.stmt]) -> None:
        self._spans: List[Tuple[int, int, str]] = []
        for stmt in body:
            self._collect(stmt)

    def _collect(self, node: ast.AST) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested defs are analyzed as functions of their own
        if isinstance(node, (ast.With, ast.AsyncWith)) and node.body:
            start = node.body[0].lineno
            end = getattr(node, "end_lineno", None) or start
            for item in node.items:
                name = dotted_name(item.context_expr)
                if name and is_lock_name(name):
                    self._spans.append((start, end, name))
        for child in ast.iter_child_nodes(node):
            self._collect(child)

    def held_at(self, line: int) -> Tuple[str, ...]:
        held = [name for start, end, name in self._spans
                if start <= line <= end]
        return tuple(dict.fromkeys(held))


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, _MUTABLE_VALUE_NODES):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else "")
        return name in _MUTABLE_FACTORIES
    return False


def _line_text(lines: List[str], line: int) -> str:
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _source_repr(source: str, node: ast.AST, limit: int = 60) -> str:
    segment = ast.get_source_segment(source, node)
    if segment is None:
        return ""
    segment = " ".join(segment.split())
    return segment if len(segment) <= limit else segment[:limit - 3] + "..."


def _call_base(func: ast.Attribute) -> str:
    """Dotted spelling of everything left of the final attribute hop."""
    return dotted_name(func.value)


# ---- per-function effect visitor -------------------------------------------


class _EffectVisitor(ast.NodeVisitor):
    """Collects the local effects of one function body.

    ``write_watch`` are module globals whose mutation is an effect;
    ``read_watch`` the (sub)set whose *reads* are also effects (globals
    some function mutates after import).  Names the function rebinds
    locally (without a ``global`` declaration) shadow the module binding
    and are excluded by the caller.

    The concurrency extension: ``guard_globals``/``guard_attrs`` map
    guarded-by-bound symbols to their lock, ``attr_watch`` holds the
    mutable class-body attribute names whose instance/class mutation is a
    :data:`SHARED_WRITE`, and ``lock_spans`` supplies the statically-held
    lock set attached to every emitted effect.  ``emit_guarded`` is off
    inside ``__init__``/``__new__`` (and at module level), where writing a
    guarded field *is* its initialization.
    """

    def __init__(self, lines: List[str], source: str,
                 write_watch: FrozenSet[str], read_watch: FrozenSet[str],
                 global_decls: FrozenSet[str],
                 guard_globals: Optional[Dict[str, str]] = None,
                 guard_attrs: Optional[Dict[str, str]] = None,
                 attr_watch: FrozenSet[str] = frozenset(),
                 guard_def_lines: FrozenSet[int] = frozenset(),
                 lock_spans: Optional[_LockSpans] = None,
                 emit_guarded: bool = True) -> None:
        self.lines = lines
        self.source = source
        self.write_watch = write_watch
        self.read_watch = read_watch
        self.global_decls = global_decls
        self.guard_globals = guard_globals or {}
        self.guard_attrs = guard_attrs or {}
        self.attr_watch = attr_watch
        self.guard_def_lines = guard_def_lines
        self.lock_spans = lock_spans
        self.emit_guarded = emit_guarded
        self.effects: List[Effect] = []

    # -- helpers -----------------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, detail: str,
              symbol: str = "") -> None:
        line = getattr(node, "lineno", 1)
        held = self.lock_spans.held_at(line) if self.lock_spans else ()
        self.effects.append(Effect(
            kind=kind, detail=detail, line=line,
            col=getattr(node, "col_offset", 0) + 1,
            line_text=_line_text(self.lines, line), symbol=symbol,
            locks_held=held))

    # -- env ----------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load) and node.attr == "environ" and \
                isinstance(node.value, ast.Name) and node.value.id == "os":
            self._emit(ENV, node, "reads os.environ")
        self.generic_visit(node)

    # -- globals -------------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load) and node.id in self.read_watch:
            self._emit(GLOBAL_READ, node,
                       f"reads mutable module global '{node.id}'",
                       symbol=node.id)
        self.generic_visit(node)

    def _check_write_target(self, target: ast.AST, node: ast.AST) -> None:
        base = target
        subscripted = False
        while isinstance(base, ast.Subscript):
            base = base.value
            subscripted = True
        if isinstance(base, ast.Name):
            name = base.id
            is_global_write = subscripted or name in self.global_decls
            if name in self.write_watch and is_global_write:
                verb = ("mutates" if subscripted else "rebinds")
                self._emit(GLOBAL_WRITE, node,
                           f"{verb} module global '{name}'", symbol=name)
            if is_global_write:
                self._check_guarded_global(name, node)
        elif isinstance(base, ast.Attribute):
            self._check_attr_write(base.attr, node, subscripted)

    def _check_guarded_global(self, name: str, node: ast.AST) -> None:
        if not self.emit_guarded or name not in self.guard_globals or \
                getattr(node, "lineno", 0) in self.guard_def_lines:
            return
        self._emit(GUARDED_WRITE, node,
                   f"writes guarded global '{name}' "
                   f"(guarded-by={self.guard_globals[name]})", symbol=name)

    def _check_attr_write(self, attr: str, node: ast.AST,
                          subscripted: bool) -> None:
        """A write through ``<recv>.<attr>`` — guarded field or shared attr.

        Guarded attributes are matched by name whatever the receiver
        spelling (``self._metrics`` vs ``registry._metrics``); class-body
        mutable attrs only count when mutated in place (rebinding an
        instance attribute shadows the class attribute instead).
        """
        if getattr(node, "lineno", 0) in self.guard_def_lines:
            return
        if self.emit_guarded and attr in self.guard_attrs:
            self._emit(GUARDED_WRITE, node,
                       f"writes guarded attribute '{attr}' "
                       f"(guarded-by={self.guard_attrs[attr]})", symbol=attr)
        elif subscripted and attr in self.attr_watch:
            self._emit(SHARED_WRITE, node,
                       f"mutates class-level mutable attribute '{attr}'",
                       symbol=attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_write_target(node.target, node)
        # An augmented write is also a read of the previous value.
        base = node.target
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name) and base.id in self.read_watch:
            self._emit(GLOBAL_READ, node,
                       f"reads mutable module global '{base.id}'",
                       symbol=base.id)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_write_target(target, node)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self._check_bare_call(node, func.id)
        elif isinstance(func, ast.Attribute):
            self._check_attr_call(node, func)
        self.generic_visit(node)

    def _check_bare_call(self, node: ast.Call, name: str) -> None:
        if name == "open":
            self._emit(FS, node, "open() touches the filesystem")
        elif name == "getenv":
            self._emit(ENV, node, "getenv() reads the environment")
        elif name in ("Pool", "Process"):
            self._emit(PROCESS, node, f"{name}() manages processes")
        elif name in ("Thread", "Timer"):
            self._emit(THREAD, node, f"{name}() spawns a thread")

    def _check_attr_call(self, node: ast.Call, func: ast.Attribute) -> None:
        base = _call_base(func)
        attr = func.attr
        rendering = f"{base}.{attr}" if base else attr
        if base == "os":
            if attr == "getenv":
                self._emit(ENV, node, "os.getenv() reads the environment")
            elif attr in _OS_FS_FUNCS:
                self._emit(FS, node, f"{rendering}() touches the filesystem")
            elif attr in _OS_PROC_FUNCS:
                self._emit(PROCESS, node,
                           f"{rendering}() reads/manages process state")
        elif base == "os.environ":
            self._emit(ENV, node, "reads os.environ")
        elif base == "os.path" and attr in _OS_PATH_FS_FUNCS:
            self._emit(FS, node, f"{rendering}() inspects the filesystem")
        elif base in ("shutil", "tempfile"):
            self._emit(FS, node, f"{rendering}() touches the filesystem")
        elif base == "subprocess":
            self._emit(PROCESS, node, f"{rendering}() spawns a process")
        elif base in ("multiprocessing", "mp") or \
                base.startswith("multiprocessing."):
            self._emit(PROCESS, node, f"{rendering}() manages processes")
        elif attr in ("Pool", "Process", "get_context"):
            self._emit(PROCESS, node, f"{rendering}() manages processes")
        elif base in _WALL_CLOCK and attr in _WALL_CLOCK[base]:
            self._emit(CLOCK, node, f"{rendering}() reads the wall clock")
        elif base == "random" and attr in _GLOBAL_RANDOM_FUNCS:
            self._emit(RNG, node,
                       f"{rendering}() draws from the global RNG")
        elif base in ("np.random", "numpy.random"):
            self._emit(RNG, node,
                       f"{rendering}() draws from the global NumPy RNG")
        elif base == "threading" and attr in ("Thread", "Timer"):
            self._emit(THREAD, node, f"{rendering}() spawns a thread")
        elif attr in _TASK_SPAWN_FUNCS:
            self._emit(THREAD, node, f"{rendering}() spawns an async task")
        elif attr == "acquire" and base and is_lock_name(base):
            self._emit(LOCK, node, f"acquires lock '{base}' (bare call)",
                       symbol=base)
        elif attr in _PATHLIKE_FS_METHODS:
            self._emit(FS, node, f".{attr}() touches the filesystem")
        elif attr in _MUTATOR_METHODS:
            self._check_mutator_call(node, func, attr)

    def _check_mutator_call(self, node: ast.Call, func: ast.Attribute,
                            attr: str) -> None:
        recv = func.value
        if isinstance(recv, ast.Name):
            if recv.id in self.write_watch:
                self._emit(GLOBAL_WRITE, node,
                           f"mutates module global '{recv.id}' via "
                           f".{attr}()", symbol=recv.id)
            if self.emit_guarded and recv.id in self.guard_globals:
                self._emit(GUARDED_WRITE, node,
                           f"writes guarded global '{recv.id}' via "
                           f".{attr}() "
                           f"(guarded-by={self.guard_globals[recv.id]})",
                           symbol=recv.id)
        elif isinstance(recv, ast.Attribute):
            if self.emit_guarded and recv.attr in self.guard_attrs:
                self._emit(GUARDED_WRITE, node,
                           f"writes guarded attribute '{recv.attr}' via "
                           f".{attr}() "
                           f"(guarded-by={self.guard_attrs[recv.attr]})",
                           symbol=recv.attr)
            elif recv.attr in self.attr_watch:
                self._emit(SHARED_WRITE, node,
                           f"mutates class-level mutable attribute "
                           f"'{recv.attr}' via .{attr}()", symbol=recv.attr)

    # -- locks ---------------------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.AST) -> None:
        for item in node.items:  # type: ignore[attr-defined]
            name = dotted_name(item.context_expr)
            if name and is_lock_name(name):
                self._emit(LOCK, node, f"acquires lock '{name}' "
                           f"(with block)", symbol=name)
        self.generic_visit(node)

    # Nested defs are analyzed as functions of their own; don't double-count.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


class _MutationScanner(ast.NodeVisitor):
    """Module-wide prepass: which globals do function bodies mutate?"""

    def __init__(self, candidates: FrozenSet[str]) -> None:
        self.candidates = candidates
        self.mutated: Set[str] = set()
        self.global_decls: Set[str] = set()

    def visit_Global(self, node: ast.Global) -> None:
        for name in node.names:
            self.global_decls.add(name)
            self.mutated.add(name)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check(node.target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and \
                func.value.id in self.candidates and \
                func.attr in _MUTATOR_METHODS:
            self.mutated.add(func.value.id)
        self.generic_visit(node)

    def _check(self, target: ast.AST) -> None:
        subscripted = False
        while isinstance(target, ast.Subscript):
            target = target.value
            subscripted = True
        if isinstance(target, ast.Name) and subscripted and \
                target.id in self.candidates:
            self.mutated.add(target.id)


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names a function rebinds without declaring them global."""
    bound: Set[str] = set()
    global_decls: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            global_decls.update(node.names)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, ast.For):
            if isinstance(node.target, ast.Name):
                bound.add(node.target.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not func:
                bound.add(node.name)
    args = getattr(func, "args", None)
    if args is not None:
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            bound.add(arg.arg)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
    return bound - global_decls


class _PoolSiteCollector(ast.NodeVisitor):
    """Finds pool/process submission sites inside one function body."""

    def __init__(self, lines: List[str], source: str, qualname: str,
                 into: List[PoolSubmission]) -> None:
        self.lines = lines
        self.source = source
        self.qualname = qualname
        self.into = into

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        worker: Optional[ast.AST] = None
        method = ""
        receiver = ""
        if isinstance(func, ast.Attribute) and func.attr in _POOL_METHODS:
            receiver = dotted_name(func.value)
            tail = receiver.lower().rsplit(".", 1)[-1]
            if any(hint in tail for hint in _POOL_RECEIVER_HINTS):
                method = func.attr
                worker = node.args[0] if node.args else None
                if worker is None:
                    for keyword in node.keywords:
                        if keyword.arg in ("func", "fn"):
                            worker = keyword.value
        elif (isinstance(func, ast.Name) and func.id == "Process") or \
                (isinstance(func, ast.Attribute) and func.attr == "Process"):
            method = "Process"
            receiver = dotted_name(func.value) \
                if isinstance(func, ast.Attribute) else ""
            for keyword in node.keywords:
                if keyword.arg == "target":
                    worker = keyword.value
        if method and worker is not None:
            self._record(node, method, receiver, worker)
        self.generic_visit(node)

    def _record(self, node: ast.Call, method: str, receiver: str,
                worker: ast.AST) -> None:
        if isinstance(worker, ast.Lambda):
            kind, name = "lambda", ""
        elif isinstance(worker, ast.Name):
            kind, name = "name", worker.id
        elif isinstance(worker, ast.Attribute):
            kind, name = "attribute", worker.attr
        else:
            kind, name = "other", ""
        others = [arg for arg in node.args if arg is not worker]
        others.extend(kw.value for kw in node.keywords
                      if kw.value is not worker)
        lambda_in_args = any(isinstance(sub, ast.Lambda)
                             for other in others
                             for sub in ast.walk(other))
        open_in_args = any(
            isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
            and sub.func.id == "open"
            for other in others for sub in ast.walk(other))
        self.into.append(PoolSubmission(
            method=method, worker_kind=kind, worker_name=name,
            worker_repr=_source_repr(self.source, worker),
            receiver=receiver, in_function=self.qualname,
            line=node.lineno, col=node.col_offset + 1,
            line_text=_line_text(self.lines, node.lineno),
            lambda_in_args=lambda_in_args, open_in_args=open_in_args))


class _ConcurrencyCollector:
    """Spawn sites, lock operations, and persistence writes of one body.

    A hand-rolled walker (not a NodeVisitor) so control-flow context —
    ``conditional`` under a branch, ``in_finally`` inside a ``finally``
    suite — travels down the recursion.  Nested function definitions are
    skipped; they are walked as bodies of their own.
    """

    def __init__(self, lines: List[str], source: str, qualname: str,
                 lock_spans: _LockSpans,
                 spawns: List[SpawnSite], lock_ops: List[LockOp],
                 writes: List[FileWrite]) -> None:
        self.lines = lines
        self.source = source
        self.qualname = qualname
        self.lock_spans = lock_spans
        self.spawns = spawns
        self.lock_ops = lock_ops
        self.writes = writes
        self._raw_writes: List[Tuple[str, str, int, int]] = []
        self._has_replace = False

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._walk(stmt, conditional=False, in_finally=False)
        for path_repr, mode, line, col in self._raw_writes:
            self.writes.append(FileWrite(
                path_repr=path_repr, mode=mode, in_function=self.qualname,
                line=line, col=col,
                line_text=_line_text(self.lines, line),
                replace_in_function=self._has_replace))

    def _walk(self, node: ast.AST, conditional: bool,
              in_finally: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Call):
            self._call(node, conditional, in_finally)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with(node, conditional, in_finally)
        if isinstance(node, ast.Try):
            for child in node.body:
                self._walk(child, conditional, in_finally)
            for handler in node.handlers:
                for child in handler.body:
                    self._walk(child, True, in_finally)
            for child in node.orelse:
                self._walk(child, True, in_finally)
            for child in node.finalbody:
                self._walk(child, conditional, True)
            return
        if isinstance(node, (ast.If, ast.While)):
            self._walk(node.test, conditional, in_finally)
            for child in node.body + node.orelse:
                self._walk(child, True, in_finally)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            self._walk(node.iter, conditional, in_finally)
            for child in node.body + node.orelse:
                self._walk(child, True, in_finally)
            return
        for child in ast.iter_child_nodes(node):
            self._walk(child, conditional, in_finally)

    # -- handlers ------------------------------------------------------------

    def _held_excluding(self, line: int, lock: str) -> Tuple[str, ...]:
        return tuple(name for name in self.lock_spans.held_at(line)
                     if name != lock)

    def _call(self, node: ast.Call, conditional: bool,
              in_finally: bool) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in ("Thread", "Timer"):
                self._spawn(node, "thread", func.id,
                            self._thread_worker(node, func.id))
            elif func.id == "open":
                self._open(node)
        elif isinstance(func, ast.Attribute):
            base = _call_base(func)
            attr = func.attr
            if base == "threading" and attr in ("Thread", "Timer"):
                self._spawn(node, "thread", f"{base}.{attr}",
                            self._thread_worker(node, attr))
            elif attr in _TASK_SPAWN_FUNCS:
                worker = node.args[0] if node.args else None
                if isinstance(worker, ast.Call):
                    worker = worker.func
                self._spawn(node, "task",
                            f"{base}.{attr}" if base else attr, worker)
            elif attr in ("acquire", "release") and base and \
                    is_lock_name(base):
                self.lock_ops.append(LockOp(
                    op=attr, lock=base, function=self.qualname,
                    line=node.lineno, col=node.col_offset + 1,
                    line_text=_line_text(self.lines, node.lineno),
                    conditional=conditional, in_finally=in_finally,
                    held_before=self._held_excluding(node.lineno, base)))
            elif base == "os" and attr == "replace":
                self._has_replace = True

    @staticmethod
    def _thread_worker(node: ast.Call, name: str) -> Optional[ast.AST]:
        for keyword in node.keywords:
            if keyword.arg in ("target", "function"):
                return keyword.value
        if name == "Timer" and len(node.args) >= 2:
            return node.args[1]
        return None

    def _spawn(self, node: ast.Call, kind: str, api: str,
               worker: Optional[ast.AST]) -> None:
        if isinstance(worker, ast.Lambda):
            worker_kind, worker_name = "lambda", ""
        elif isinstance(worker, ast.Name):
            worker_kind, worker_name = "name", worker.id
        elif isinstance(worker, ast.Attribute):
            worker_kind, worker_name = "attribute", worker.attr
        else:
            worker_kind, worker_name = "other", ""
        self.spawns.append(SpawnSite(
            kind=kind, api=api, worker_kind=worker_kind,
            worker_name=worker_name,
            worker_repr=_source_repr(self.source, worker)
            if worker is not None else "",
            in_function=self.qualname, line=node.lineno,
            col=node.col_offset + 1,
            line_text=_line_text(self.lines, node.lineno)))

    def _open(self, node: ast.Call) -> None:
        mode = ""
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            mode = node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" and \
                    isinstance(keyword.value, ast.Constant) and \
                    isinstance(keyword.value.value, str):
                mode = keyword.value.value
        if not mode or not (set(mode) & _WRITE_MODE_CHARS):
            return
        path_node = node.args[0] if node.args else None
        self._raw_writes.append((
            _source_repr(self.source, path_node)
            if path_node is not None else "",
            mode, node.lineno, node.col_offset + 1))

    def _with(self, node: ast.AST, conditional: bool,
              in_finally: bool) -> None:
        seen: List[str] = []
        items = node.items  # type: ignore[attr-defined]
        for item in items:
            name = dotted_name(item.context_expr)
            if not name or not is_lock_name(name):
                continue
            held = self._held_excluding(node.lineno, name)
            held = tuple(dict.fromkeys(held + tuple(seen)))
            self.lock_ops.append(LockOp(
                op="with", lock=name, function=self.qualname,
                line=node.lineno, col=node.col_offset + 1,
                line_text=_line_text(self.lines, node.lineno),
                conditional=conditional, in_finally=in_finally,
                held_before=held))
            seen.append(name)


# ---- error-flow collection -------------------------------------------------

#: Receiver methods that release a resource handle.
_CLOSE_METHODS = frozenset({"close", "terminate", "shutdown", "cleanup"})

#: Call names that count as logging inside an except suite.  Matching is
#: by the bare attr/name: ``print``, anything spelled like a logger call,
#: or an explicit stderr write.
_LOG_CALL_NAMES = frozenset({"print", "debug", "info", "warning", "warn",
                             "error", "exception", "critical", "log",
                             "write"})

#: tempfile constructors whose result needs explicit cleanup.
_TEMPFILE_FACTORIES = frozenset({"NamedTemporaryFile", "TemporaryFile",
                                 "SpooledTemporaryFile", "mkstemp",
                                 "mkdtemp", "TemporaryDirectory"})

_POOL_FACTORIES = frozenset({"Pool", "ThreadPool"})

_EXECUTOR_FACTORIES = frozenset({"ProcessPoolExecutor",
                                 "ThreadPoolExecutor"})


def _acquisition_kind(node: ast.Call) -> Tuple[str, str]:
    """``(kind, api)`` when ``node`` acquires a resource, else ``("", "")``."""
    func = node.func
    if isinstance(func, ast.Name):
        if func.id == "open":
            return "open", "open"
        if func.id in _POOL_FACTORIES:
            return "pool", func.id
        if func.id in _EXECUTOR_FACTORIES:
            return "executor", func.id
        return "", ""
    if isinstance(func, ast.Attribute):
        base = _call_base(func)
        attr = func.attr
        spelling = f"{base}.{attr}" if base else attr
        if base == "tempfile" and attr in _TEMPFILE_FACTORIES:
            return "tempfile", spelling
        if attr in _POOL_FACTORIES:
            return "pool", spelling
        if attr in _EXECUTOR_FACTORIES:
            return "executor", spelling
    return "", ""


def _exc_type_name(exc: Optional[ast.expr]) -> str:
    """The class name an exception expression spells, or ``""``.

    ``X(...)`` and dotted ``mod.X(...)`` resolve to ``X``; a bare
    uppercase name (``raise StopIteration``) resolves to itself; a
    lowercase name is a variable whose class is unknowable statically.
    """
    if exc is None:
        return ""
    target = exc.func if isinstance(exc, ast.Call) else exc
    name = dotted_name(target).rsplit(".", 1)[-1]
    if name and name[0].isupper():
        return name
    return ""


def _caught_names(handler: ast.ExceptHandler) -> Tuple[Tuple[str, ...], bool]:
    """``(caught type names, is_bare)`` for one except clause."""
    if handler.type is None:
        return (), True
    exprs = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    names: List[str] = []
    for expr in exprs:
        name = dotted_name(expr).rsplit(".", 1)[-1]
        names.append(name if name else "*")
    return tuple(names), False


class _ErrorFlowCollector:
    """Raise sites, handler spans, and resource lifecycles of one body.

    A hand-rolled walker like :class:`_ConcurrencyCollector`: the
    ``in_handler``/``in_finally`` context travels down the recursion and
    nested function definitions are skipped (walked as bodies of their
    own).  Named resource acquisitions are matched to their close and
    escape sites in a post-pass over the same body.
    """

    def __init__(self, lines: List[str], source: str, qualname: str,
                 raises: List[RaiseSite], handlers: List[HandlerInfo],
                 spans: List[ProtectedSpan],
                 resources: List[ResourceSite]) -> None:
        self.lines = lines
        self.source = source
        self.qualname = qualname
        self.raises = raises
        self.handlers = handlers
        self.spans = spans
        self.resources = resources
        # Named acquisitions awaiting the close/escape post-pass.
        self._named: List[Tuple[str, ResourceSite]] = []
        # Acquisition Call nodes already claimed by a statement form.
        self._claimed: Set[int] = set()
        # (line, in_finally) of every var.close()-style call, by var.
        self._closes: Dict[str, Tuple[int, bool]] = {}
        self._escaped_vars: Set[str] = set()

    def run(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self._walk(stmt, in_handler=False, in_finally=False)
        for var, site in self._named:
            close = self._closes.get(var)
            self.resources.append(ResourceSite(
                kind=site.kind, api=site.api, var=var,
                in_function=site.in_function, line=site.line, col=site.col,
                line_text=site.line_text, in_with=False,
                escapes=var in self._escaped_vars,
                closed=close is not None,
                close_line=close[0] if close else 0,
                close_in_finally=close[1] if close else False))

    # -- the walk ------------------------------------------------------------

    def _walk(self, node: ast.AST, in_handler: bool,
              in_finally: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return
        if isinstance(node, ast.Raise):
            self._raise(node, in_handler)
        elif isinstance(node, ast.Try):
            self._try(node, in_handler, in_finally)
            return
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            self._with_items(node)
        elif isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, (ast.Return, ast.Expr)) and \
                getattr(node, "value", None) is not None:
            self._value_stmt(node)
        elif isinstance(node, ast.Call):
            self._call(node, in_finally)
        for child in ast.iter_child_nodes(node):
            self._walk(child, in_handler, in_finally)

    def _try(self, node: ast.Try, in_handler: bool,
             in_finally: bool) -> None:
        start = node.body[0].lineno if node.body else node.lineno
        end = (getattr(node.body[-1], "end_lineno", None) or start) \
            if node.body else start
        if node.handlers or node.finalbody:
            self.spans.append(ProtectedSpan(
                in_function=self.qualname, start=start, end=end,
                has_finally=bool(node.finalbody),
                has_handlers=bool(node.handlers)))
        for handler in node.handlers:
            caught, is_bare = _caught_names(handler)
            self.handlers.append(HandlerInfo(
                in_function=self.qualname, caught=caught, is_bare=is_bare,
                try_start=start, try_end=end, line=handler.lineno,
                col=handler.col_offset + 1,
                line_text=_line_text(self.lines, handler.lineno),
                reraises=self._suite_reraises(handler.body),
                raises_new=self._suite_raises_new(handler.body),
                logs=self._suite_logs(handler.body),
                returns=self._suite_returns(handler.body)))
        for child in node.body:
            self._walk(child, in_handler, in_finally)
        for handler in node.handlers:
            for child in handler.body:
                self._walk(child, True, in_finally)
        for child in node.orelse:
            self._walk(child, in_handler, in_finally)
        for child in node.finalbody:
            self._walk(child, in_handler, True)

    def _raise(self, node: ast.Raise, in_handler: bool) -> None:
        if node.exc is None:
            self.raises.append(RaiseSite(
                exc_type="", in_function=self.qualname,
                in_handler=in_handler, line=node.lineno,
                col=node.col_offset + 1,
                line_text=_line_text(self.lines, node.lineno),
                is_reraise=True))
            return
        name = _exc_type_name(node.exc)
        if not name:
            return  # unknowable (a variable): under-approximate
        self.raises.append(RaiseSite(
            exc_type=name, in_function=self.qualname,
            in_handler=in_handler, line=node.lineno,
            col=node.col_offset + 1,
            line_text=_line_text(self.lines, node.lineno)))

    # -- handler-suite classification ---------------------------------------

    @staticmethod
    def _suite_walk(body: List[ast.stmt]):
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.Lambda)):
                    break
                yield sub

    def _suite_reraises(self, body: List[ast.stmt]) -> bool:
        return any(isinstance(sub, ast.Raise) and sub.exc is None
                   for sub in self._suite_walk(body))

    def _suite_raises_new(self, body: List[ast.stmt]) -> bool:
        return any(isinstance(sub, ast.Raise) and sub.exc is not None
                   for sub in self._suite_walk(body))

    def _suite_logs(self, body: List[ast.stmt]) -> bool:
        for sub in self._suite_walk(body):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else "")
            if name in _LOG_CALL_NAMES:
                return True
        return False

    def _suite_returns(self, body: List[ast.stmt]) -> bool:
        return any(isinstance(sub, ast.Return)
                   for sub in self._suite_walk(body))

    # -- resources -----------------------------------------------------------

    def _record_resource(self, node: ast.Call, kind: str, api: str,
                         var: str = "", in_with: bool = False,
                         escapes: bool = False) -> None:
        self._claimed.add(id(node))
        site = ResourceSite(
            kind=kind, api=api, var=var, in_function=self.qualname,
            line=node.lineno, col=node.col_offset + 1,
            line_text=_line_text(self.lines, node.lineno),
            in_with=in_with, escapes=escapes)
        if var and not in_with and not escapes:
            self._named.append((var, site))
        else:
            self.resources.append(site)

    def _with_items(self, node: ast.AST) -> None:
        for item in node.items:  # type: ignore[attr-defined]
            expr = item.context_expr
            # ``with closing(make())`` / ``with Pool() as p`` both manage.
            calls = [expr] if isinstance(expr, ast.Call) else []
            if isinstance(expr, ast.Call) and \
                    isinstance(expr.func, (ast.Name, ast.Attribute)):
                calls.extend(arg for arg in expr.args
                             if isinstance(arg, ast.Call))
            for call in calls:
                kind, api = _acquisition_kind(call)
                if kind:
                    self._record_resource(call, kind, api, in_with=True)

    def _assign(self, node: ast.Assign) -> None:
        value = node.value
        if isinstance(value, ast.Call):
            kind, api = _acquisition_kind(value)
            if kind:
                target = node.targets[0] if len(node.targets) == 1 else None
                if isinstance(target, ast.Name):
                    self._record_resource(value, kind, api, var=target.id)
                else:
                    # self.x = open(...) / a, b = ... : ownership escapes
                    # the function body (the closer lives elsewhere).
                    self._record_resource(value, kind, api, escapes=True)
        # ``self.x = var`` / containers holding var: the handle escapes.
        for name in self._direct_names(value):
            if any(not isinstance(t, ast.Name) for t in node.targets):
                self._escaped_vars.add(name)

    def _value_stmt(self, node: ast.AST) -> None:
        value = node.value  # type: ignore[attr-defined]
        if isinstance(node, ast.Return):
            if isinstance(value, ast.Call):
                kind, api = _acquisition_kind(value)
                if kind:
                    self._record_resource(value, kind, api, escapes=True)
            for name in self._direct_names(value):
                self._escaped_vars.add(name)

    @staticmethod
    def _direct_names(value: Optional[ast.AST]) -> List[str]:
        """Bare names appearing directly in a value expression."""
        if value is None:
            return []
        roots = [value]
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            roots = list(value.elts)
        elif isinstance(value, ast.Dict):
            roots = [v for v in value.values if v is not None]
        return [root.id for root in roots if isinstance(root, ast.Name)]

    def _call(self, node: ast.Call, in_finally: bool) -> None:
        func = node.func
        # var.close()/terminate()/shutdown(): the matching release site.
        if isinstance(func, ast.Attribute) and \
                func.attr in _CLOSE_METHODS and \
                isinstance(func.value, ast.Name):
            var = func.value.id
            if var not in self._closes or in_finally:
                self._closes[var] = (node.lineno, in_finally)
        # Handles passed to or acquired inside another call escape:
        # ownership is transferred to the callee.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name):
                self._escaped_vars.add(arg.id)
            elif isinstance(arg, ast.Call) and id(arg) not in self._claimed:
                kind, api = _acquisition_kind(arg)
                if kind:
                    self._record_resource(arg, kind, api, escapes=True)
        # Anything not claimed by a statement form by the time the walk
        # reaches it is a dropped handle (``open(p)`` as a bare call).
        kind, api = _acquisition_kind(node)
        if kind and id(node) not in self._claimed:
            self._record_resource(node, kind, api)


# ---- module extraction -----------------------------------------------------


def extract_module_effects(path: str, source: str,
                           tree: ast.Module) -> ModuleEffects:
    """Phase 1: the :class:`ModuleEffects` record for one parsed module."""
    norm = path.replace("\\", "/")
    lines = source.splitlines()
    declared_lines = parse_declared_caches(source)
    guard_pragmas = parse_guarded_pragmas(source)
    boundary_lines = parse_error_boundaries(source)

    # Module-level bindings: which names hold mutable containers, which
    # definitions carry the declared-cache pragma.
    mutable: Set[str] = set()
    declared: Set[str] = set()
    class_attrs: List[ClassAttrInfo] = []
    for stmt in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if stmt.lineno in declared_lines:
                declared.add(target.id)
            if value is not None and _is_mutable_value(value):
                mutable.add(target.id)

    # Mutable class-body attributes (shared across every instance).
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            value = None
            name = ""
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 and \
                    isinstance(stmt.targets[0], ast.Name):
                name, value = stmt.targets[0].id, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                name, value = stmt.target.id, stmt.value
            if value is not None and _is_mutable_value(value) and \
                    stmt.lineno not in declared_lines:
                class_attrs.append(ClassAttrInfo(
                    class_name=node.name, attr=name, line=stmt.lineno,
                    col=stmt.col_offset + 1,
                    line_text=_line_text(lines, stmt.lineno)))

    # Which globals does any function body mutate after import?
    scanner = _MutationScanner(frozenset(mutable))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            scanner.visit(node)
    mutated = (set(scanner.mutated) | set(scanner.global_decls)) - declared
    write_watch = frozenset((mutable | scanner.global_decls) - declared)
    read_watch = frozenset(mutated)

    # Concurrency model: guarded-by bindings, lock-typed module globals,
    # and the class-body mutable attrs whose mutation is a shared write.
    guarded = _extract_guarded_bindings(tree, lines, guard_pragmas)
    guard_globals = {b.symbol: b.lock for b in guarded
                     if b.scope == "global"}
    guard_attrs = {b.symbol: b.lock for b in guarded if b.scope == "attr"}
    guard_def_lines = frozenset(b.line for b in guarded)
    attr_watch = frozenset(info.attr for info in class_attrs)
    lock_global_names: Set[str] = set()
    for stmt in tree.body:
        value = None
        targets = []
        if isinstance(stmt, ast.Assign):
            targets, value = list(stmt.targets), stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if not isinstance(value, ast.Call):
            continue
        callee = value.func
        callee_name = callee.id if isinstance(callee, ast.Name) else (
            callee.attr if isinstance(callee, ast.Attribute) else "")
        if callee_name in _LOCK_FACTORIES:
            lock_global_names.update(t.id for t in targets
                                     if isinstance(t, ast.Name))

    functions: List[FunctionEffects] = []
    pool_sites: List[PoolSubmission] = []
    spawn_sites: List[SpawnSite] = []
    lock_ops: List[LockOp] = []
    file_writes: List[FileWrite] = []
    raise_sites: List[RaiseSite] = []
    handler_infos: List[HandlerInfo] = []
    protected_spans: List[ProtectedSpan] = []
    resource_sites: List[ResourceSite] = []
    error_boundaries: Set[str] = set()
    nested: Set[str] = set()

    # Project class definitions (for exception-hierarchy resolution).
    exception_classes: List[ExceptionClassInfo] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.bases:
            bases = tuple(
                name for name in
                (dotted_name(base).rsplit(".", 1)[-1]
                 for base in node.bases) if name)
            if bases:
                exception_classes.append(ExceptionClassInfo(
                    name=node.name, bases=bases, line=node.lineno))

    def analyze(func: ast.AST, class_name: str) -> None:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        qual = f"{class_name}.{func.name}" if class_name else func.name
        qualname = f"{norm}::{qual}"
        locals_ = frozenset(_local_bindings(func))
        lock_spans = _LockSpans(func.body)
        visitor = _EffectVisitor(
            lines, source,
            write_watch=frozenset(write_watch - locals_),
            read_watch=frozenset(read_watch - locals_),
            global_decls=frozenset(scanner.global_decls),
            guard_globals={name: lock
                           for name, lock in guard_globals.items()
                           if name not in locals_},
            guard_attrs=guard_attrs,
            attr_watch=attr_watch,
            guard_def_lines=guard_def_lines,
            lock_spans=lock_spans,
            emit_guarded=func.name not in ("__init__", "__new__"))
        for stmt in func.body:
            visitor.visit(stmt)
        if visitor.effects:
            functions.append(FunctionEffects(
                qualname=qualname, name=func.name, line=func.lineno,
                effects=tuple(visitor.effects)))
        before = len(pool_sites)
        collector = _PoolSiteCollector(lines, source, qualname, pool_sites)
        for stmt in func.body:
            collector.visit(stmt)
        for index in range(before, len(pool_sites)):
            site = pool_sites[index]
            held = lock_spans.held_at(site.line)
            if held:
                pool_sites[index] = PoolSubmission(
                    **{**site.__dict__, "locks_held": held})
        conc = _ConcurrencyCollector(lines, source, qualname, lock_spans,
                                     spawn_sites, lock_ops, file_writes)
        conc.run(func.body)
        errflow = _ErrorFlowCollector(lines, source, qualname, raise_sites,
                                      handler_infos, protected_spans,
                                      resource_sites)
        errflow.run(func.body)
        if func.lineno in boundary_lines:
            error_boundaries.add(qualname)

    def walk_body(body: List[ast.stmt], class_name: str = "",
                  in_function: bool = False) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if in_function:
                    nested.add(stmt.name)
                analyze(stmt, class_name)
                walk_body(stmt.body, class_name=class_name, in_function=True)
            elif isinstance(stmt, ast.ClassDef):
                walk_body(stmt.body, class_name=stmt.name,
                          in_function=in_function)

    walk_body(tree.body)

    # Module-level statements: import-time effects (an env read at import
    # is just as invisible to the cache key as one inside a function).
    module_stmts = [stmt for stmt in tree.body
                    if not isinstance(stmt, (ast.FunctionDef,
                                             ast.AsyncFunctionDef,
                                             ast.ClassDef, ast.Import,
                                             ast.ImportFrom))]
    if module_stmts:
        visitor = _EffectVisitor(lines, source, write_watch=frozenset(),
                                 read_watch=frozenset(),
                                 global_decls=frozenset(),
                                 emit_guarded=False)
        for stmt in module_stmts:
            visitor.visit(stmt)
        if visitor.effects:
            functions.append(FunctionEffects(
                qualname=f"{norm}::<module>", name="<module>", line=1,
                effects=tuple(visitor.effects)))
        collector = _PoolSiteCollector(lines, source, f"{norm}::<module>",
                                       pool_sites)
        for stmt in module_stmts:
            collector.visit(stmt)
        conc = _ConcurrencyCollector(
            lines, source, f"{norm}::<module>", _LockSpans(module_stmts),
            spawn_sites, lock_ops, file_writes)
        conc.run(module_stmts)
        errflow = _ErrorFlowCollector(
            lines, source, f"{norm}::<module>", raise_sites, handler_infos,
            protected_spans, resource_sites)
        errflow.run(module_stmts)

    return ModuleEffects(
        path=norm,
        functions=tuple(functions),
        pool_submissions=tuple(pool_sites),
        class_mutable_attrs=tuple(class_attrs),
        mutable_globals=frozenset(mutable),
        mutated_globals=frozenset(mutated),
        declared_caches=frozenset(declared),
        nested_functions=frozenset(nested),
        spawn_sites=tuple(spawn_sites),
        lock_ops=tuple(lock_ops),
        guarded_bindings=tuple(guarded),
        file_writes=tuple(file_writes),
        lock_globals=frozenset(lock_global_names),
        raise_sites=tuple(raise_sites),
        handlers=tuple(handler_infos),
        protected_spans=tuple(protected_spans),
        resource_sites=tuple(resource_sites),
        exception_classes=tuple(exception_classes),
        error_boundaries=frozenset(error_boundaries),
    )


# ---- phase 2: transitive closure over the call graph -----------------------


@dataclass(frozen=True)
class ReachedEffect:
    """One effect visible from a root, with the function it lives in."""

    origin: str                # qualname of the function with the effect
    effect: Effect


class EffectPropagator:
    """Fixpoint closure of per-function effects over resolved calls.

    Edges follow the agreement rule: a call contributes its callee's
    transitive effects only when the bare name resolves to **exactly one**
    definition.  The transfer function is set union — monotone over the
    powerset lattice of ``(origin, effect)`` pairs — so repeated sweeps
    reach the least fixpoint, cycles included.
    """

    def __init__(self, model: "object") -> None:
        # ``model`` is a ProjectModel; typed loosely to avoid a cycle.
        local: Dict[str, FrozenSet[ReachedEffect]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            module_effects = getattr(summary, "module_effects", None)
            if module_effects is None:
                continue
            for info in module_effects.functions:
                local[info.qualname] = frozenset(
                    ReachedEffect(origin=info.qualname, effect=effect)
                    for effect in info.effects)
        edges: Dict[str, Tuple[str, ...]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            for info in summary.functions:
                targets: List[str] = []
                for call in info.calls:
                    candidates = model.resolve(call.name)  # type: ignore[attr-defined]
                    if len(candidates) == 1:
                        targets.append(candidates[0].qualname)
                edges[info.qualname] = tuple(dict.fromkeys(targets))
        self._edges = edges
        self._transitive = self._fixpoint(local, edges)

    @staticmethod
    def _fixpoint(local: Dict[str, FrozenSet[ReachedEffect]],
                  edges: Dict[str, Tuple[str, ...]]
                  ) -> Dict[str, FrozenSet[ReachedEffect]]:
        state: Dict[str, Set[ReachedEffect]] = {
            qualname: set(local.get(qualname, frozenset()))
            for qualname in sorted(set(edges) | set(local))}
        changed = True
        while changed:
            changed = False
            for qualname in sorted(state):
                current = state[qualname]
                before = len(current)
                for callee in edges.get(qualname, ()):
                    reached = state.get(callee)
                    if reached:
                        current |= reached
                if len(current) != before:
                    changed = True
        return {qualname: frozenset(reached)
                for qualname, reached in state.items()}

    def transitive(self, qualname: str) -> FrozenSet[ReachedEffect]:
        """Every ``(origin, effect)`` reachable from ``qualname``."""
        return self._transitive.get(qualname, frozenset())

    def call_path(self, root: str, origin: str) -> List[str]:
        """A shortest root→origin chain over the propagated edges."""
        if root == origin:
            return [root]
        parents: Dict[str, str] = {root: ""}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                for callee in self._edges.get(qualname, ()):
                    if callee in parents:
                        continue
                    parents[callee] = qualname
                    if callee == origin:
                        chain = [callee]
                        while parents[chain[-1]]:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return [root, origin]


def format_chain(path_names: List[str]) -> str:
    """Render a call chain compactly: drop module prefixes, arrow-join."""
    return " -> ".join(name.split("::", 1)[-1] for name in path_names)
