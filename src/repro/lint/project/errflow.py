"""Phase 2 of error-flow analysis: escaping-exception sets by fixpoint.

Phase 1 (:mod:`repro.lint.project.effects`) records, per function, every
explicit raise site and every handler span.  This module closes those
local facts over the resolved call graph: the **escaping set** of a
function ``F`` is

    escaping(F) = local(F)  ∪  ⋃ over calls c in F
                  { e ∈ escaping(callee(c)) | type(e) not caught at c }

where ``local(F)`` holds F's own raise sites not caught by an enclosing
handler in F, and "caught at c" consults the handler spans whose try
body contains the call line.  The domain is the powerset of
``(exception type, origin function, raise site)`` triples ordered by
inclusion; the transfer function is monotone (each handler's caught-type
filter is a per-site constant, and union only grows), so round-robin
iteration reaches the least fixpoint, recursion cycles included.

The model deliberately under-approximates:

* only **explicit** raises are tracked — an ``OSError`` born inside
  ``open()`` has no raise site here, so its absence from an escaping set
  is not a proof of safety, but every *member* of an escaping set is a
  real raise statement on a real call chain;
* calls propagate only through **unambiguously resolved** names (the
  project agreement rule), and a raise of an unknowable expression
  (``raise err``) contributes nothing;
* a handler whose caught spelling cannot be named statically is treated
  as a catch-all, and a handler containing a bare ``raise`` is treated
  as re-raising everything it catches (the caught exception *can*
  continue outward, so dropping it would under-report a real escape —
  the one place the model rounds toward reporting).

Subtyping is resolved against the project's recorded class definitions
(so ``ConfigError`` is caught by ``except ReproError``) plus a static
table of builtin exception parents (so ``FileNotFoundError`` is caught
by ``except OSError``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.lint.project.effects import HandlerInfo, RaiseSite

#: Builtin exception -> parent, enough of the CPython hierarchy to answer
#: every catch a repro module actually writes.  Names not in the table
#: (project classes included) fall back to the recorded class bases, then
#: to ``Exception``.
_BUILTIN_PARENT: Dict[str, str] = {
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "LookupError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "InterruptedError": "OSError",
    "TimeoutError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "ValueError": "Exception",
    "UnicodeError": "ValueError",
    "UnicodeDecodeError": "UnicodeError",
    "UnicodeEncodeError": "UnicodeError",
    "JSONDecodeError": "ValueError",
    "TypeError": "Exception",
    "AttributeError": "Exception",
    "NameError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "RuntimeError": "Exception",
    "RecursionError": "RuntimeError",
    "NotImplementedError": "RuntimeError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "AssertionError": "Exception",
    "MemoryError": "Exception",
    "BufferError": "Exception",
    "EOFError": "Exception",
    "ReferenceError": "Exception",
    "SystemError": "Exception",
    "SyntaxError": "Exception",
    "IndentationError": "SyntaxError",
}

#: Catch spellings that catch every exception type.
_CATCH_ALL = frozenset({"*", "Exception", "BaseException"})


class ExceptionHierarchy:
    """Subtype queries over project classes plus the builtin table."""

    def __init__(self, project_bases: Dict[str, Tuple[str, ...]]) -> None:
        self._project = dict(project_bases)

    def ancestors(self, name: str) -> FrozenSet[str]:
        """``name`` plus every ancestor reachable through recorded bases."""
        seen: Set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._project.get(current, ()))
            parent = _BUILTIN_PARENT.get(current)
            if parent is not None:
                frontier.append(parent)
        return frozenset(seen)

    def is_subtype(self, name: str, ancestor: str) -> bool:
        return ancestor in self.ancestors(name)

    def catches(self, handler: HandlerInfo, exc_type: str) -> bool:
        """Whether one except clause catches an exception type."""
        if handler.is_bare:
            return True
        for caught in handler.caught:
            if caught in _CATCH_ALL or self.is_subtype(exc_type, caught):
                return True
        return False


@dataclass(frozen=True)
class EscapingRaise:
    """One raise site that can propagate out of a function uncaught."""

    exc_type: str              # exception class name
    origin: str                # qualname of the function with the raise
    site: RaiseSite


class ErrorFlow:
    """Escaping-exception sets for every function, plus real chains.

    Built once per :class:`~repro.lint.project.graph.ProjectModel` (via
    ``model.errflow()``) from the phase-1 summaries only — no ASTs.
    """

    def __init__(self, model: "object") -> None:
        # ``model`` is a ProjectModel; typed loosely to avoid a cycle.
        project_bases: Dict[str, Tuple[str, ...]] = {}
        raises: Dict[str, List[RaiseSite]] = {}
        handlers: Dict[str, List[HandlerInfo]] = {}
        self._boundaries: Set[str] = set()
        for summary in model.summaries:  # type: ignore[attr-defined]
            effects = getattr(summary, "module_effects", None)
            if effects is None:
                continue
            for cls in effects.exception_classes:
                project_bases.setdefault(cls.name, cls.bases)
            for site in effects.raise_sites:
                raises.setdefault(site.in_function, []).append(site)
            for handler in effects.handlers:
                handlers.setdefault(handler.in_function, []).append(handler)
            self._boundaries |= effects.error_boundaries
        self.hierarchy = ExceptionHierarchy(project_bases)
        self._handlers = handlers

        # Call edges with line numbers, through uniquely resolved names.
        edges: Dict[str, Tuple[Tuple[int, str], ...]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            for info in summary.functions:
                targets: List[Tuple[int, str]] = []
                for call in info.calls:
                    candidates = model.resolve(call.name)  # type: ignore[attr-defined]
                    if len(candidates) == 1:
                        targets.append((call.line, candidates[0].qualname))
                edges[info.qualname] = tuple(targets)
        self._edges = edges

        local: Dict[str, FrozenSet[EscapingRaise]] = {}
        for qualname, sites in raises.items():
            escaped = []
            for site in sites:
                if site.is_reraise or not site.exc_type:
                    continue
                if not self._caught_locally(qualname, site.exc_type,
                                            site.line):
                    escaped.append(EscapingRaise(
                        exc_type=site.exc_type, origin=qualname, site=site))
            local[qualname] = frozenset(escaped)
        self._local = local
        self._escaping = self._fixpoint()

    # -- handler semantics ---------------------------------------------------

    def _enclosing_handlers(self, qualname: str,
                            line: int) -> List[HandlerInfo]:
        """Handlers whose try-body span contains ``line``, innermost last
        span first is not needed — only the union of what they absorb."""
        return [handler for handler in self._handlers.get(qualname, ())
                if handler.try_start <= line <= handler.try_end]

    def _absorbed(self, qualname: str, exc_type: str, line: int) -> bool:
        """Whether an exception of ``exc_type`` surfacing at ``line``
        inside ``qualname`` is terminally caught there.

        Handlers of one try are tried in source order; a matching handler
        that contains a bare ``raise`` lets the exception continue (an
        outer try may still absorb it).  Grouping is by identical try
        span, which is exact for distinct tries in one function.
        """
        enclosing = self._enclosing_handlers(qualname, line)
        by_span: Dict[Tuple[int, int], List[HandlerInfo]] = {}
        for handler in enclosing:
            by_span.setdefault(
                (handler.try_start, handler.try_end), []).append(handler)
        # Inner spans first: contained spans sort after by start line.
        for span in sorted(by_span, key=lambda s: (-s[0], s[1])):
            for handler in sorted(by_span[span], key=lambda h: h.line):
                if self.hierarchy.catches(handler, exc_type):
                    if handler.reraises:
                        break  # re-raised: keep looking outward
                    return True
        return False

    def _caught_locally(self, qualname: str, exc_type: str,
                        line: int) -> bool:
        return self._absorbed(qualname, exc_type, line)

    # -- the fixpoint --------------------------------------------------------

    def _transfer(self, qualname: str,
                  state: Dict[str, FrozenSet[EscapingRaise]]
                  ) -> FrozenSet[EscapingRaise]:
        result: Set[EscapingRaise] = set(
            self._local.get(qualname, frozenset()))
        for line, callee in self._edges.get(qualname, ()):
            for escape in state.get(callee, frozenset()):
                if not self._absorbed(qualname, escape.exc_type, line):
                    result.add(escape)
        return frozenset(result)

    def _fixpoint(self) -> Dict[str, FrozenSet[EscapingRaise]]:
        names = sorted(set(self._edges) | set(self._local))
        state: Dict[str, FrozenSet[EscapingRaise]] = {
            name: frozenset() for name in names}
        changed = True
        while changed:
            changed = False
            for name in names:
                updated = self._transfer(name, state)
                if updated != state[name]:
                    state[name] = updated
                    changed = True
        return state

    # -- queries -------------------------------------------------------------

    def escaping(self, qualname: str) -> FrozenSet[EscapingRaise]:
        """Every raise site that can propagate out of ``qualname``."""
        return self._escaping.get(qualname, frozenset())

    def is_boundary(self, qualname: str) -> bool:
        """Whether a function declares ``# mapglint: error-boundary``."""
        return qualname in self._boundaries

    def chain(self, root: str, escape: EscapingRaise) -> List[str]:
        """A real root→origin call chain along which the escape travels.

        BFS over the resolved edges, stepping only into callees whose
        escaping set still contains the escape *and* whose call site does
        not absorb it — every returned chain is a genuine propagation
        path, not merely a shortest call path.
        """
        if root == escape.origin and escape in self._local.get(
                root, frozenset()):
            return [root]
        parents: Dict[str, str] = {root: ""}
        frontier = [root]
        while frontier:
            next_frontier: List[str] = []
            for qualname in frontier:
                for line, callee in self._edges.get(qualname, ()):
                    if callee in parents:
                        continue
                    if escape not in self._escaping.get(callee, frozenset()):
                        continue
                    if self._absorbed(qualname, escape.exc_type, line):
                        continue
                    parents[callee] = qualname
                    if callee == escape.origin:
                        chain = [callee]
                        while parents[chain[-1]]:
                            chain.append(parents[chain[-1]])
                        return list(reversed(chain))
                    next_frontier.append(callee)
            frontier = next_frontier
        return [root, escape.origin]

    def absorbed_at(self, qualname: str, exc_type: str, line: int) -> bool:
        """Public wrapper for rule code: is the type caught at a site?"""
        return self._absorbed(qualname, exc_type, line)
