"""Phase 2 substrate: the whole-program model built from module summaries.

``ProjectModel`` merges every :class:`~repro.lint.project.summary.ModuleSummary`
into a project symbol table (functions by bare name, dataclasses, the union
of attribute reads over non-test sources) and a name-resolved call graph.
Project rules (UNIT02, LEDGER01, CFG01, EVT01) run against this model only
— they never touch an AST, which is what lets warm cache runs skip parsing
entirely.

Call resolution is by bare name against functions *defined in non-test
source*.  When several same-named functions exist (``access`` appears on
``Cache``, ``MemoryHierarchy``, and ``Dram``), a call site is only checked
against facts **all** candidates agree on; a disagreement means the name is
ambiguous and the site is skipped rather than guessed at.  That keeps the
interprocedural rules quiet exactly where static name resolution would be
dishonest.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.project.effects import EffectPropagator
from repro.lint.project.errflow import ErrorFlow
from repro.lint.project.summary import (
    CallSite, DataclassInfo, FunctionInfo, ModuleSummary)
from repro.lint.project.twin import TwinAnalysis


def is_test_path(path: str) -> bool:
    """Whether a normalized path denotes test code (skipped by src rules)."""
    parts = path.replace("\\", "/").split("/")
    if any(part in ("tests", "test") for part in parts[:-1]):
        return True
    name = parts[-1]
    return name.startswith("test_") or name.endswith("_test.py")


def in_repro(path: str) -> bool:
    """Whether a normalized path lies inside a ``repro`` package tree."""
    return "repro" in path.replace("\\", "/").split("/")


class ProjectModel:
    """Symbol table + call graph over every linted module."""

    # Bare names too generic to resolve by name alone, whatever agreement
    # the candidates show (dunders, ubiquitous verbs, str methods).
    _UNRESOLVABLE = frozenset({
        "<module>", "__init__", "__post_init__", "__repr__", "__str__",
        "get", "set", "add", "update", "append", "extend", "pop", "items",
        "keys", "values", "copy", "run", "main", "join",
    })

    def __init__(self, summaries: Iterable[ModuleSummary]) -> None:
        self.summaries: List[ModuleSummary] = sorted(
            summaries, key=lambda s: s.path)
        self._by_path: Dict[str, ModuleSummary] = {
            summary.path: summary for summary in self.summaries}
        # Functions defined in non-test source, keyed by bare name.
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        # All dataclasses, keyed by class name, with their defining module.
        self.dataclasses: List[Tuple[str, DataclassInfo]] = []
        # Union of attribute reads over non-test source (excluding
        # __post_init__ bodies — see summary.py).
        self.src_attr_reads: Set[str] = set()
        # All functions (tests included), keyed by display qualname — the
        # effect engine anchors findings on definitions wherever they live.
        self.functions_by_qualname: Dict[str, FunctionInfo] = {}
        self._effects: Optional[EffectPropagator] = None
        self._errflow: Optional[ErrorFlow] = None
        self._twin: Optional[TwinAnalysis] = None
        for summary in self.summaries:
            test = is_test_path(summary.path)
            for info in summary.functions:
                self.functions_by_qualname[info.qualname] = info
                if not test and info.name != "<module>":
                    self.functions_by_name.setdefault(info.name, []).append(info)
            for dc_info in summary.dataclasses:
                self.dataclasses.append((summary.path, dc_info))
            if not test:
                self.src_attr_reads |= summary.attr_reads

    # ---- lookups ---------------------------------------------------------

    def summary_for(self, path: str) -> Optional[ModuleSummary]:
        return self._by_path.get(path)

    def is_suppressed(self, path: str, rule_id: str, line: int) -> bool:
        summary = self._by_path.get(path)
        return summary is not None and summary.is_suppressed(rule_id, line)

    def resolve(self, name: str) -> List[FunctionInfo]:
        """Candidate definitions for a bare callee name (may be empty)."""
        if name in self._UNRESOLVABLE:
            return []
        return self.functions_by_name.get(name, [])

    def effects(self) -> EffectPropagator:
        """The transitive effect closure, built once per model on demand."""
        if self._effects is None:
            self._effects = EffectPropagator(self)
        return self._effects

    def errflow(self) -> ErrorFlow:
        """The escaping-exception closure, built once per model on demand."""
        if self._errflow is None:
            self._errflow = ErrorFlow(self)
        return self._errflow

    def twin(self) -> TwinAnalysis:
        """Both engines' closures, built once per model on demand."""
        if self._twin is None:
            self._twin = TwinAnalysis(self)
        return self._twin

    # ---- agreed facts across ambiguous candidates ------------------------

    def agreed_param_dim(self, name: str, index: int) -> Optional[Tuple[str, str]]:
        """``(param_name, dim)`` for positional ``index`` iff all candidates
        that *have* such a parameter agree on both; None otherwise."""
        candidates = self.resolve(name)
        if not candidates:
            return None
        seen: Set[Tuple[str, str]] = set()
        for info in candidates:
            if index >= len(info.params):
                return None  # some candidate can't even take it positionally
            seen.add(info.params[index])
        if len(seen) == 1:
            return next(iter(seen))
        return None

    def agreed_keyword_dim(self, name: str, keyword: str) -> Optional[str]:
        """Dimension of keyword param ``keyword`` iff all candidates agree."""
        candidates = self.resolve(name)
        if not candidates:
            return None
        dims: Set[str] = set()
        for info in candidates:
            match = [dim for param_name, dim in info.params
                     if param_name == keyword]
            if not match:
                return None
            dims.add(match[0])
        if len(dims) == 1:
            return next(iter(dims))
        return None

    def agreed_return_dim(self, name: str) -> Optional[str]:
        """Return dimension iff every candidate definition agrees."""
        candidates = self.resolve(name)
        if not candidates:
            return None
        dims = {info.return_dim for info in candidates}
        if len(dims) == 1:
            return next(iter(dims))
        return None

    # ---- call graph (exposed for tests and tooling) ----------------------

    def call_graph(self) -> Dict[str, Set[str]]:
        """Name-resolved edges: caller qualname -> set of callee qualnames."""
        edges: Dict[str, Set[str]] = {}
        for summary in self.summaries:
            for info in summary.functions:
                targets = edges.setdefault(info.qualname, set())
                for call in info.calls:
                    for callee in self.resolve(call.name):
                        targets.add(callee.qualname)
        return edges

    def callers_of(self, bare_name: str) -> List[Tuple[FunctionInfo, CallSite]]:
        """Every (caller, call site) pair invoking ``bare_name``."""
        found: List[Tuple[FunctionInfo, CallSite]] = []
        for summary in self.summaries:
            for info in summary.functions:
                for call in info.calls:
                    if call.name == bare_name:
                        found.append((info, call))
        return found
