"""Phase 1 of the whole-program analyzer: per-file symbol extraction.

``extract_summary`` turns one parsed module into a :class:`ModuleSummary`
— a compact, picklable record of everything the interprocedural rules need
from that file: its functions and methods (with inferred parameter/return
dimensions and every call they make), its dataclasses (fields and the
names their ``__post_init__`` validates), every attribute name the module
reads, and its per-line ``# mapglint: disable`` pragmas.

Summaries are the unit of caching: because they carry no AST nodes, a warm
lint run deserializes them straight from ``.mapglint-cache/`` and goes
directly to phase 2 without re-parsing or re-inferring anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.lint.project.dimensions import (
    UNKNOWN, CallObservation, FunctionAnalyzer, dim_of_name, dotted_name)
from repro.lint.project.effects import ModuleEffects, extract_module_effects
from repro.lint.project.twin import ModuleTwinFacts, extract_module_twin

#: Bump when the summary layout changes so cached pickles are invalidated
#: even if the source of the lint package somehow hashes equal.
#: 4: ModuleEffects grew the concurrency model (spawn sites, lock ops,
#: guarded bindings, persistence writes) for CONC01–CONC04.
#: 5: ModuleEffects grew the error-flow model (raise sites, handler
#: spans, resource sites, exception classes) for ERR01–ERR04/RES01.
#: 6: ModuleTwinFacts joined the summary (per-function engine footprints,
#: twin-exempt pragmas) for the twin-drift rules TWIN01–TWIN04.
SUMMARY_SCHEMA = 6


@dataclass(frozen=True)
class CallSite:
    """One call expression, as seen from inside a function body."""

    name: str                  # bare callee name ("add_interval")
    callee: str                # dotted spelling ("self.ledger.add_interval")
    receiver: str              # dotted receiver ("self.ledger"), may be ""
    line: int
    col: int
    line_text: str
    arg_dims: Tuple[str, ...]
    arg_reprs: Tuple[str, ...]
    arg_tuple_lens: Tuple[Optional[int], ...]
    kw_dims: Tuple[Tuple[str, str], ...]
    result_context: str        # dimension the result visibly flows into
    obs_guarded: bool = False  # under an ``enabled`` observability guard
    result_used: bool = True   # False for bare statement-expressions
    result_target: str = ""    # dotted assignment target, "" if none


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method: signature dimensions plus its call sites."""

    qualname: str              # "module.py::Class.method" (display/debug)
    name: str                  # bare name used for call resolution
    line: int
    is_method: bool
    params: Tuple[Tuple[str, str], ...]   # (name, dim), self/cls dropped
    return_dim: str
    calls: Tuple[CallSite, ...]


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field."""

    name: str
    annotation: str
    line: int
    line_text: str = ""


@dataclass(frozen=True)
class DataclassInfo:
    """One ``@dataclass`` definition with its validation footprint."""

    name: str
    line: int
    fields: Tuple[FieldInfo, ...]
    has_post_init: bool
    validated: FrozenSet[str]  # names touched (attr or string) in __post_init__


@dataclass(frozen=True)
class AttrWrite:
    """One attribute-assignment site (``obj.attr = ...`` / ``+=`` / ``[k] +=``)."""

    name: str                  # attribute being written ("_event_energy_j")
    receiver: str              # dotted receiver ("self.ledger"), may be ""
    line: int
    col: int
    line_text: str


@dataclass
class ModuleSummary:
    """Everything phase 2 needs to know about one file."""

    path: str                                  # normalized, forward slashes
    functions: List[FunctionInfo] = field(default_factory=list)
    dataclasses: List[DataclassInfo] = field(default_factory=list)
    attr_reads: Set[str] = field(default_factory=set)
    attr_writes: List[AttrWrite] = field(default_factory=list)
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    module_effects: Optional[ModuleEffects] = None
    twin: Optional[ModuleTwinFacts] = None

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return rule_id.upper() in rules or "ALL" in rules


_DATACLASS_NAMES = ("dataclass",)


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id in _DATACLASS_NAMES
    if isinstance(target, ast.Attribute):
        return target.attr in _DATACLASS_NAMES
    return False


def _decorator_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for dec in getattr(func, "decorator_list", []):
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, ast.Attribute):
            names.add(target.attr)
    return names


class _AttrReadCollector(ast.NodeVisitor):
    """Collects every attribute name a subtree reads (plus getattr strings)."""

    def __init__(self, into: Set[str]) -> None:
        self.into = into

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.into.add(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in \
                ("getattr", "hasattr") and len(node.args) >= 2 and \
                isinstance(node.args[1], ast.Constant) and \
                isinstance(node.args[1].value, str):
            self.into.add(node.args[1].value)
        # Keyword arguments of dataclasses.replace(...) count as field uses.
        func_name = node.func.attr if isinstance(node.func, ast.Attribute) \
            else (node.func.id if isinstance(node.func, ast.Name) else "")
        if func_name == "replace":
            for keyword in node.keywords:
                if keyword.arg:
                    self.into.add(keyword.arg)
        self.generic_visit(node)


def _line_text(lines: List[str], line: int) -> str:
    if 1 <= line <= len(lines):
        return lines[line - 1]
    return ""


def _source_repr(source: str, node: ast.AST, limit: int = 60) -> str:
    segment = ast.get_source_segment(source, node)
    if segment is None:
        return ""
    segment = " ".join(segment.split())
    return segment if len(segment) <= limit else segment[:limit - 3] + "..."


def _analyze_function(path: str, source: str, lines: List[str],
                      func: ast.AST, class_name: str = "") -> FunctionInfo:
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    calls: List[CallSite] = []

    def on_call(obs: CallObservation) -> None:
        node = obs.node
        calls.append(CallSite(
            name=obs.name,
            callee=_dotted_callee(node),
            receiver=obs.receiver,
            line=node.lineno,
            col=node.col_offset + 1,
            line_text=_line_text(lines, node.lineno),
            arg_dims=tuple(obs.arg_dims),
            arg_reprs=tuple(_source_repr(source, arg) for arg in node.args),
            arg_tuple_lens=tuple(obs.arg_tuple_lens),
            kw_dims=tuple(sorted(obs.kw_dims.items())),
            result_context=obs.result_context,
            obs_guarded=obs.obs_guarded,
            result_used=obs.result_used,
            result_target=obs.result_target,
        ))

    decorators = _decorator_names(func)
    is_method = bool(class_name) and "staticmethod" not in decorators
    analyzer = FunctionAnalyzer(on_call=on_call)
    params, return_dim = analyzer.analyze(func, is_method=is_method)
    qual = f"{class_name}.{func.name}" if class_name else func.name
    return FunctionInfo(
        qualname=f"{path}::{qual}",
        name=func.name,
        line=func.lineno,
        is_method=is_method,
        params=tuple(params),
        return_dim=return_dim,
        calls=tuple(calls),
    )


def _dotted_callee(node: ast.Call) -> str:
    return dotted_name(node.func)


def _extract_dataclass(node: ast.ClassDef,
                       lines: List[str]) -> Optional[DataclassInfo]:
    if not any(_is_dataclass_decorator(dec) for dec in node.decorator_list):
        return None
    fields: List[FieldInfo] = []
    has_post_init = False
    validated: Set[str] = set()
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            annotation = ast.unparse(stmt.annotation) if stmt.annotation else ""
            if "ClassVar" in annotation:
                continue
            fields.append(FieldInfo(name=stmt.target.id,
                                    annotation=annotation,
                                    line=stmt.lineno,
                                    line_text=_line_text(lines, stmt.lineno)))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                stmt.name == "__post_init__":
            has_post_init = True
            _AttrReadCollector(validated).visit(stmt)
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    validated.add(sub.value)
    return DataclassInfo(
        name=node.name,
        line=node.lineno,
        fields=tuple(fields),
        has_post_init=has_post_init,
        validated=frozenset(validated),
    )


def extract_summary(path: str, source: str, tree: ast.Module,
                    suppressions: Dict[int, FrozenSet[str]]) -> ModuleSummary:
    """Build the :class:`ModuleSummary` for one parsed module."""
    norm = path.replace("\\", "/")
    lines = source.splitlines()
    summary = ModuleSummary(path=norm, suppressions=dict(suppressions))

    # Attribute reads over the whole module, *excluding* __post_init__
    # bodies: a validation read is not a use (CFG01 needs to tell the two
    # apart).  Collected first over everything, then __post_init__ scans
    # land in DataclassInfo.validated instead.
    post_init_nodes: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and \
                node.name == "__post_init__":
            post_init_nodes.append(node)
    excluded = set()
    for post_init in post_init_nodes:
        for sub in ast.walk(post_init):
            excluded.add(id(sub))

    collector = _AttrReadCollector(summary.attr_reads)
    for node in ast.walk(tree):
        if id(node) in excluded:
            continue
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            summary.attr_reads.add(node.attr)
        elif isinstance(node, ast.Call):
            collector.visit_Call(node)  # getattr/replace strings only
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                # Unwrap subscripts: ``obj._state_cycles[k] += n`` writes
                # the ``_state_cycles`` attribute.
                while isinstance(target, ast.Subscript):
                    target = target.value
                if isinstance(target, ast.Attribute):
                    summary.attr_writes.append(AttrWrite(
                        name=target.attr,
                        receiver=dotted_name(target.value),
                        line=target.lineno,
                        col=target.col_offset + 1,
                        line_text=_line_text(lines, target.lineno)))

    # Functions, methods, dataclasses.
    def walk_body(body: List[ast.stmt], class_name: str = "") -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                summary.functions.append(_analyze_function(
                    norm, source, lines, stmt, class_name=class_name))
                # Nested defs (rare) still contribute call sites.
                nested = [s for s in stmt.body
                          if isinstance(s, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))]
                if nested:
                    walk_body(nested, class_name=class_name)
            elif isinstance(stmt, ast.ClassDef):
                info = _extract_dataclass(stmt, lines)
                if info is not None:
                    summary.dataclasses.append(info)
                walk_body(stmt.body, class_name=stmt.name)

    walk_body(tree.body)

    # Module-level call sites (constants computed at import time).
    module_level = [stmt for stmt in tree.body
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.Expr,
                                         ast.If, ast.For, ast.Try))]
    if module_level:
        wrapper = ast.FunctionDef(
            name="<module>", args=ast.arguments(
                posonlyargs=[], args=[], vararg=None, kwonlyargs=[],
                kw_defaults=[], kwarg=None, defaults=[]),
            body=module_level, decorator_list=[], returns=None,
            type_comment=None, lineno=1, col_offset=0)
        try:
            info = _analyze_function(norm, source, lines, wrapper)
        except (AttributeError, TypeError):  # defensive: odd module shapes
            info = None
        if info is not None and info.calls:
            summary.functions.append(FunctionInfo(
                qualname=f"{norm}::<module>", name="<module>", line=1,
                is_method=False, params=(), return_dim=UNKNOWN,
                calls=info.calls))

    summary.module_effects = extract_module_effects(norm, source, tree)
    summary.twin = extract_module_twin(norm, source, tree)

    return summary
