"""Twin-engine drift model: phase-1 footprints and phase-2 closures.

The repository deliberately ships two implementations of the same
simulation: the **oracle** (``Simulator.handle_segment`` plus the
controller/predictor/memory descent) and the **fast** columnar kernel
(``FastSimulator._replay`` and its helpers), contractually bit-identical.
That contract is enforced dynamically by the crosscheck suite — but a
dynamic check only covers the configurations it runs.  The twin analysis
here makes the *static* halves of the contract checkable:

* every ``SystemConfig`` knob the oracle path reads must be read — or at
  least *named* in an eligibility/fallback check — by the fast engine
  (rule TWIN01), because a knob only the oracle honors silently diverges
  the moment a sweep varies it;
* every ledger tag and counter key the oracle path emits must be written
  by the fast engine's flush (TWIN02), or a fast-path run quietly drops
  a column from ``SimulationResult``;
* every module reachable from either engine must be inside the source
  set that :func:`repro.exec.version.simulation_version` digests for the
  result cache (TWIN03), or editing it would serve stale cached results;
* no tuning constant of the shared gating/break-even arithmetic may be
  spelled as a literal in both engines (TWIN04) — duplicated literals
  are exactly how the two copies drift apart one edit at a time.

Phase 1 (:func:`extract_module_twin`) records per-function footprints in
the picklable :class:`ModuleTwinFacts` carried by each
:class:`~repro.lint.project.summary.ModuleSummary`.  Phase 2
(:class:`TwinAnalysis`) grows both engines' call-graph closures from
their roots and exposes the drift sets the four rules report on.

Deliberate envelope exclusions — oracle behaviour the fast engine
*refuses* rather than reproduces — are documented in source with a
definition-line pragma::

    reasons.append("prefetcher enabled")  # mapglint: twin-exempt=degree

which removes the named field/tag/key from the drift sets, leaving a
greppable record of the decision next to the check that implements it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple)

from repro.lint.project.dimensions import dotted_name

#: Bump when the twin-facts layout changes; folded into the cache key so
#: stale pickled summaries can never feed the drift rules.
TWIN_SCHEMA = 1

_EXEMPT_RE = re.compile(r"#\s*mapglint:\s*twin-exempt=([A-Za-z0-9_,\s]+)")
_WORD_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

#: |value| considered structural rather than tuning (loop steps, parity,
#: off-by-one guards) — never evidence of a duplicated constant.
_TRIVIAL_ABS = (0.0, 1.0, 2.0)


@dataclass(frozen=True)
class TwinRead:
    """One attribute read inside a function body."""

    attr: str
    receiver: str              # dotted receiver ("config.l1"), may be ""
    line: int
    col: int


@dataclass(frozen=True)
class TwinConst:
    """One non-trivial numeric literal used as arithmetic/comparison operand."""

    key: str                   # canonical value key ("40503", "0.25")
    text: str                  # literal as spelled ("0x9E37")
    line: int
    col: int                   # 0-based start column of the literal
    end_col: int               # 0-based end column (for --fix edits)


@dataclass(frozen=True)
class FunctionTwinFacts:
    """The twin-relevant footprint of one function or method."""

    qualname: str
    reads: Tuple[TwinRead, ...]
    names: FrozenSet[str]                     # identifier words in strings
    counter_keys: Tuple[Tuple[str, int], ...]  # (key, line)
    result_fields: Tuple[Tuple[str, int], ...]  # SimulationResult(kw=) names
    constants: Tuple[TwinConst, ...]


@dataclass(frozen=True)
class TwinConstDef:
    """A module-level ``NAME = <number>`` definition (an import source)."""

    name: str
    key: str
    line: int


@dataclass(frozen=True)
class TwinStringTuple:
    """A module-level ``NAME = ("a", "b", ...)`` definition."""

    name: str
    values: Tuple[str, ...]
    line: int


@dataclass
class ModuleTwinFacts:
    """Per-module twin footprint, carried inside :class:`ModuleSummary`."""

    functions: List[FunctionTwinFacts] = field(default_factory=list)
    constant_defs: List[TwinConstDef] = field(default_factory=list)
    string_tuples: List[TwinStringTuple] = field(default_factory=list)
    exemptions: Tuple[Tuple[str, int], ...] = ()  # (name, line)


# ---------------------------------------------------------------------------
# Phase 1: extraction
# ---------------------------------------------------------------------------


def _const_value(node: ast.AST) -> Optional[float]:
    """Numeric value of a literal (or unary-negated literal), else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and \
            isinstance(node.value, (int, float)) and \
            not isinstance(node.value, bool):
        return float(node.value)
    return None


def const_key(value: float) -> str:
    """Canonical key under which 96, 96.0, and 0x60 all compare equal."""
    try:
        if float(value).is_integer():
            return str(int(value))
    except (OverflowError, ValueError):
        pass
    return repr(float(value))


def _literal_span(node: ast.AST) -> Tuple[int, int, int]:
    """(line, col, end_col) of a literal, unary sign included."""
    end = getattr(node, "end_col_offset", None)
    if end is None:
        end = node.col_offset + 1
    return node.lineno, node.col_offset, end


def _is_counter_call(bare: str, receiver: str) -> bool:
    """Whether a call is a counter emission (``x.counters.add`` or a
    bound ``counters_add`` local)."""
    if bare == "add" and "counters" in receiver.rsplit(".", 1)[-1]:
        return True
    return bare.endswith("counters_add")


def _function_twin_facts(qualname: str, func: ast.AST,
                         source: str) -> FunctionTwinFacts:
    reads: List[TwinRead] = []
    seen_reads: Set[Tuple[str, str]] = set()
    names: Set[str] = set()
    counter_keys: List[Tuple[str, int]] = []
    result_fields: List[Tuple[str, int]] = []
    constants: List[TwinConst] = []
    seen_consts: Set[str] = set()

    def note_const(node: ast.AST) -> None:
        value = _const_value(node)
        if value is None or abs(value) in _TRIVIAL_ABS:
            return
        key = const_key(value)
        if key in seen_consts:
            return
        seen_consts.add(key)
        line, col, end_col = _literal_span(node)
        text = ast.get_source_segment(source, node) or key
        constants.append(TwinConst(key=key, text=text, line=line,
                                   col=col, end_col=end_col))

    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            dedup = (node.attr, dotted_name(node.value))
            if dedup not in seen_reads:
                seen_reads.add(dedup)
                reads.append(TwinRead(attr=node.attr, receiver=dedup[1],
                                      line=node.lineno,
                                      col=node.col_offset + 1))
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.update(_WORD_RE.findall(node.value))
        elif isinstance(node, ast.BinOp):
            note_const(node.left)
            note_const(node.right)
        elif isinstance(node, ast.AugAssign):
            note_const(node.value)
        elif isinstance(node, ast.Compare):
            note_const(node.left)
            for comparator in node.comparators:
                note_const(comparator)
        elif isinstance(node, ast.Call):
            func_node = node.func
            if isinstance(func_node, ast.Attribute):
                bare = func_node.attr
                receiver = dotted_name(func_node.value)
            elif isinstance(func_node, ast.Name):
                bare, receiver = func_node.id, ""
            else:
                continue
            if _is_counter_call(bare, receiver) and node.args and \
                    isinstance(node.args[0], ast.Constant) and \
                    isinstance(node.args[0].value, str):
                counter_keys.append((node.args[0].value, node.lineno))
            elif bare == "_flush_counters":
                # Pairs tuple: (("accesses", n), ("hits", m), ...) — the
                # first element of each inner tuple is the counter key.
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Tuple) and sub.elts and \
                                isinstance(sub.elts[0], ast.Constant) and \
                                isinstance(sub.elts[0].value, str):
                            counter_keys.append(
                                (sub.elts[0].value, sub.lineno))
            elif bare == "SimulationResult":
                for keyword in node.keywords:
                    if keyword.arg:
                        result_fields.append((keyword.arg, node.lineno))

    return FunctionTwinFacts(
        qualname=qualname,
        reads=tuple(reads),
        names=frozenset(names),
        counter_keys=tuple(counter_keys),
        result_fields=tuple(result_fields),
        constants=tuple(constants),
    )


def parse_twin_exemptions(source: str) -> Tuple[Tuple[str, int], ...]:
    """``# mapglint: twin-exempt=name[,name...]`` pragmas of a module."""
    found: List[Tuple[str, int]] = []
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _EXEMPT_RE.search(line)
        if match:
            for part in match.group(1).split(","):
                part = part.strip()
                if part:
                    found.append((part, lineno))
    return tuple(found)


def extract_module_twin(path: str, source: str,
                        tree: ast.Module) -> ModuleTwinFacts:
    """Build the twin footprint of one parsed module (phase 1)."""
    norm = path.replace("\\", "/")
    facts = ModuleTwinFacts(exemptions=parse_twin_exemptions(source))

    # Mirror extract_summary's walk so qualnames line up with FunctionInfo:
    # nested defs get their own entries under the same class name.
    def walk_body(body: Sequence[ast.stmt], class_name: str = "") -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{class_name}.{stmt.name}" if class_name else stmt.name
                facts.functions.append(_function_twin_facts(
                    f"{norm}::{qual}", stmt, source))
                nested = [s for s in stmt.body
                          if isinstance(s, (ast.FunctionDef,
                                            ast.AsyncFunctionDef))]
                if nested:
                    walk_body(nested, class_name=class_name)
            elif isinstance(stmt, ast.ClassDef):
                walk_body(stmt.body, class_name=stmt.name)

    walk_body(tree.body)

    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if len(targets) != 1 or not isinstance(targets[0], ast.Name) or \
                value is None:
            continue
        name = targets[0].id
        number = _const_value(value)
        if number is not None:
            facts.constant_defs.append(TwinConstDef(
                name=name, key=const_key(number), line=stmt.lineno))
        elif isinstance(value, ast.Tuple) and value.elts and all(
                isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                for elt in value.elts):
            facts.string_tuples.append(TwinStringTuple(
                name=name,
                values=tuple(elt.value for elt in value.elts),
                line=stmt.lineno))

    return facts


# ---------------------------------------------------------------------------
# Phase 2: the two closures and their drift sets
# ---------------------------------------------------------------------------

#: Where the oracle's simulation semantics start: the per-segment handler
#: plus the core models that generate the segments it consumes.
ORACLE_ROOT_SUFFIXES = (
    "repro/sim/simulator.py::Simulator.handle_segment",
    "repro/sim/simulator.py::Simulator._handle_busy",
    "repro/sim/simulator.py::Simulator._handle_stall",
    "repro/cpu/core.py::Core.segments",
    "repro/cpu/window.py::WindowedCore.segments",
)

#: Module path suffix defining the SystemConfig tree (mirrors CFG01).
CONFIG_MODULE_SUFFIX = "repro/config.py"

#: Module whose ``_EXCLUDED_DIRS`` tuple defines what the simulation-source
#: digest (ResultCache keying) deliberately skips.
DIGEST_MODULE_SUFFIX = "repro/exec/version.py"
DIGEST_EXCLUDED_NAME = "_EXCLUDED_DIRS"


def is_fastsim_path(path: str) -> bool:
    """Whether a normalized path lies inside the fast engine's package."""
    return "fastsim" in path.replace("\\", "/").split("/")


def _is_delegation_receiver(receiver: str) -> bool:
    """Whether a call edge goes through the wrapped oracle simulator.

    ``FastSimulator`` holds the real :class:`Simulator` as ``self.sim``
    and *delegates* to it on ineligible configurations (``self.sim.run``,
    ``sim.warm_up``).  Those edges are the fallback boundary, not the
    fast path — following them would fold the whole oracle into the fast
    closure and make every drift set vacuously empty.
    """
    return receiver in ("sim", "self.sim") or \
        receiver.startswith("sim.") or receiver.startswith("self.sim.")


@dataclass(frozen=True)
class ConfigFieldInfo:
    """One SystemConfig-tree field with its definition site."""

    class_name: str
    path: str
    line: int
    line_text: str


class TwinAnalysis:
    """Both engines' closures over the name-resolved call graph.

    Closure growth is deliberately *over*-approximate where the effect
    engine is under-approximate: a call site follows **all** same-named
    candidates (not only unambiguous ones), because a missed reachable
    function hides drift while an extra one merely widens the shared
    set.  BFS parents are kept so findings can name the root-to-sink
    chain on both engine sides.
    """

    def __init__(self, model: "object") -> None:
        self._model = model
        self._facts: Dict[str, FunctionTwinFacts] = {}
        self._exemptions: Dict[str, List[Tuple[str, int]]] = {}
        for summary in model.summaries:  # type: ignore[attr-defined]
            twin = getattr(summary, "twin", None)
            if twin is None:
                continue
            for fn_facts in twin.functions:
                self._facts[fn_facts.qualname] = fn_facts
            for name, line in twin.exemptions:
                self._exemptions.setdefault(name, []).append(
                    (summary.path, line))

        oracle_roots = [
            qualname
            for qualname in model.functions_by_qualname  # type: ignore
            if any(qualname.endswith(suffix)
                   for suffix in ORACLE_ROOT_SUFFIXES)]
        fast_roots = [
            info.qualname
            for summary in model.summaries  # type: ignore[attr-defined]
            if is_fastsim_path(summary.path)
            for info in summary.functions
            if info.name != "<module>"]

        self.oracle_parents = self._closure(oracle_roots,
                                            cut_delegation=False)
        self.fast_parents = self._closure(fast_roots, cut_delegation=True)
        self.oracle_functions: FrozenSet[str] = frozenset(self.oracle_parents)
        self.fast_functions: FrozenSet[str] = frozenset(self.fast_parents)
        self.oracle_exclusive: FrozenSet[str] = \
            self.oracle_functions - self.fast_functions

    # -- closure growth ----------------------------------------------------

    def _closure(self, roots: Iterable[str],
                 cut_delegation: bool) -> Dict[str, Optional[str]]:
        """BFS over resolved call edges; maps member -> BFS parent."""
        model = self._model
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in sorted(roots):
            if root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            info = model.functions_by_qualname.get(current)  # type: ignore
            if info is None:
                continue
            for call in info.calls:
                if cut_delegation and _is_delegation_receiver(call.receiver):
                    continue
                for candidate in model.resolve(call.name):  # type: ignore
                    if candidate.qualname not in parents:
                        parents[candidate.qualname] = current
                        queue.append(candidate.qualname)
        return parents

    def chain(self, qualname: str,
              parents: Dict[str, Optional[str]]) -> List[str]:
        """Root-to-``qualname`` path through the BFS parent pointers."""
        path: List[str] = []
        cursor: Optional[str] = qualname
        while cursor is not None and cursor not in path:
            path.append(cursor)
            cursor = parents.get(cursor)
        return list(reversed(path))

    def describe_chain(self, qualname: str,
                       parents: Dict[str, Optional[str]]) -> str:
        """Human-readable ``root -> ... -> sink`` using short names."""
        return " -> ".join(q.rsplit("::", 1)[-1]
                           for q in self.chain(qualname, parents))

    # -- facts lookups -----------------------------------------------------

    def facts_for(self, qualname: str) -> Optional[FunctionTwinFacts]:
        return self._facts.get(qualname)

    @staticmethod
    def module_of(qualname: str) -> str:
        return qualname.rsplit("::", 1)[0]

    def closure_modules(self) -> Dict[str, str]:
        """Module path -> one member qualname, over both closures."""
        modules: Dict[str, str] = {}
        for qualname in sorted(self.oracle_functions | self.fast_functions):
            modules.setdefault(self.module_of(qualname), qualname)
        return modules

    def exempt_names(self) -> FrozenSet[str]:
        """Names excluded from the drift sets by twin-exempt pragmas."""
        return frozenset(self._exemptions)

    def config_fields(self) -> Dict[str, ConfigFieldInfo]:
        """SystemConfig-tree field names with their definition sites."""
        fields: Dict[str, ConfigFieldInfo] = {}
        for path, info in self._model.dataclasses:  # type: ignore
            if not path.endswith(CONFIG_MODULE_SUFFIX):
                continue
            for field_info in info.fields:
                fields.setdefault(field_info.name, ConfigFieldInfo(
                    class_name=info.name, path=path, line=field_info.line,
                    line_text=field_info.line_text))
        return fields

    # -- fast-engine aggregates --------------------------------------------

    def fast_attr_reads(self) -> FrozenSet[str]:
        """Every attribute name read anywhere in the fast closure."""
        reads: Set[str] = set()
        for qualname in self.fast_functions:
            facts = self._facts.get(qualname)
            if facts is not None:
                reads.update(read.attr for read in facts.reads)
        return frozenset(reads)

    def fastsim_names(self) -> FrozenSet[str]:
        """Identifier words in string literals of fastsim-module functions.

        Restricted to the fast engine's *own* source so that a config
        field is only considered "named in the eligibility check" when
        the kernel itself spells it out (e.g. a fallback reason string),
        not when some shared helper happens to mention it.
        """
        names: Set[str] = set()
        for qualname in self.fast_functions:
            if not is_fastsim_path(self.module_of(qualname)):
                continue
            facts = self._facts.get(qualname)
            if facts is not None:
                names.update(facts.names)
        return frozenset(names)

    def _fast_reads_by(self, predicate) -> FrozenSet[str]:
        found: Set[str] = set()
        for qualname in self.fast_functions:
            facts = self._facts.get(qualname)
            if facts is None:
                continue
            found.update(read.attr for read in facts.reads
                         if predicate(read))
        return frozenset(found)

    def fast_ledger_tags(self) -> FrozenSet[str]:
        """PowerState members the fast closure touches (flush writes)."""
        return self._fast_reads_by(_is_powerstate_read)

    def fast_counter_keys(self) -> FrozenSet[str]:
        keys: Set[str] = set()
        for qualname in self.fast_functions:
            facts = self._facts.get(qualname)
            if facts is not None:
                keys.update(key for key, _ in facts.counter_keys)
        return frozenset(keys)

    def fast_result_fields(self) -> FrozenSet[str]:
        fields: Set[str] = set()
        for qualname in self.fast_functions:
            facts = self._facts.get(qualname)
            if facts is not None:
                fields.update(name for name, _ in facts.result_fields)
        return frozenset(fields)

    def fastsim_constants(self) -> Dict[str, Tuple[str, TwinConst]]:
        """Value key -> (qualname, literal) over fastsim-module functions."""
        constants: Dict[str, Tuple[str, TwinConst]] = {}
        for qualname in sorted(self.fast_functions):
            if not is_fastsim_path(self.module_of(qualname)):
                continue
            facts = self._facts.get(qualname)
            if facts is None:
                continue
            for const in facts.constants:
                constants.setdefault(const.key, (qualname, const))
        return constants

    def oracle_constants(self) -> Dict[str, Tuple[str, TwinConst]]:
        """Value key -> (qualname, literal) over the oracle's own source.

        The oracle side of a duplicated constant may well live in a
        function *shared* with the fast closure (the kernel inlines the
        policy update rules but still calls ``decide`` through the real
        controller), so this aggregates over the full oracle closure
        minus fastsim modules — not over the exclusive set.
        """
        constants: Dict[str, Tuple[str, TwinConst]] = {}
        for qualname in sorted(self.oracle_functions):
            if is_fastsim_path(self.module_of(qualname)):
                continue
            facts = self._facts.get(qualname)
            if facts is None:
                continue
            for const in facts.constants:
                constants.setdefault(const.key, (qualname, const))
        return constants

    def shared_constant_defs(self) -> Dict[str, Tuple[str, TwinConstDef]]:
        """Value key -> (module path, def) over non-fastsim module-level
        numeric definitions — the import sources a TWIN04 fix hoists to."""
        defs: Dict[str, Tuple[str, TwinConstDef]] = {}
        for summary in self._model.summaries:  # type: ignore[attr-defined]
            twin = getattr(summary, "twin", None)
            if twin is None or is_fastsim_path(summary.path):
                continue
            for const_def in twin.constant_defs:
                defs.setdefault(const_def.key, (summary.path, const_def))
        return defs

    # -- digest configuration ----------------------------------------------

    def digest_excluded_dirs(self) -> Optional[Tuple[Tuple[str, ...],
                                                     str, int]]:
        """``(_EXCLUDED_DIRS, defining path, line)`` or None if absent."""
        for summary in self._model.summaries:  # type: ignore[attr-defined]
            if not summary.path.endswith(DIGEST_MODULE_SUFFIX):
                continue
            twin = getattr(summary, "twin", None)
            if twin is None:
                continue
            for string_tuple in twin.string_tuples:
                if string_tuple.name == DIGEST_EXCLUDED_NAME:
                    return (string_tuple.values, summary.path,
                            string_tuple.line)
        return None


def _is_powerstate_read(read: TwinRead) -> bool:
    return read.receiver.rsplit(".", 1)[-1] == "PowerState" and \
        read.attr.isupper()
