"""Built-in mapglint rules.

Importing this package registers every rule with the registry in
``repro.lint.base``.
"""

from __future__ import annotations

from repro.lint.rules.cache_soundness import CacheSoundnessRule
from repro.lint.rules.conc_fork import SpawnHygieneRule
from repro.lint.rules.conc_locks import LockDisciplineRule
from repro.lint.rules.conc_persist import AtomicPersistenceRule
from repro.lint.rules.conc_race import SharedStateRaceRule
from repro.lint.rules.config_deadness import ConfigDeadnessRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.err_boundary import BoundaryEscapeRule
from repro.lint.rules.err_handlers import HandlerHygieneRule
from repro.lint.rules.err_hierarchy import HierarchyDisciplineRule
from repro.lint.rules.err_state import ExceptionUnsafeMutationRule
from repro.lint.rules.event_queue import EventQueueRule
from repro.lint.rules.float_equality import FloatEqualityRule
from repro.lint.rules.fsm_legality import FsmLegalityRule
from repro.lint.rules.interprocedural import InterproceduralUnitRule
from repro.lint.rules.ledger import EnergyLedgerRule
from repro.lint.rules.obs_neutrality import ObsNeutralityRule
from repro.lint.rules.picklable import PicklablePayloadRule
from repro.lint.rules.res_lifecycle import ResourceLifecycleRule
from repro.lint.rules.twin_config import TwinConfigCoverageRule
from repro.lint.rules.twin_const import TwinConstantDuplicationRule
from repro.lint.rules.twin_digest import TwinDigestCoverageRule
from repro.lint.rules.twin_result import TwinResultCoverageRule
from repro.lint.rules.unit_safety import UnitSafetyRule
from repro.lint.rules.worker_purity import WorkerPurityRule

__all__ = [
    "AtomicPersistenceRule",
    "BoundaryEscapeRule",
    "CacheSoundnessRule",
    "ConfigDeadnessRule",
    "ExceptionUnsafeMutationRule",
    "HandlerHygieneRule",
    "HierarchyDisciplineRule",
    "LockDisciplineRule",
    "ResourceLifecycleRule",
    "SharedStateRaceRule",
    "SpawnHygieneRule",
    "DeterminismRule",
    "EnergyLedgerRule",
    "EventQueueRule",
    "FloatEqualityRule",
    "FsmLegalityRule",
    "InterproceduralUnitRule",
    "ObsNeutralityRule",
    "PicklablePayloadRule",
    "TwinConfigCoverageRule",
    "TwinConstantDuplicationRule",
    "TwinDigestCoverageRule",
    "TwinResultCoverageRule",
    "UnitSafetyRule",
    "WorkerPurityRule",
]
