"""CACHE01 — cache-key soundness.

The result cache (:mod:`repro.exec.cache`) addresses every simulation by
``sha256(simulation-source digest ; JobSpec key)``: the digest covers the
*source* of every module under ``repro`` except ``repro/lint``, and the
spec key covers every declared input.  That key is sound only if nothing
else can influence a result.  Three inputs are invisible to it and are
therefore stale-cache hazards anywhere in the digest-set scope:

1. **Environment reads** — ``os.environ`` / ``os.getenv`` values change
   between runs without changing any hashed byte, so two runs with the
   same key could compute different results (and the second is served the
   first's numbers).

2. **Mutable module globals** — a module-level dict/list/set (or a
   ``global``-rebound name) mutated after import carries state from one
   simulation into the next within a process; the digest hashed the
   empty initial literal, not the accumulated contents.

3. **Class-level mutable attributes** — a ``cache = {}`` in a class body
   is shared by every instance: the same cross-simulation leak with an
   extra level of indirection.

A deliberate, content-pure memo (a value derived entirely from the
payload or the hashed source tree, e.g. a per-process trace store) is
declared on its definition line with ``# mapglint: declared-cache``,
which is the author's auditable claim that it cannot change any result.
Import-time initialization (the ``<module>`` body) is exempt for global
writes: whatever it computes is a pure function of the hashed source.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.effects import ENV, GLOBAL_READ, GLOBAL_WRITE
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path


def in_digest_scope(path: str) -> bool:
    """Whether a file is hashed into the simulation-source digest
    (everything under ``repro`` except ``repro/lint``; tests excluded)."""
    if is_test_path(path) or not in_repro(path):
        return False
    return "repro/lint" not in path.replace("\\", "/")


@register_project_rule
class CacheSoundnessRule(ProjectRule):
    rule_id = "CACHE01"
    summary = ("no simulation input invisible to the result-cache key: "
               "env reads, post-import mutable module globals, and "
               "class-level caches in digest-set code are stale-cache "
               "hazards (declare content-pure memos with "
               "'# mapglint: declared-cache')")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if not in_digest_scope(summary.path):
                continue
            effects = summary.module_effects
            if effects is None:
                continue
            for info in effects.functions:
                for effect in info.effects:
                    self._check_effect(summary.path, info.name, effect)
            for attr in effects.class_mutable_attrs:
                self.report(
                    summary.path, attr.line, attr.col,
                    f"class-level mutable attribute "
                    f"'{attr.class_name}.{attr.attr}' is shared by every "
                    f"instance and invisible to the result-cache key; move "
                    f"it into __init__, or mark the definition "
                    f"'# mapglint: declared-cache' if it provably cannot "
                    f"change any result",
                    line_text=attr.line_text)

    def _check_effect(self, path: str, func_name: str, effect) -> None:
        if effect.kind == ENV:
            self.report(
                path, effect.line, effect.col,
                f"{effect.detail} inside digest-set code; environment "
                f"values are invisible to the result-cache key, so cached "
                f"results go stale when they change — thread the value "
                f"through a JobSpec/config field instead",
                line_text=effect.line_text)
        elif effect.kind in (GLOBAL_READ, GLOBAL_WRITE):
            if func_name == "<module>":
                return  # import-time init is a pure function of the digest
            self.report(
                path, effect.line, effect.col,
                f"{effect.detail} inside digest-set code; post-import "
                f"global state is invisible to the result-cache key and "
                f"leaks between simulations in one process — pass the "
                f"value explicitly, or mark the definition "
                f"'# mapglint: declared-cache' if it is a content-pure "
                f"memo",
                line_text=effect.line_text)
