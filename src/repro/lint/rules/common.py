"""Shared helpers: unit classification of identifiers by naming convention.

The package-wide convention (see ``repro/units.py`` and ``docs/LINTING.md``)
is that a name's suffix declares its unit: ``*_cycles`` is an integer count
of core-clock cycles, while ``*_s``, ``*_j``, ``*_w``, ``*_hz`` (and their
SI-scaled variants like ``*_ns``, ``*_nj``) are SI floats.  The rules use
this to detect cycle/SI mixing and float-typed operands statically.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Optional

CYCLE = "cycle"
SI = "si"

_CYCLE_SUFFIXES = ("_cycles", "_cycle")
_CYCLE_NAMES = frozenset({"cycles", "cycle"})

_SI_SUFFIXES = (
    "_s", "_ns", "_us", "_ms", "_ps", "_fs", "_seconds",
    "_j", "_nj", "_pj", "_uj", "_mj", "_fj", "_joules",
    "_w", "_nw", "_uw", "_mw", "_watts",
    "_hz", "_khz", "_mhz", "_ghz", "_hertz",
)
_SI_NAMES = frozenset({
    "seconds", "joules", "watts", "hertz",
    "ns", "us", "ms", "ps", "fs",
    "nj", "pj", "uj", "mj", "fj",
    "nw", "uw", "mw", "khz", "mhz", "ghz",
})


def unit_of_name(name: str) -> Optional[str]:
    """Classify an identifier as cycle-valued, SI-valued, or neither."""
    lowered = name.lower()
    if lowered in _CYCLE_NAMES or lowered.endswith(_CYCLE_SUFFIXES):
        return CYCLE
    if lowered in _SI_NAMES or lowered.endswith(_SI_SUFFIXES):
        return SI
    return None


def node_name(node: ast.AST) -> Optional[str]:
    """The identifier a node carries, if any (Name, Attribute, or Call)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return node_name(node.func)
    return None


def unit_families(node: ast.AST) -> FrozenSet[str]:
    """Every unit family an expression's identifiers belong to.

    Recurses through arithmetic and unary operators so that
    ``a_cycles + (b + wake_s)`` is seen to involve both families; stops at
    calls and subscripts apart from classifying their own name (a call
    named ``*_s`` is presumed to return seconds).
    """
    if isinstance(node, (ast.Name, ast.Attribute, ast.Call)):
        name = node_name(node)
        family = unit_of_name(name) if name is not None else None
        return frozenset({family}) if family is not None else frozenset()
    if isinstance(node, ast.BinOp):
        return unit_families(node.left) | unit_families(node.right)
    if isinstance(node, ast.UnaryOp):
        return unit_families(node.operand)
    return frozenset()
