"""CONC03 — fork/spawn hygiene.

PAR01 proves a pool payload has the right *shape* (picklable, no open
handles in arguments).  This rule tightens it with what the payload
*does* once it runs, and what the submitter holds while handing it over:

1. **Thread spawns inside worker payloads.**  ``SweepRunner`` sizes the
   pool to the machine; a worker that spawns its own threads (or async
   tasks) oversubscribes every core, and worse, makes per-cell results
   depend on intra-worker scheduling that no seed controls.  The check
   is interprocedural: a ``thread-spawn`` effect anywhere in the
   worker's transitive closure is reported at the submission site with
   the real chain.

2. **Module-global lock state reachable by workers.**  Under the spawn
   start method every worker re-imports the module and gets a *fresh*
   lock object: a worker that acquires a lock-typed module global
   synchronizes against nobody — the lock guards nothing across
   processes, which is worse than no lock because it looks safe.

3. **Submitting while holding a lock.**  Work handed to a pool under a
   held lock couples the lock's critical section to worker completion
   (``map`` blocks; ``submit`` futures get awaited later while the lock
   is still held by convention) — the classic shape of a
   submission-deadlock.  Submit first, lock around the merge.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import (
    concurrent_roots, iter_module_effects, lock_globals_of)
from repro.lint.project.effects import LOCK, THREAD, format_chain
from repro.lint.project.graph import ProjectModel


@register_project_rule
class SpawnHygieneRule(ProjectRule):
    rule_id = "CONC03"
    summary = ("pool payloads must not spawn threads or touch "
               "module-global locks (spawn re-imports give every worker "
               "a fresh, useless lock), and work must not be submitted "
               "while a lock is held")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        self._check_payload_effects(model)
        self._check_submission_sites(model)

    # -- what the worker does, transitively ----------------------------------

    def _check_payload_effects(self, model: ProjectModel) -> None:
        propagator = model.effects()
        for root in concurrent_roots(model):
            if root.kind != "pool":
                continue
            seen = set()
            reached = sorted(
                propagator.transitive(root.worker_qualname),
                key=lambda r: (r.origin, r.effect.kind, r.effect.line,
                               r.effect.col))
            for item in reached:
                effect = item.effect
                origin_path = item.origin.split("::", 1)[0]
                if effect.kind == THREAD:
                    message = (
                        f"pool worker '{root.worker_name}' spawns a "
                        f"thread: {effect.detail}")
                elif effect.kind == LOCK and effect.symbol and \
                        effect.symbol.split(".", 1)[0] in \
                        lock_globals_of(model, origin_path):
                    message = (
                        f"pool worker '{root.worker_name}' acquires "
                        f"module-global lock '{effect.symbol}', which "
                        f"spawn re-creates fresh in every worker — it "
                        f"synchronizes against nobody")
                else:
                    continue
                dedup = (item.origin, effect.kind, effect.symbol)
                if dedup in seen:
                    continue
                seen.add(dedup)
                chain = format_chain(
                    propagator.call_path(root.worker_qualname, item.origin))
                self.report(
                    root.path, root.line, root.col,
                    f"{message} (via {chain}, at "
                    f"{origin_path}:{effect.line}); workers must stay "
                    f"single-threaded and share state only through their "
                    f"payload and return value",
                    line_text=root.line_text)

    # -- what the submitter holds --------------------------------------------

    def _check_submission_sites(self, model: ProjectModel) -> None:
        for summary, effects in iter_module_effects(model):
            for submission in effects.pool_submissions:
                if not submission.locks_held:
                    continue
                held = ", ".join(f"'{name}'"
                                 for name in submission.locks_held)
                self.report(
                    summary.path, submission.line, submission.col,
                    f"{submission.method}() submission while holding "
                    f"{held}; coupling a critical section to worker "
                    f"completion is a submission-deadlock waiting to "
                    f"happen — submit outside the lock and lock around "
                    f"the merge instead",
                    line_text=submission.line_text)
