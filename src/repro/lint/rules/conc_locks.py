"""CONC02 — lock discipline.

A lock is only as good as the structure around it.  Three shapes make a
correct-looking lock wrong:

1. **Unstructured acquire** — a bare ``lock.acquire()`` with no
   ``release()`` in the same function leaks the lock on every exception
   path (and usually on the happy path too); every thread that touches
   the lock afterwards deadlocks.  ``with lock:`` releases on every
   exit edge by construction.

2. **Unprotected release** — a ``release()`` outside a ``finally``
   block (or under a branch) is skipped exactly when an exception or an
   early return takes the other path.  The pairing must be
   ``acquire(); try: ... finally: release()`` — or, better, ``with``.

3. **Inconsistent acquisition order** — if one function nests lock *A*
   then *B* and another nests *B* then *A*, two threads can each hold
   one lock and wait forever for the other.  The check is project-wide
   over the statically observed nesting pairs, with lock spellings
   canonicalized per class / module / function so unrelated locks that
   share a name never alias (see
   :mod:`repro.lint.project.concurrency`).

Phase 1 records every ``with lock:`` block and bare ``acquire``/
``release`` with its control-flow context (conditional? inside a
``finally``?) and the locks already held, which is all this rule needs —
no ASTs, no resolution, so it runs on warm caches too.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import (
    iter_module_effects, lock_globals_of, qualify_lock)
from repro.lint.project.graph import ProjectModel


@register_project_rule
class LockDisciplineRule(ProjectRule):
    rule_id = "CONC02"
    summary = ("locks must be held structurally: no bare acquire without "
               "a finally-protected release in the same function, no "
               "conditional release, and a project-wide consistent "
               "nesting order for every pair of locks")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        # (outer, inner) -> first site, for the order check.
        pair_sites: Dict[Tuple[str, str], Tuple[str, object]] = {}
        for summary, effects in iter_module_effects(model):
            module_locks = lock_globals_of(model, summary.path)
            by_function: Dict[Tuple[str, str], List[object]] = {}
            for op in effects.lock_ops:
                by_function.setdefault((op.function, op.lock),
                                       []).append(op)
                for outer in op.held_before:
                    outer_id = qualify_lock(summary.path, op.function,
                                            outer, module_locks)
                    inner_id = qualify_lock(summary.path, op.function,
                                            op.lock, module_locks)
                    pair_sites.setdefault((outer_id, inner_id),
                                          (summary.path, op))
            for (function, lock), ops in sorted(by_function.items()):
                self._check_pairing(summary.path, function, lock, ops)
        self._check_order(pair_sites)

    # -- acquire/release pairing within one function -------------------------

    def _check_pairing(self, path: str, function: str, lock: str,
                       ops: List[object]) -> None:
        acquires = [op for op in ops if op.op == "acquire"]
        releases = [op for op in ops if op.op == "release"]
        if not acquires:
            return
        func_name = function.split("::", 1)[-1]
        if not releases:
            for op in acquires:
                self.report(
                    path, op.line, op.col,
                    f"'{lock}.acquire()' in '{func_name}' has no "
                    f"matching release() in the same function; an "
                    f"exception after this line leaves the lock held "
                    f"forever — use 'with {lock}:' (releases on every "
                    f"exit edge)",
                    line_text=op.line_text)
            return
        for op in releases:
            if not op.in_finally:
                self.report(
                    path, op.line, op.col,
                    f"'{lock}.release()' in '{func_name}' is not inside "
                    f"a finally block; the exception path skips it and "
                    f"the lock stays held — pair acquire() with "
                    f"'try: ... finally: release()', or use "
                    f"'with {lock}:'",
                    line_text=op.line_text)
            elif op.conditional:
                self.report(
                    path, op.line, op.col,
                    f"'{lock}.release()' in '{func_name}' runs only "
                    f"under a branch; the other path leaves the lock "
                    f"held — release unconditionally in a finally "
                    f"block, or use 'with {lock}:'",
                    line_text=op.line_text)

    # -- project-wide acquisition order --------------------------------------

    def _check_order(self, pair_sites: Dict[Tuple[str, str],
                                            Tuple[str, object]]) -> None:
        for (outer, inner), (path, op) in sorted(
                pair_sites.items(),
                key=lambda kv: (kv[1][0], kv[1][1].line, kv[1][1].col)):
            if outer >= inner or (inner, outer) not in pair_sites:
                continue  # report each inverted pair once, at one site
            other_path, other = pair_sites[(inner, outer)]
            outer_name = outer.rsplit("::", 1)[-1]
            inner_name = inner.rsplit("::", 1)[-1]
            self.report(
                path, op.line, op.col,
                f"inconsistent lock order: '{inner_name}' is acquired "
                f"while holding '{outer_name}' here, but "
                f"{other_path}:{other.line} acquires them in the "
                f"opposite order; two threads taking the two paths "
                f"deadlock — pick one global order and nest every "
                f"acquisition the same way",
                line_text=op.line_text)
