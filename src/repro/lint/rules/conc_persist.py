"""CONC04 — atomic persistence for digest-keyed cache entries.

Both persistence layers publish entries the same way on purpose:
``repro.exec.cache`` (sweep results) and ``repro.lint.cache`` (phase-1
summaries) write to a private temp file in the destination directory and
``os.replace()`` it over the final digest-keyed path.  POSIX rename is
atomic, so a concurrent reader sees either the old entry or the new one
— never a half-written pickle that deserializes into garbage served as a
cached result.

A direct ``open(entry_path, "w")`` breaks that invariant: between the
``open`` and the last ``write`` the entry exists *and is torn*, and with
two sweep processes racing (exactly what the warm-pool roadmap item
sets up) the reader's failure mode is not a crash but a wrong number.

Phase 1 records every write-mode ``open`` with its path spelling and
whether the same function calls ``os.replace``.  This rule fires on
writes whose path spelling names a cache entry (``cache``/``entry``/
``digest``) when the function has no ``os.replace`` and the path is not
already a temp file.  Matching by spelling is the same honesty contract
as the lock heuristic: a cache path the convention cannot recognize
should be renamed, not special-cased.

The fix is mechanical::

    tmp = f"{entry}.{os.getpid()}.tmp"
    with open(tmp, "wb") as handle:
        handle.write(payload)
    os.replace(tmp, entry)
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import iter_module_effects
from repro.lint.project.graph import ProjectModel

#: Path spellings that look like digest-keyed persistence destinations.
_ENTRY_HINTS = ("cache", "entry", "digest")

#: Path spellings already naming a private temp file (the good pattern's
#: first half; the ``os.replace`` that publishes it is checked per call
#: site being present in the same function).
_TEMP_HINTS = ("tmp", "temp")


def is_entry_path(path_repr: str) -> bool:
    """Whether a path spelling names a cache entry (and not a temp file)."""
    spelling = path_repr.lower()
    return any(hint in spelling for hint in _ENTRY_HINTS) and \
        not any(hint in spelling for hint in _TEMP_HINTS)


@register_project_rule
class AtomicPersistenceRule(ProjectRule):
    rule_id = "CONC04"
    summary = ("digest-keyed cache entries must be published atomically: "
               "write a private temp file and os.replace() it over the "
               "entry path, never open the entry path for writing "
               "directly")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary, effects in iter_module_effects(model):
            for write in effects.file_writes:
                if not is_entry_path(write.path_repr):
                    continue
                if write.replace_in_function:
                    continue
                func_name = write.in_function.split("::", 1)[-1]
                self.report(
                    summary.path, write.line, write.col,
                    f"open({write.path_repr!r}, mode={write.mode!r}) in "
                    f"'{func_name}' writes a cache entry in place; a "
                    f"concurrent reader can observe the torn entry as a "
                    f"valid cached result — write to a '.{{pid}}.tmp' "
                    f"sibling and publish it with os.replace() (atomic "
                    f"on POSIX), as repro.exec.cache and "
                    f"repro.lint.cache do",
                    line_text=write.line_text)
