"""CONC01 — shared-state race.

The worker-pool and daemon roadmap items make the repo genuinely
concurrent: watcher threads, a warm pool, async tasks.  Once a second
flow of control exists, three kinds of writes become races:

1. **Guarded fields written without their lock.**  A
   ``# mapglint: guarded-by=<lock>`` pragma on a definition line is the
   author's contract that every post-init write holds that lock.  The
   check is unconditional — the contract is explicit, so a bare write is
   a bug whether or not the analyzer can see the thread that will hit it
   (the one it cannot see is exactly the one that bites in production).

2. **Mutable module globals written on a thread/task-reachable path.**
   Phase 2's fixpoint closure answers which functions a spawned worker
   can transitively reach; a global write on such a path with no lock
   statically held is reported *at the spawn site* with the real
   spawn-to-access chain.  Pool roots are exempt here: PURE01 already
   rejects every global write in a pool worker, and one finding per
   defect is the house rule.

3. **Class-level mutable attributes mutated on any concurrent-reachable
   path** (pool roots included — PURE01 does not track attribute
   mutation).  A ``cache = {}`` in a class body is one object shared by
   every instance and every thread.

Writes with *any* lock statically held are trusted: the analyzer cannot
prove the lock is the right one without a binding, which is what the
guarded-by pragma is for.  Suggest the pragma; never guess.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import (
    binding_locks, concurrent_roots, iter_module_effects)
from repro.lint.project.effects import (
    GLOBAL_WRITE, GUARDED_WRITE, SHARED_WRITE, format_chain)
from repro.lint.project.graph import ProjectModel


@register_project_rule
class SharedStateRaceRule(ProjectRule):
    rule_id = "CONC01"
    summary = ("no unsynchronized writes to shared state: guarded-by "
               "bound fields must hold their lock, and module globals / "
               "class-level mutable attrs must not be written on a path "
               "reachable from a thread, task, or pool entry point "
               "without a lock held")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        self._check_guarded_contracts(model)
        self._check_reachable_writes(model)

    # -- part A: the guarded-by contract, enforced at every write site ------

    def _check_guarded_contracts(self, model: ProjectModel) -> None:
        for summary, effects in iter_module_effects(model):
            for info in effects.functions:
                for effect in info.effects:
                    if effect.kind != GUARDED_WRITE:
                        continue
                    locks = binding_locks(model, summary.path, effect.symbol)
                    if locks & set(effect.locks_held):
                        continue
                    expected = " or ".join(f"'{lock}'"
                                           for lock in sorted(locks))
                    held = (", holding only " + ", ".join(
                        f"'{name}'" for name in effect.locks_held)
                        if effect.locks_held else " with no lock held")
                    self.report(
                        summary.path, effect.line, effect.col,
                        f"{effect.detail} in '{info.name}'{held}; the "
                        f"definition binds this field to {expected} "
                        f"(# mapglint: guarded-by), so every post-init "
                        f"write must hold that lock — wrap the write in "
                        f"'with {sorted(locks)[0]}:'",
                        line_text=effect.line_text)

    # -- part B: unguarded writes on concurrent-reachable paths -------------

    def _check_reachable_writes(self, model: ProjectModel) -> None:
        propagator = model.effects()
        for root in concurrent_roots(model):
            hazard_kinds = {SHARED_WRITE}
            if root.kind != "pool":
                # Pool workers' global writes are PURE01 findings already.
                hazard_kinds.add(GLOBAL_WRITE)
            seen = set()
            reached = sorted(
                propagator.transitive(root.worker_qualname),
                key=lambda r: (r.origin, r.effect.kind, r.effect.line,
                               r.effect.col))
            for item in reached:
                effect = item.effect
                if effect.kind not in hazard_kinds or effect.locks_held:
                    continue
                dedup = (item.origin, effect.kind, effect.symbol)
                if dedup in seen:
                    continue
                seen.add(dedup)
                chain = format_chain(
                    propagator.call_path(root.worker_qualname, item.origin))
                origin_path = item.origin.split("::", 1)[0]
                what = ("thread" if root.kind == "thread" else
                        "task" if root.kind == "task" else "pool worker")
                self.report(
                    root.path, root.line, root.col,
                    f"{root.api}() spawns a {what} that reaches an "
                    f"unsynchronized shared write: {effect.detail} "
                    f"(via {chain}, at {origin_path}:{effect.line}) with "
                    f"no lock held; guard the write with a lock and bind "
                    f"it with '# mapglint: guarded-by=<lock>' on the "
                    f"definition line",
                    line_text=root.line_text)
