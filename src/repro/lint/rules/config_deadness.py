"""CFG01 — dead or unvalidated configuration fields.

The ``SystemConfig`` tree is the contract between the paper's tables and
the simulator: every knob either steers the model or it lies to the reader
who sweeps it.  Using the project-wide symbol table, two smells are
flagged on the dataclasses defined in ``repro/config.py``:

1. **Dead field** — a field never read anywhere in non-test source
   (validation reads inside ``__post_init__`` do not count as uses, and
   neither do ``to_dict``/``asdict`` round-trips, which touch fields
   dynamically).  A knob nobody reads silently no-ops every sweep that
   varies it.

2. **Unvalidated numeric field** — an ``int``/``float`` field of a class
   that has a ``__post_init__`` but never mentions the field there (as an
   attribute or a string fed to ``getattr``).  An out-of-range value then
   fails mid-simulation — or worse, doesn't.

Reads are matched by attribute *name* across the project (no type
resolution), which errs quiet: a generically named field (``name``,
``enabled``) is considered read if *anything* reads that attribute name.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel

_CONFIG_MODULE_SUFFIX = "repro/config.py"
_NUMERIC_ANNOTATIONS = frozenset({"int", "float"})


@register_project_rule
class ConfigDeadnessRule(ProjectRule):
    rule_id = "CFG01"
    summary = ("SystemConfig-tree dataclass fields must be read somewhere "
               "in src and numeric fields must be range-checked in "
               "__post_init__")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for path, info in model.dataclasses:
            if not path.endswith(_CONFIG_MODULE_SUFFIX):
                continue
            for field_info in info.fields:
                line_text = field_info.line_text
                # src_attr_reads excludes __post_init__ bodies, so the
                # union over src modules is exactly "non-validation reads"
                # — including reads in the defining module's own
                # properties and sweep helpers.
                if field_info.name not in model.src_attr_reads:
                    self.report(
                        path, field_info.line, 1,
                        f"config field {info.name}.{field_info.name} is "
                        f"never read anywhere in src/repro; a knob nobody "
                        f"reads silently no-ops every sweep that varies it "
                        f"— wire it into the model or delete it",
                        line_text=line_text)
                elif field_info.annotation in _NUMERIC_ANNOTATIONS and \
                        info.has_post_init and \
                        field_info.name not in info.validated:
                    self.report(
                        path, field_info.line, 1,
                        f"numeric config field {info.name}.{field_info.name} "
                        f"is never range-checked in __post_init__; an "
                        f"out-of-range value fails mid-simulation instead "
                        f"of at construction",
                        line_text=line_text,
                        severity=Severity.WARNING)
