"""DET01 — determinism.

Simulations must be bit-reproducible given a seed (the same discipline
gem5's DRAM power-state models rely on for their energy claims).  Three
sources of hidden nondeterminism are flagged:

1. **Global RNG calls** (everywhere) — ``random.random()``,
   ``numpy.random.rand()`` and friends draw from process-global generators
   whose state any import can perturb.  Components must own a seeded
   ``random.Random(seed)`` / ``numpy.random.default_rng(seed)`` instance.

2. **Wall-clock reads** (simulation code) — ``time.time()``,
   ``datetime.now()`` etc. inside ``repro/sim``, ``repro/core``,
   ``repro/cpu``, ``repro/memory``, ``repro/obs``, ``repro/exec``, or
   ``repro/fastsim`` leak
   host time into simulated time (for ``repro/exec`` it could leak into
   scheduling, which must stay content-addressed; the batched kernel in
   ``repro/fastsim`` claims bit-identity with the oracle, so host time
   anywhere inside it voids that contract).  Three modules are
   allowlisted: ``repro/obs/profile.py`` *is* the self-profiling harness,
   whose whole job is measuring the simulator's own wall time and memory;
   ``repro/obs/sweep.py`` timestamps sweep lifecycle events (cells/sec,
   ETA) the same way; and ``repro/obs/anomaly.py`` judges those host
   measurements against the bench baseline.  All three report *about*
   the host, never into the simulation (see docs/OBSERVABILITY.md) —
   OBS01 separately proves their values cannot reach results.

3. **Set iteration** (``repro/sim``, ``repro/core``, ``repro/exec``, and
   ``repro/fastsim``)
   — iterating a set
   literal or ``set()``/``frozenset()`` call orders elements by hash;
   string hashes are randomized per process, so iteration order — and any
   tie-break it feeds — changes between runs.  Iterate a sorted sequence
   instead.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.base import FileContext, LintRule, register_rule
from repro.lint.findings import Severity

_GLOBAL_RANDOM_FUNCS = frozenset({
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
})

_NUMPY_RANDOM_FUNCS = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "gamma", "geometric", "gumbel", "laplace", "lognormal",
    "logistic", "multinomial", "multivariate_normal", "normal",
    "permutation", "poisson", "rand", "randint", "randn", "random",
    "random_integers", "random_sample", "ranf", "rayleigh", "sample",
    "seed", "shuffle", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})

_WALL_CLOCK = {
    "time": frozenset({"time", "time_ns", "perf_counter", "perf_counter_ns",
                       "monotonic", "monotonic_ns", "process_time"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}

_SIM_PACKAGES = ("repro/sim", "repro/core", "repro/cpu", "repro/memory",
                 "repro/obs", "repro/exec", "repro/fastsim")
# Modules exempt from the wall-clock check: the self-profiler and the
# sweep/anomaly telemetry measure the host on purpose — the blessed homes
# for perf_counter et al.  Everything else in obs/exec stays clock-free.
_WALL_CLOCK_ALLOWLIST = ("repro/obs/profile.py", "repro/obs/sweep.py",
                         "repro/obs/anomaly.py")
_SET_SCOPE = ("repro/sim", "repro/core", "repro/exec", "repro/fastsim")


def _attribute_base_name(node: ast.Attribute) -> Optional[str]:
    """The name of the object an attribute hangs off, e.g. ``time`` or
    ``np.random`` -> ``random`` for the final hop's base."""
    if isinstance(node.value, ast.Name):
        return node.value.id
    if isinstance(node.value, ast.Attribute):
        return node.value.attr
    return None


def _is_numpy_random_chain(node: ast.Attribute) -> bool:
    """Matches ``np.random.X`` / ``numpy.random.X`` attribute chains."""
    value = node.value
    return (isinstance(value, ast.Attribute)
            and value.attr == "random"
            and isinstance(value.value, ast.Name)
            and value.value.id in ("np", "numpy"))


@register_rule
class DeterminismRule(LintRule):
    rule_id = "DET01"
    summary = ("no global-RNG calls, no wall-clock reads in "
               "sim/obs/exec/fastsim code (obs profile/sweep/anomaly "
               "modules allowlisted), no set iteration in repro/sim, "
               "repro/core, repro/exec, and repro/fastsim")
    default_severity = Severity.ERROR

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            base = _attribute_base_name(func)
            if (isinstance(func.value, ast.Name) and base == "random"
                    and func.attr in _GLOBAL_RANDOM_FUNCS):
                self.report(node,
                            f"random.{func.attr}() uses the process-global "
                            f"RNG; draw from a seeded random.Random(seed) "
                            f"instance instead")
            elif _is_numpy_random_chain(func) and \
                    func.attr in _NUMPY_RANDOM_FUNCS:
                self.report(node,
                            f"numpy.random.{func.attr}() uses the global "
                            f"NumPy RNG; use numpy.random.default_rng(seed)")
            elif self._in_sim_code() and base in _WALL_CLOCK and \
                    func.attr in _WALL_CLOCK[base]:
                self.report(node,
                            f"{base}.{func.attr}() reads the host wall "
                            f"clock inside simulation code; simulated time "
                            f"must come from the cycle counter")
        self.generic_visit(node)

    def _in_sim_code(self) -> bool:
        assert self.context is not None
        if any(self.context.is_module(module)
               for module in _WALL_CLOCK_ALLOWLIST):
            return False
        return self.context.in_package(*_SIM_PACKAGES)

    # -- set iteration -----------------------------------------------------

    def _check_iterable(self, iterable: ast.AST) -> None:
        assert self.context is not None
        if not self.context.in_package(*_SET_SCOPE):
            return
        if isinstance(iterable, ast.Set):
            self.report(iterable,
                        "iteration over a set literal is hash-ordered and "
                        "differs between runs; iterate a tuple/list or "
                        "sorted(...) instead")
        elif isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id in ("set", "frozenset"):
            self.report(iterable,
                        f"iteration over {iterable.func.id}() is "
                        f"hash-ordered and differs between runs; wrap in "
                        f"sorted(...) or keep insertion order with dict")

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)
