"""ERR01 — exception escape at a process boundary.

Three places in this repo are *boundaries*: once an exception crosses
them, there is no caller left that can handle it well.

1. **Pool workers.**  An exception escaping a ``multiprocessing`` worker
   surfaces as a bare re-raise at the pool join in the parent — the
   sweep dies, every in-flight cell is discarded, and at the 10^4-cell
   scale of the roadmap's cross-product studies the failing cell is
   unidentifiable.  A worker must catch, wrap the failure with its spec
   key, and return a failure record.

2. **CLI entry points** (``main`` in a ``cli.py``/``__main__.py``).  An
   escaping exception means a raw traceback for the user instead of a
   one-line error and a nonzero exit.

3. **Cache ``store``/``load`` paths.**  A corrupt or stale entry must
   mean a *miss* (or a skipped store), never an abort: the cache is an
   optimization and may not change observable behavior.

The escaping sets come from phase 2's fixpoint
(:mod:`repro.lint.project.errflow`), so every finding names a real raise
statement and the real call chain it travels.  A boundary that handles
everything intentionally — by catching broadly and returning a failure
record — declares ``# mapglint: error-boundary`` on its definition line,
which is both ERR01's exemption and ERR02's license to swallow there.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import concurrent_roots
from repro.lint.project.effects import format_chain
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path
from repro.lint.project.summary import FunctionInfo


def cli_entry_points(model: ProjectModel) -> List[Tuple[str, FunctionInfo]]:
    """``(path, FunctionInfo)`` for every CLI ``main`` in repro source."""
    entries: List[Tuple[str, FunctionInfo]] = []
    for summary in model.summaries:
        if is_test_path(summary.path) or not in_repro(summary.path):
            continue
        filename = summary.path.rsplit("/", 1)[-1]
        if filename not in ("cli.py", "__main__.py"):
            continue
        for info in summary.functions:
            if info.name == "main":
                entries.append((summary.path, info))
    return entries


def cache_endpoints(model: ProjectModel) -> List[Tuple[str, FunctionInfo]]:
    """``(path, FunctionInfo)`` for every ``*Cache.store``/``load``."""
    endpoints: List[Tuple[str, FunctionInfo]] = []
    for summary in model.summaries:
        if is_test_path(summary.path) or not in_repro(summary.path):
            continue
        for info in summary.functions:
            qual = info.qualname.split("::", 1)[-1]
            if "." not in qual:
                continue
            class_name, method = qual.rsplit(".", 1)
            if class_name.endswith("Cache") and method in ("store", "load"):
                endpoints.append((summary.path, info))
    return endpoints


@register_project_rule
class BoundaryEscapeRule(ProjectRule):
    rule_id = "ERR01"
    summary = ("no exception may escape a process boundary: pool workers, "
               "CLI entry points, and cache store/load paths must catch "
               "what their call tree can raise (or declare "
               "'# mapglint: error-boundary' after handling it) — an "
               "escape kills the sweep, the user session, or turns a "
               "corrupt cache entry into an abort")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        flow = model.errflow()
        reported = set()

        def check(boundary_qualname: str, path: str, line: int, col: int,
                  line_text: str, described: str, fix: str) -> None:
            if flow.is_boundary(boundary_qualname):
                return
            for escape in sorted(
                    flow.escaping(boundary_qualname),
                    key=lambda e: (e.exc_type, e.origin, e.site.line)):
                dedup = (boundary_qualname, escape.exc_type, escape.origin)
                if dedup in reported:
                    continue
                reported.add(dedup)
                chain = format_chain(flow.chain(boundary_qualname, escape))
                origin_path = escape.origin.split("::", 1)[0]
                self.report(
                    path, line, col,
                    f"{described} can leak {escape.exc_type} raised at "
                    f"{origin_path}:{escape.site.line} (via {chain}); "
                    f"{fix}, or declare '# mapglint: error-boundary' on "
                    f"the definition line once it handles everything",
                    line_text=line_text)

        for root in concurrent_roots(model):
            if root.kind != "pool":
                continue
            check(root.worker_qualname, root.path, root.line, root.col,
                  root.line_text,
                  f"pool submission runs '{root.worker_name}', which",
                  "an uncaught worker exception aborts the pool join and "
                  "discards every in-flight cell — catch inside the worker "
                  "and return a failure record naming the cell")

        for path, info in cli_entry_points(model):
            check(info.qualname, path, info.line, 1, "",
                  "CLI entry point 'main'",
                  "the user would see a raw traceback — catch ReproError "
                  "here, print one line to stderr, and exit nonzero")

        for path, info in cache_endpoints(model):
            qual = info.qualname.split("::", 1)[-1]
            check(info.qualname, path, info.line, 1, "",
                  f"cache path '{qual}'",
                  "a corrupt or stale entry must mean a miss, never an "
                  "abort — catch and fall back")
