"""ERR02 — handler hygiene: no silent swallows, no lazy breadth.

An ``except`` clause is where an error either gets *handled* or gets
*lost*.  Three shapes lose it:

1. **Bare ``except:``** catches ``SystemExit`` and
   ``KeyboardInterrupt`` along with everything else — a daemon that
   cannot be Ctrl-C'd is the canonical casualty.  Always wrong; catch
   ``Exception`` at the very broadest.

2. **Broad swallows.**  A handler that catches ``Exception`` (or a
   shotgun tuple of three-plus types) and neither re-raises, raises a
   replacement, nor logs turns every future bug in the protected span
   into silence.  Intentional swallow points — a cache ``load`` where a
   corrupt entry must mean a miss, a pool worker returning failure
   records — declare ``# mapglint: error-boundary`` on the enclosing
   definition line, which is the author's auditable claim that
   swallowing *is* the contract there.

3. **Imprecise catches of the project hierarchy.**  ``except
   ReproError`` where phase 2 can prove every raise reaching the try
   body is one precise subclass is a missed chance at precision: the
   broad catch will also absorb unrelated future errors.  Reported only
   when the escaping-set analysis finds a single reaching subclass, so
   the suggestion is always concretely actionable.

Logging, for this rule, is any ``print``/logger-style call in the
handler suite — the bar is "a human can find out it happened", not a
particular logging framework.
"""

from __future__ import annotations

from typing import Set

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import iter_module_effects
from repro.lint.project.effects import HandlerInfo
from repro.lint.project.errflow import ErrorFlow
from repro.lint.project.graph import ProjectModel

#: Caught-type count at which a tuple stops being precise handling and
#: starts being a shotgun.
_BROAD_TUPLE = 3

_CATCH_ALL_NAMES = frozenset({"Exception", "BaseException"})


@register_project_rule
class HandlerHygieneRule(ProjectRule):
    rule_id = "ERR02"
    summary = ("exception handlers must not swallow silently: no bare "
               "'except:', no broad catch that neither re-raises nor "
               "logs (declare '# mapglint: error-boundary' at "
               "intentional swallow points), and no 'except ReproError' "
               "where every reaching raise is one precise subclass")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        flow = model.errflow()
        for summary, effects in iter_module_effects(model):
            for handler in effects.handlers:
                if flow.is_boundary(handler.in_function):
                    continue
                if handler.is_bare:
                    self.report(
                        summary.path, handler.line, handler.col,
                        f"bare 'except:' in "
                        f"'{handler.in_function.split('::', 1)[-1]}' also "
                        f"catches SystemExit and KeyboardInterrupt — the "
                        f"process becomes uninterruptible; catch "
                        f"'Exception' at the very broadest",
                        line_text=handler.line_text)
                    continue
                self._check_swallow(summary.path, handler)
                self._check_precision(model, flow, summary.path, handler)

    def _check_swallow(self, path: str, handler: HandlerInfo) -> None:
        caught = handler.caught
        broad = bool(set(caught) & _CATCH_ALL_NAMES) or \
            len(caught) >= _BROAD_TUPLE
        handled = (handler.reraises or handler.raises_new
                   or handler.logs)
        if not broad or handled:
            return
        spelled = ", ".join(caught)
        outcome = "returns a fallback" if handler.returns \
            else "falls through"
        self.report(
            path, handler.line, handler.col,
            f"handler catches ({spelled}) and {outcome} without "
            f"re-raising or logging — every future bug in the protected "
            f"span becomes silence; narrow the catch, log the failure, "
            f"or declare '# mapglint: error-boundary' on the enclosing "
            f"definition if swallowing is the contract here",
            line_text=handler.line_text)

    def _check_precision(self, model: ProjectModel, flow: ErrorFlow,
                         path: str, handler: HandlerInfo) -> None:
        if "ReproError" not in handler.caught:
            return
        qualname = handler.in_function
        start = handler.try_start
        end = handler.try_end
        hierarchy = flow.hierarchy
        reaching: Set[str] = set()
        effects = model.summary_for(path).module_effects \
            if model.summary_for(path) else None
        if effects is not None:
            for site in effects.raise_sites:
                if site.in_function == qualname and site.exc_type and \
                        start <= site.line <= end and \
                        hierarchy.is_subtype(site.exc_type, "ReproError"):
                    reaching.add(site.exc_type)
        info = model.functions_by_qualname.get(qualname)
        if info is not None:
            for call in info.calls:
                if not (start <= call.line <= end):
                    continue
                candidates = model.resolve(call.name)
                if len(candidates) != 1:
                    continue
                for escape in flow.escaping(candidates[0].qualname):
                    if hierarchy.is_subtype(escape.exc_type, "ReproError"):
                        reaching.add(escape.exc_type)
        if len(reaching) != 1:
            return
        precise = next(iter(reaching))
        if precise == "ReproError":
            return
        self.report(
            path, handler.line, handler.col,
            f"handler catches ReproError but every raise that can reach "
            f"this try body is {precise} — catch {precise} so unrelated "
            f"future errors keep propagating",
            line_text=handler.line_text)
