"""ERR04 — exception-hierarchy discipline for library code.

``repro/errors.py`` documents the package contract: *every error raised
by this package derives from ReproError*, so callers can catch one base
class.  Nothing enforced it until now — a ``raise ValueError`` deep in
a stats helper silently punches a hole in the contract, and the caller
who wrote ``except ReproError`` finds out in production.

The rule flags explicit raises of bare builtin exception types in
non-test ``repro`` library code when the raising function is itself
public (no leading underscore) or reachable from a public function over
the resolved call graph — the paths a downstream caller can actually
hit.  ``__post_init__`` counts as public: it runs inside the public
constructor of every dataclass.

The fix keeps documented behavior: a conversion class can multiply
inherit (``class StatsError(ReproError, ValueError)``), so existing
``except ValueError`` callers and doctests keep passing while the
contract starts holding.  A genuinely-internal invariant check
(``raise AssertionError("unreachable")``) that conversion would only
obscure takes a per-line ``# mapglint: disable=ERR04``.

The lint package itself is exempt: mapglint is a dev tool with its own
CLI boundary, not part of the library contract (the same scoping CACHE01
applies to its digest set).
"""

from __future__ import annotations

from collections import deque
from typing import Dict

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import iter_module_effects
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path

#: Builtin types whose bare raise breaks the errors.py contract.
_BARE_BUILTINS = frozenset({
    "ValueError", "TypeError", "KeyError", "IndexError", "RuntimeError",
    "LookupError", "ArithmeticError", "AssertionError", "Exception",
})


def _is_public(qualname: str) -> bool:
    """Whether a function qualname denotes public API surface."""
    qual = qualname.split("::", 1)[-1]
    name = qual.rsplit(".", 1)[-1]
    if name == "__post_init__":
        return True  # runs inside every public dataclass constructor
    return not name.startswith("_")


def _in_lint(path: str) -> bool:
    return "/lint/" in f"/{path}"


@register_project_rule
class HierarchyDisciplineRule(ProjectRule):
    rule_id = "ERR04"
    summary = ("library code under repro/ must not raise bare builtin "
               "exceptions (ValueError, KeyError, RuntimeError, ...) on "
               "public-API-reachable paths: every repro error derives "
               "from ReproError (errors.py) — use a subclass, with "
               "multiple inheritance where ValueError compatibility is "
               "documented")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        flow = model.errflow()
        reachable = self._public_reachable(model)
        for summary, effects in iter_module_effects(model):
            if _in_lint(summary.path):
                continue
            for site in effects.raise_sites:
                if site.exc_type not in _BARE_BUILTINS:
                    continue
                if flow.hierarchy.is_subtype(site.exc_type, "ReproError"):
                    continue
                root = reachable.get(site.in_function)
                if root is None:
                    continue
                qual = site.in_function.split("::", 1)[-1]
                via = "" if root == qual else \
                    f", reachable from public '{root}'"
                self.report(
                    summary.path, site.line, site.col,
                    f"raises bare {site.exc_type} in library function "
                    f"'{qual}'{via}; the errors.py contract says every "
                    f"repro error derives from ReproError — raise a "
                    f"ReproError subclass (multiple inheritance, e.g. "
                    f"'class XError(ReproError, {site.exc_type})', keeps "
                    f"existing callers working), or add "
                    f"'# mapglint: disable=ERR04' for a genuinely "
                    f"internal invariant",
                    line_text=site.line_text)

    @staticmethod
    def _public_reachable(model: ProjectModel) -> Dict[str, str]:
        """qualname -> public root name, for all public-reachable functions.

        Multi-source BFS from every public function in non-test,
        non-lint repro source over the resolved call graph; the recorded
        root is the first public function that reaches each node (its
        bare display name, for the finding message).
        """
        edges = model.call_graph()
        reachable: Dict[str, str] = {}
        queue: "deque[str]" = deque()
        for summary in model.summaries:
            if is_test_path(summary.path) or not in_repro(summary.path) \
                    or _in_lint(summary.path):
                continue
            for info in summary.functions:
                if info.name != "<module>" and _is_public(info.qualname):
                    if info.qualname not in reachable:
                        reachable[info.qualname] = \
                            info.qualname.split("::", 1)[-1]
                        queue.append(info.qualname)
        while queue:
            current = queue.popleft()
            for callee in sorted(edges.get(current, ())):
                if callee not in reachable:
                    reachable[callee] = reachable[current]
                    queue.append(callee)
        return reachable
