"""ERR03 — exception-unsafe state mutation.

A write to shared state (a module global, a guarded-by bound field, a
class-level mutable attribute) followed — in the same function, outside
any try — by a call that can raise leaves the state half-updated when
the exception unwinds: the ledger says the entry exists, the registry
disagrees, and every later read of either is wrong in a way no test of
the happy path will see.

The "can raise" half of the condition is phase 2's escaping-set
fixpoint, filtered through the handlers that actually enclose the call
site — so the rule only fires when a *real* raise statement on a *real*
call chain can unwind through the mutation point.  A mutation inside a
try body that has a handler or a ``finally`` is trusted: the author has
thought about the exceptional path there (whether the handler rolls
back is beyond static reach, and guessing would make the rule noise).

The fix is mechanical: compute first, mutate last; or wrap the
mutation+call in ``try``/``finally`` with a rollback.
"""

from __future__ import annotations

from typing import Optional

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import iter_module_effects
from repro.lint.project.effects import (
    GLOBAL_WRITE, GUARDED_WRITE, SHARED_WRITE, Effect, ModuleEffects,
    format_chain)
from repro.lint.project.errflow import ErrorFlow
from repro.lint.project.graph import ProjectModel
from repro.lint.project.summary import FunctionInfo

_MUTATION_KINDS = frozenset({GLOBAL_WRITE, GUARDED_WRITE, SHARED_WRITE})


@register_project_rule
class ExceptionUnsafeMutationRule(ProjectRule):
    rule_id = "ERR03"
    summary = ("no shared-state write followed by a possibly-raising "
               "call (or raise) in the same function without "
               "try/finally: an unwinding exception leaves the global, "
               "guarded field, or class attribute half-updated")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        flow = model.errflow()
        for summary, effects in iter_module_effects(model):
            protected = [span for span in effects.protected_spans]
            for info in effects.functions:
                func_info = model.functions_by_qualname.get(info.qualname)
                for effect in info.effects:
                    if effect.kind not in _MUTATION_KINDS:
                        continue
                    if any(span.in_function == info.qualname and
                           span.start <= effect.line <= span.end
                           for span in protected):
                        continue
                    self._check_site(model, flow, summary.path, effects,
                                     info.qualname, func_info, effect)

    def _check_site(self, model: ProjectModel, flow: ErrorFlow, path: str,
                    effects: ModuleEffects, qualname: str,
                    func_info: Optional[FunctionInfo],
                    effect: Effect) -> None:
        # A later local raise unwinds through the mutation directly.
        for site in effects.raise_sites:
            if site.in_function != qualname or site.is_reraise or \
                    not site.exc_type or site.line <= effect.line:
                continue
            if flow.absorbed_at(qualname, site.exc_type, site.line):
                continue
            self.report(
                path, effect.line, effect.col,
                f"{effect.detail} and then raises {site.exc_type} at "
                f"line {site.line} with no try/finally between — the "
                f"unwind leaves '{effect.symbol}' half-updated; validate "
                f"before mutating, or roll back in a finally",
                line_text=effect.line_text)
            return
        if func_info is None:
            return
        # A later call whose escaping set survives the enclosing handlers.
        for call in sorted(func_info.calls, key=lambda c: c.line):
            if call.line <= effect.line:
                continue
            candidates = model.resolve(call.name)
            if len(candidates) != 1:
                continue
            callee = candidates[0].qualname
            for escape in sorted(flow.escaping(callee),
                                 key=lambda e: (e.exc_type, e.site.line)):
                if flow.absorbed_at(qualname, escape.exc_type, call.line):
                    continue
                chain = format_chain(flow.chain(callee, escape))
                self.report(
                    path, effect.line, effect.col,
                    f"{effect.detail} and then calls {call.name}() at "
                    f"line {call.line}, which can raise "
                    f"{escape.exc_type} (via {chain}) with no try/finally "
                    f"between — the unwind leaves '{effect.symbol}' "
                    f"half-updated; mutate last, or roll back in a "
                    f"finally",
                    line_text=effect.line_text)
                return
