"""EVT01 — event-queue misuse.

The simulation kernel (:mod:`repro.events`) keys its heap on
``(time, seq)`` where ``time`` is an integer cycle count and ``seq`` a
monotonic tie-break; both halves of that contract can be broken at a call
site without any runtime error:

1. **Wrong time domain** — ``queue.schedule(delay, ...)`` /
   ``queue.schedule_at(time, ...)`` with a delay inferred as seconds (or
   any other SI dimension).  The int coercion hides it: a 5 ns delay
   becomes cycle 0, and every "future" event fires immediately.

2. **Nondeterministic tie-breaking** — hand-rolled ``heapq.heappush``
   with a ``(time, payload)`` pair whose payload is a callback or other
   unorderable object: equal times then compare the payloads, which either
   raises or (for objects with identity-based ordering) varies between
   runs.  Heap entries need a monotonic sequence number between time and
   payload — or better, the :class:`repro.events.EventQueue` itself.

3. **Encapsulation breach** — touching ``EventQueue``'s ``_heap`` from
   outside ``repro/events.py`` bypasses both guarantees at once.

Scoped to non-test ``repro`` source; ``repro/events.py`` itself is exempt
(it implements the contract).
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.dimensions import CYCLES, NUM, UNKNOWN
from repro.lint.project.graph import ProjectModel, is_test_path
from repro.lint.project.summary import CallSite, ModuleSummary

_OWNING_MODULE = "repro/events.py"
_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at"})
_QUEUE_HINTS = ("queue", "events")
# Payload spellings that mark a heap tuple as carrying an unorderable
# object in its comparable positions.
_CALLBACK_HINTS = ("callback", "handler", "lambda", "fn", "func", "action")

_ACCEPTED_TIME_DIMS = frozenset({CYCLES, NUM, UNKNOWN})


def _is_queue_receiver(receiver: str) -> bool:
    lowered = receiver.lower()
    return any(hint in lowered for hint in _QUEUE_HINTS)


@register_project_rule
class EventQueueRule(ProjectRule):
    rule_id = "EVT01"
    summary = ("EventQueue times must be cycle counts and heap entries "
               "must carry a deterministic tie-break")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if is_test_path(summary.path) or \
                    summary.path.endswith(_OWNING_MODULE):
                continue
            for function in summary.functions:
                for call in function.calls:
                    self._check_call(model, summary.path, call)
            self._check_heap_access(summary)

    def _check_call(self, model: ProjectModel, path: str,
                    call: CallSite) -> None:
        if call.name in _SCHEDULE_NAMES and _is_queue_receiver(call.receiver):
            if call.arg_dims:
                time_dim = call.arg_dims[0]
                if time_dim not in _ACCEPTED_TIME_DIMS:
                    self.report(
                        path, call.line, call.col,
                        f"{call.name}() time "
                        f"({call.arg_reprs[0] if call.arg_reprs else 'expression'}) "
                        f"is inferred as '{time_dim}', but the event queue "
                        f"runs on integer cycles; convert with "
                        f"repro.units.seconds_to_cycles_ceil first",
                        line_text=call.line_text)
        elif call.name in ("heappush", "heapreplace", "heappushpop"):
            # A 2-tuple (time, payload) heap entry has no tie-break: equal
            # times fall through to comparing payloads.  Flag it when the
            # payload is visibly unorderable (a callback/lambda), which is
            # exactly the EventQueue bug class; int payloads (e.g. core
            # indices) are a legitimate deterministic tie-break and stay
            # silent.
            if len(call.arg_tuple_lens) >= 2 and call.arg_tuple_lens[1] == 2:
                payload_repr = (call.arg_reprs[1]
                                if len(call.arg_reprs) > 1 else "").lower()
                if any(hint in payload_repr for hint in _CALLBACK_HINTS):
                    self.report(
                        path, call.line, call.col,
                        f"heap entry {call.arg_reprs[1]} pairs a time with "
                        f"a callback and no sequence number: equal times "
                        f"tie-break by comparing callbacks, which is "
                        f"nondeterministic between runs; push "
                        f"(time, seq, payload) or use repro.events."
                        f"EventQueue",
                        line_text=call.line_text)

    def _check_heap_access(self, summary: ModuleSummary) -> None:
        for write in summary.attr_writes:
            if write.name == "_heap" and "queue" in write.receiver.lower():
                self.report(
                    summary.path, write.line, write.col,
                    f"direct write to EventQueue._heap outside "
                    f"{_OWNING_MODULE} bypasses the (time, seq) ordering "
                    f"contract; use schedule()/schedule_at()/cancel()",
                    line_text=write.line_text)
