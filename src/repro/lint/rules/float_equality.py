"""FLT01 — float equality in energy/power code.

An exact ``==``/``!=`` between float-typed quantities in the energy and
power models is almost always a latent bug: energies are sums of many
rounded products, so bit-exact equality silently becomes "never true"
(or worse, "true at one technology node and false at another").  The rule
flags equality comparisons in ``repro/power``, ``repro/core``,
``repro/analysis``, and ``repro/sim`` where either operand is visibly
float-typed: a float literal, or an identifier following the SI naming
convention (``*_s``, ``*_j``, ``*_w``, ``*_hz``, …).

Use ``math.isclose`` or an explicit tolerance; comparisons against a float
sentinel that is genuinely exact (e.g. a stored default) can carry
``# mapglint: disable=FLT01``.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, LintRule, register_rule
from repro.lint.findings import Severity
from repro.lint.rules.common import SI, unit_families

_SCOPE = ("repro/power", "repro/core", "repro/analysis", "repro/sim")


def _is_floaty(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    return SI in unit_families(node)


@register_rule
class FloatEqualityRule(LintRule):
    rule_id = "FLT01"
    summary = ("no ==/!= between float-typed expressions in energy/power "
               "code; use math.isclose or an explicit tolerance")
    default_severity = Severity.WARNING

    def applies_to(self, context: FileContext) -> bool:
        return context.in_package(*_SCOPE)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, (first, second) in zip(node.ops,
                                       zip(operands, operands[1:])):
            if isinstance(op, (ast.Eq, ast.NotEq)) and \
                    (_is_floaty(first) or _is_floaty(second)):
                self.report(node,
                            "exact float equality in energy/power code; "
                            "use math.isclose(a, b, rel_tol=...) or an "
                            "explicit tolerance")
                break
        self.generic_visit(node)
