"""FSM01 — power-gate FSM legality.

The power-gate state machine in ``repro.core.state`` rejects illegal
transitions at runtime — but only on the execution paths a given test run
exercises.  This rule checks statically: every ``(PgState.X, PgState.Y)``
2-tuple written anywhere in the codebase (tables, tests, expected-sequence
fixtures) is cross-checked against ``_LEGAL_TRANSITIONS``, so a hard-coded
pair that skips a mandatory state (e.g. ``SLEEP`` directly to ``ACTIVE``)
is caught at lint time.  References to state names that do not exist on
``PgState`` at all are flagged as well.

Tests that deliberately enumerate illegal pairs should construct them
programmatically from ``_LEGAL_TRANSITIONS`` (the complement is then always
in sync) or carry a ``# mapglint: disable=FSM01`` pragma.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.core.state import _LEGAL_TRANSITIONS, PgState
from repro.lint.base import LintRule, register_rule
from repro.lint.findings import Severity


def _pg_state_member(node: ast.AST) -> Optional[str]:
    """The member name if ``node`` is a ``PgState.X`` attribute access."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "PgState":
        return node.attr
    return None


@register_rule
class FsmLegalityRule(LintRule):
    rule_id = "FSM01"
    summary = ("every (PgState.X, PgState.Y) pair in the source must be a "
               "legal power-gate transition")
    default_severity = Severity.ERROR

    def visit_Attribute(self, node: ast.Attribute) -> None:
        member = _pg_state_member(node)
        # Only member-shaped (ALL_CAPS) attributes are candidate states;
        # PgState.__members__, PgState.value etc. are enum API, not states.
        if member is not None and member.isupper() and \
                member not in PgState.__members__:
            self.report(node,
                        f"PgState.{member} does not exist; known states: "
                        f"{', '.join(PgState.__members__)}")
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        if len(node.elts) == 2:
            source = _pg_state_member(node.elts[0])
            target = _pg_state_member(node.elts[1])
            if source in PgState.__members__ and \
                    target in PgState.__members__:
                assert source is not None and target is not None
                self._check_pair(node, PgState[source], PgState[target])
        self.generic_visit(node)

    def _check_pair(self, node: ast.Tuple, source: PgState,
                    target: PgState) -> None:
        if source is target:
            return  # self-transitions are no-ops, not FSM edges
        if target not in _LEGAL_TRANSITIONS[source]:
            legal = ", ".join(sorted(s.name for s in
                                     _LEGAL_TRANSITIONS[source]))
            self.report(node,
                        f"illegal power-gate transition {source.name} -> "
                        f"{target.name}; legal targets of {source.name}: "
                        f"{legal}")
