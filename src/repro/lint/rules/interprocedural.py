"""UNIT02 — interprocedural dimension mismatch.

UNIT01 sees a single expression; UNIT02 follows values across call
boundaries using the phase-2 project model.  Two shapes are flagged:

1. **Argument mismatch** — a call passes a value whose inferred dimension
   contradicts the dimension of the parameter it lands in, positionally or
   by keyword: ``wake_latency(latency_cycles)`` where the parameter is
   ``t_access_s`` (cycles into seconds silently rescales the break-even
   decision by the clock frequency — the paper's central claim inverted by
   a 10^9 factor).

2. **Return-use mismatch** — a call's result visibly flows into a context
   of a different dimension than the callee returns: ``total_j =
   leakage_power(...)`` where the function returns watts.

Both only fire on a *definite* disagreement of two proven dimensions; an
``unknown`` on either side stays silent.  Ambiguous bare names (several
same-named definitions whose signatures disagree) are skipped rather than
guessed at — see :class:`~repro.lint.project.graph.ProjectModel`.
Test files are exempt (they routinely build deliberately-wrong values);
a synthetic ``repro/...`` tree under a tmp dir is still checked, which is
how the regression tests seed bugs.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.dimensions import definite_mismatch
from repro.lint.project.graph import ProjectModel, is_test_path
from repro.lint.project.summary import CallSite


@register_project_rule
class InterproceduralUnitRule(ProjectRule):
    rule_id = "UNIT02"
    summary = ("interprocedural unit safety: argument/parameter and "
               "return/use dimensions must agree across call boundaries")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if is_test_path(summary.path):
                continue
            for function in summary.functions:
                for call in function.calls:
                    self._check_call(model, summary.path, call)

    def _check_call(self, model: ProjectModel, path: str,
                    call: CallSite) -> None:
        if not model.resolve(call.name):
            return
        for index, arg_dim in enumerate(call.arg_dims):
            agreed = model.agreed_param_dim(call.name, index)
            if agreed is None:
                continue
            param_name, param_dim = agreed
            if definite_mismatch(arg_dim, param_dim):
                arg_repr = (call.arg_reprs[index]
                            if index < len(call.arg_reprs) else "")
                self.report(
                    path, call.line, call.col,
                    f"argument {index + 1} ({arg_repr or 'expression'}) of "
                    f"{call.name}() is inferred as '{arg_dim}' but parameter "
                    f"'{param_name}' expects '{param_dim}'; convert through "
                    f"repro.units first",
                    line_text=call.line_text)
        for keyword, arg_dim in call.kw_dims:
            param_dim_kw = model.agreed_keyword_dim(call.name, keyword)
            if param_dim_kw is None:
                continue
            if definite_mismatch(arg_dim, param_dim_kw):
                self.report(
                    path, call.line, call.col,
                    f"keyword argument '{keyword}' of {call.name}() is "
                    f"inferred as '{arg_dim}' but the parameter expects "
                    f"'{param_dim_kw}'; convert through repro.units first",
                    line_text=call.line_text)
        return_dim = model.agreed_return_dim(call.name)
        if return_dim is not None and definite_mismatch(
                return_dim, call.result_context):
            self.report(
                path, call.line, call.col,
                f"{call.name}() returns '{return_dim}' but its result is "
                f"used as '{call.result_context}'; convert through "
                f"repro.units (or rename the target)",
                line_text=call.line_text)
