"""LEDGER01 — energy-ledger conservation.

The :class:`~repro.core.energy.EnergyLedger` is the single source of truth
for every energy number in the evaluation; a charge that arrives in the
wrong unit (or bypasses the ledger's API) silently double-counts or drops
energy without failing any invariant until the final tables are wrong.
Three statically checkable obligations:

1. ``ledger.add_event(x)`` — ``x`` must be *provably joules* (suffix,
   ``energy_joules(...)``, or a ``w * s`` product).  An unknown dimension
   is a finding here: the whole point of the ledger is that every charge
   is auditable.

2. ``ledger.add_interval(tag, n)`` — ``n`` must be provably cycles, and
   ``tag`` must be a recognizable component tag (a ``PowerState.X``
   member or a state-named variable), so residency can never be booked
   against an unknown bucket.

3. Ledger internals (``_state_cycles``, ``_state_energy_j``,
   ``_event_energy_j``, ``_event_count``) must not be written outside
   ``repro/core/energy.py`` — mutating them directly skips the
   non-negativity checks and the conservation invariant.

Scoped to non-test source; tests drive the ledger API with raw literals
on purpose.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.dimensions import CYCLES, JOULES
from repro.lint.project.graph import ProjectModel, is_test_path
from repro.lint.project.summary import CallSite

_LEDGER_HINTS = ("ledger",)
_INTERNAL_FIELDS = frozenset({
    "_state_cycles", "_state_energy_j", "_event_energy_j", "_event_count"})
_OWNING_MODULE = "repro/core/energy.py"


def _is_ledger_receiver(receiver: str) -> bool:
    lowered = receiver.lower()
    return any(hint in lowered for hint in _LEDGER_HINTS)


def _is_component_tag(repr_text: str) -> bool:
    """A recognizable residency tag: a PowerState member or state-ish name."""
    if not repr_text:
        return False
    if repr_text.startswith("PowerState."):
        return True
    return "state" in repr_text.lower()


@register_project_rule
class EnergyLedgerRule(ProjectRule):
    rule_id = "LEDGER01"
    summary = ("EnergyLedger mutations must charge proven joules/cycles "
               "with a known component tag, through the ledger API only")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if is_test_path(summary.path):
                continue
            for function in summary.functions:
                for call in function.calls:
                    self._check_call(summary.path, call)
            if not summary.path.endswith(_OWNING_MODULE):
                for write in summary.attr_writes:
                    if write.name in _INTERNAL_FIELDS:
                        self.report(
                            summary.path, write.line, write.col,
                            f"direct write to EnergyLedger internal "
                            f"'{write.name}' outside {_OWNING_MODULE}; "
                            f"charge energy through add_interval()/"
                            f"add_event() (or merge()) so the conservation "
                            f"invariants hold",
                            line_text=write.line_text)

    def _check_call(self, path: str, call: CallSite) -> None:
        if call.name == "add_event" and _is_ledger_receiver(call.receiver):
            if not call.arg_dims and not call.kw_dims:
                return  # malformed call; the runtime will complain
            dim = call.arg_dims[0] if call.arg_dims else \
                dict(call.kw_dims).get("energy_j", "unknown")
            if dim != JOULES:
                self.report(
                    path, call.line, call.col,
                    f"add_event() charge "
                    f"({call.arg_reprs[0] if call.arg_reprs else 'expression'}) "
                    f"is not provably joules (inferred '{dim}'); energy "
                    f"charged to the ledger must be a *_j value or an "
                    f"energy_joules()/power*time product",
                    line_text=call.line_text)
        elif call.name == "add_interval" and _is_ledger_receiver(call.receiver):
            if len(call.arg_dims) >= 2:
                cycles_dim = call.arg_dims[1]
                if cycles_dim != CYCLES:
                    self.report(
                        path, call.line, call.col,
                        f"add_interval() residency "
                        f"({call.arg_reprs[1] if len(call.arg_reprs) > 1 else 'expression'}) "
                        f"is not provably cycles (inferred '{cycles_dim}'); "
                        f"interval charges are cycle counts, convert with "
                        f"repro.units.seconds_to_cycles_ceil if needed",
                        line_text=call.line_text)
            if call.arg_reprs and not _is_component_tag(call.arg_reprs[0]):
                self.report(
                    path, call.line, call.col,
                    f"add_interval() tag ({call.arg_reprs[0]!r}) is not a "
                    f"recognizable component tag; pass a PowerState member "
                    f"(or a state-named variable) so no residency is booked "
                    f"against an unknown bucket",
                    line_text=call.line_text)
