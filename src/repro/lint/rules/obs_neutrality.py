"""OBS01 — observability neutrality.

The observability layer (:mod:`repro.obs`) is "free when disabled" and,
more importantly, *inert*: golden traces are bit-identical with the
recorder on or off.  Two statically checkable obligations keep it that
way in simulation code:

1. **Guarded emission** — every recorder/metrics call (``span``,
   ``instant``, ``sample``, ``clear``, ``inc``, ``observe``, ``set``,
   ``add``, the ``counter``/``gauge``/``histogram`` get-or-create
   calls, and the sweep-telemetry lifecycle sinks ``sweep_begin`` /
   ``cell_queued`` / ``cell_cache_hit`` / ``cell_cache_miss`` /
   ``dispatch`` / ``cell_start`` / ``cell_done`` / ``cell_failed`` /
   ``sweep_end``) must sit under the ``enabled`` fast-path: inside
   ``if X.enabled:`` (compound ``and`` conditions count) or after an
   ``if not X.enabled: return`` early exit.  A private helper whose every
   non-test call site is itself guarded inherits the guard — the pattern
   ``if self._obs.enabled: self._observe_stall(...)`` hoists one check
   over many emissions.

2. **No flow back** — no value produced by an observability object may
   reach simulation state: a recorder/metrics call whose result is
   consumed may only bind an observability handle (``self._m_*``,
   ``*_obs``, ``metrics``, ``recorder``).  Anything else routes observed
   data into the very numbers being observed, and the golden-equality
   property dies silently.

Observability receivers are recognized by naming convention — a receiver
whose final segment is ``metrics``, contains ``recorder``, or starts with
``_m_``/``_obs`` — the same convention the instrumented code already
follows (``self._obs``, ``self._m_segments``, ``metrics.counter``).
``repro/obs`` itself is out of scope (the recorder may of course call
its own methods), as are tests.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path
from repro.lint.project.summary import CallSite, FunctionInfo

_EMISSION_METHODS = frozenset({
    "span", "instant", "sample", "clear", "inc", "observe", "set", "add",
    "counter", "gauge", "histogram",
    # SweepRecorder lifecycle sinks (repro/obs/sweep.py) — emitted by the
    # exec engine, so sweeps pay one attribute check when unobserved.
    "sweep_begin", "cell_queued", "cell_cache_hit", "cell_cache_miss",
    "dispatch", "cell_start", "cell_done", "cell_failed", "sweep_end",
})

_ALLOWED_TARGET_PREFIXES = ("_m_", "_obs")
_ALLOWED_TARGET_NAMES = frozenset({"metrics", "recorder"})


def _receiver_tail(receiver: str) -> str:
    return receiver.rsplit(".", 1)[-1] if receiver else ""


def is_obs_receiver(receiver: str) -> bool:
    """Whether a dotted receiver names an observability handle."""
    tail = _receiver_tail(receiver)
    if not tail:
        return False
    lowered = tail.lower()
    if "recorder" in lowered or lowered in _ALLOWED_TARGET_NAMES:
        return True
    return any(tail.startswith(prefix)
               for prefix in _ALLOWED_TARGET_PREFIXES)


def _is_allowed_target(target: str) -> bool:
    tail = _receiver_tail(target)
    if not tail:
        return False
    if tail in _ALLOWED_TARGET_NAMES:
        return True
    return any(tail.startswith(prefix)
               for prefix in _ALLOWED_TARGET_PREFIXES)


@register_project_rule
class ObsNeutralityRule(ProjectRule):
    rule_id = "OBS01"
    summary = ("recorder/metrics emission must sit under the 'enabled' "
               "fast-path, and no observability value may flow into "
               "simulation state")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            path = summary.path
            if is_test_path(path) or not in_repro(path):
                continue
            norm = path.replace("\\", "/")
            if "repro/obs" in norm or "repro/lint" in norm:
                continue
            for function in summary.functions:
                for call in function.calls:
                    self._check_call(model, path, function, call)

    def _check_call(self, model: ProjectModel, path: str,
                    function: FunctionInfo, call: CallSite) -> None:
        if not is_obs_receiver(call.receiver):
            return
        if call.name in _EMISSION_METHODS and not call.obs_guarded and \
                not self._caller_guarded(model, function):
            self.report(
                path, call.line, call.col,
                f"unguarded observability call "
                f"{call.receiver}.{call.name}(); emission must sit under "
                f"'if <recorder>.enabled:' (or after an "
                f"'if not <recorder>.enabled: return') so disabled runs "
                f"pay a single attribute check",
                line_text=call.line_text)
        if call.result_used and not _is_allowed_target(call.result_target):
            where = (f"assigned to '{call.result_target}'"
                     if call.result_target else "consumed by simulation "
                     "code")
            self.report(
                path, call.line, call.col,
                f"value of {call.receiver}.{call.name}() is {where}; "
                f"observability output must never flow into simulation "
                f"state or the EnergyLedger (only *_obs/_m_*/metrics/"
                f"recorder bindings may hold it) — golden traces must be "
                f"bit-identical with the recorder on or off",
                line_text=call.line_text)

    @staticmethod
    def _caller_guarded(model: ProjectModel, function: FunctionInfo) -> bool:
        """A private helper inherits the guard when every non-test call
        site invoking its name is itself under an ``enabled`` guard."""
        if not function.name.startswith("_"):
            return False
        callers: List[Tuple[FunctionInfo, CallSite]] = [
            (info, call) for info, call in model.callers_of(function.name)
            if not is_test_path(info.qualname.split("::", 1)[0])]
        if not callers:
            return False
        return all(call.obs_guarded for _, call in callers)
