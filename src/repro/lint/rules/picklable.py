"""PAR01 — pool payloads must be plain-picklable.

``SweepRunner`` uses the ``spawn`` start method on purpose: workers get a
fresh interpreter, so nothing leaks between cells.  Spawn pickles the
worker callable and every submitted argument, which rules out four
shapes that fork would silently tolerate:

1. **Lambdas** — not picklable at all; submission dies at runtime (and
   only when the parallel path is actually taken, so tests at
   ``jobs=1`` never see it).
2. **Bound methods** (``self.method`` / ``cls.method``) — pickling drags
   the whole instance across the process boundary: slow at best, a
   hidden shared-state copy at worst.
3. **Closures** (functions defined inside another function) — not
   picklable; workers must be module-level, like
   ``repro.exec.engine._execute_payload``.
4. **Open handles in arguments** — a file object in a payload cannot
   cross the boundary; pass paths and reopen in the worker.

Everything here is a *shape* fact recorded by phase 1
(:class:`~repro.lint.project.effects.PoolSubmission`); no call
resolution is needed, so the rule fires even on names it cannot
resolve.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path


@register_project_rule
class PicklablePayloadRule(ProjectRule):
    rule_id = "PAR01"
    summary = ("pool payloads must be plain-picklable: no lambdas, bound "
               "methods, closures, or open handles in submitted work")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if is_test_path(summary.path) or not in_repro(summary.path):
                continue
            effects = summary.module_effects
            if effects is None:
                continue
            for submission in effects.pool_submissions:
                self._check_submission(summary.path, submission,
                                       effects.nested_functions)

    def _check_submission(self, path: str, submission,
                          nested_functions) -> None:
        worker = submission.worker_repr or submission.worker_name or \
            "worker"
        if submission.worker_kind == "lambda":
            self.report(
                path, submission.line, submission.col,
                f"lambda submitted to {submission.method}() is not "
                f"picklable under the spawn start method; define a "
                f"module-level function and submit that",
                line_text=submission.line_text)
        elif submission.worker_kind == "attribute" and \
                submission.worker_repr.split(".", 1)[0] in ("self", "cls"):
            self.report(
                path, submission.line, submission.col,
                f"bound method {worker} submitted to "
                f"{submission.method}() pickles its whole instance into "
                f"every worker; submit a module-level function and pass "
                f"the needed state as plain data",
                line_text=submission.line_text)
        elif submission.worker_kind == "name" and \
                submission.worker_name in nested_functions:
            self.report(
                path, submission.line, submission.col,
                f"closure {worker} submitted to {submission.method}() is "
                f"not picklable under spawn; hoist it to module level "
                f"(closures capture enclosing state that cannot cross "
                f"the process boundary)",
                line_text=submission.line_text)
        if submission.lambda_in_args:
            self.report(
                path, submission.line, submission.col,
                f"lambda inside the arguments of {submission.method}() "
                f"cannot be pickled to a spawn worker; pass plain data "
                f"and rebuild callables worker-side",
                line_text=submission.line_text)
        if submission.open_in_args:
            self.report(
                path, submission.line, submission.col,
                f"open file handle in the arguments of "
                f"{submission.method}() cannot cross the process "
                f"boundary; pass the path and open it in the worker",
                line_text=submission.line_text)
