"""RES01 — resource lifecycle: every acquisition reaches its release.

Phase 1 records every call to a resource-acquiring API — ``open``,
``tempfile`` factories, ``multiprocessing`` pools, ``concurrent.futures``
executors — together with how the handle is managed: bound inside a
``with``, handed outward (returned, stored on an attribute, passed to
another call), closed explicitly, or simply dropped.

Two shapes are findings:

1. **Never released.**  The handle stays local and no
   ``close``/``terminate``/``shutdown``/``cleanup`` call touches it.  An
   open file leaks a descriptor; an unterminated pool leaks worker
   *processes* that outlive the sweep and, on some platforms, block
   interpreter exit.

2. **Released only on the happy path.**  The close exists but sits
   outside any ``finally``, and between acquisition and close there is a
   raise or a call whose phase-2 escaping set is non-empty — so a real,
   named exception path skips the release.  The finding cites that path.

A handle that *escapes* is not a finding: ownership moved, and the new
owner's lifecycle (``RunLog.close``, a pool stored for reuse) is a
design choice this rule cannot see locally.  The fix is always the same
shape: ``with`` when the lifetime is lexical, ``try``/``finally`` when
it is not.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.concurrency import iter_module_effects
from repro.lint.project.effects import ResourceSite, format_chain
from repro.lint.project.errflow import ErrorFlow
from repro.lint.project.graph import ProjectModel

#: What leaks when each resource kind is dropped, for the message.
_LEAK = {
    "open": "a file descriptor (and buffered writes may never flush)",
    "tempfile": "a file descriptor and an on-disk temp file",
    "pool": "worker processes that outlive the sweep",
    "executor": "worker threads/processes that outlive the run",
}


@register_project_rule
class ResourceLifecycleRule(ProjectRule):
    rule_id = "RES01"
    summary = ("every acquired resource (open file, tempfile, pool, "
               "executor) must reach its release on all paths: use "
               "'with' for lexical lifetimes, try/finally otherwise — a "
               "close only on the happy path leaks when the call tree "
               "raises")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        flow = model.errflow()
        for summary, effects in iter_module_effects(model):
            for site in effects.resource_sites:
                if site.in_with or site.escapes:
                    continue
                if not site.closed:
                    leak = _LEAK.get(site.kind, "the underlying resource")
                    self.report(
                        summary.path, site.line, site.col,
                        f"{site.api}() handle"
                        f"{self._named(site)} is never released in "
                        f"'{self._func(site)}' — leaking {leak}; bind it "
                        f"in a 'with' (or close it in a finally)",
                        line_text=site.line_text)
                    continue
                if site.close_in_finally:
                    continue
                self._check_happy_path_close(model, flow, summary.path,
                                             effects, site)

    @staticmethod
    def _func(site: ResourceSite) -> str:
        return site.in_function.split("::", 1)[-1]

    @staticmethod
    def _named(site: ResourceSite) -> str:
        return f" '{site.var}'" if site.var else ""

    def _check_happy_path_close(self, model: ProjectModel, flow: ErrorFlow,
                                path: str, effects: "object",
                                site: ResourceSite) -> None:
        """The close exists outside a finally — does a raise skip it?"""
        qualname = site.in_function
        start, end = site.line, site.close_line
        # A local raise between acquisition and close, not absorbed there.
        for raise_site in effects.raise_sites:  # type: ignore[attr-defined]
            if raise_site.in_function != qualname or raise_site.is_reraise \
                    or not raise_site.exc_type:
                continue
            if not (start < raise_site.line < end):
                continue
            if flow.absorbed_at(qualname, raise_site.exc_type,
                                raise_site.line):
                continue
            self.report(
                path, site.line, site.col,
                f"{site.api}() handle{self._named(site)} in "
                f"'{self._func(site)}' is closed only on the happy path: "
                f"the raise of {raise_site.exc_type} at line "
                f"{raise_site.line} skips the close at line "
                f"{site.close_line}; move the close into a finally (or "
                f"use 'with')",
                line_text=site.line_text)
            return
        # A call between acquisition and close whose escapes survive.
        info = model.functions_by_qualname.get(qualname)
        if info is None:
            return
        for call in sorted(info.calls, key=lambda c: c.line):
            if not (start < call.line < end):
                continue
            candidates = model.resolve(call.name)
            if len(candidates) != 1:
                continue
            callee = candidates[0].qualname
            for escape in sorted(flow.escaping(callee),
                                 key=lambda e: (e.exc_type, e.site.line)):
                if flow.absorbed_at(qualname, escape.exc_type, call.line):
                    continue
                chain = format_chain(flow.chain(callee, escape))
                self.report(
                    path, site.line, site.col,
                    f"{site.api}() handle{self._named(site)} in "
                    f"'{self._func(site)}' is closed only on the happy "
                    f"path: {call.name}() at line {call.line} can raise "
                    f"{escape.exc_type} (via {chain}), skipping the close "
                    f"at line {site.close_line}; move the close into a "
                    f"finally (or use 'with')",
                    line_text=site.line_text)
                return
