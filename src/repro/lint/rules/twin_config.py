"""TWIN01 — config knobs the oracle honors but the fast engine ignores.

The fast kernel replays a *subset* of the oracle's configuration space at
full fidelity and must **refuse** (fall back to the oracle) everywhere
else.  That contract has a precise static shadow: every ``SystemConfig``
field read on the oracle-only part of the simulation (the closure of
``Simulator.handle_segment`` and the core/memory descent, minus what the
fast closure shares) must either be read by the fast engine too, or at
least be *named* in the kernel's own eligibility/fallback strings — the
greppable evidence that ineligibility was considered.

A field that is neither read nor named is a silent divergence trigger: a
sweep varying it changes the oracle's answer while the fast engine keeps
producing the old one, and no crosscheck run at the default value will
notice.  Deliberate envelope exclusions are documented in the fastsim
sources with ``# mapglint: twin-exempt=<field>`` on the line making the
exclusion.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel
from repro.lint.project.twin import TwinRead


@register_project_rule
class TwinConfigCoverageRule(ProjectRule):
    rule_id = "TWIN01"
    summary = ("every SystemConfig field the oracle path reads must be "
               "read, named in an eligibility check, or twin-exempted by "
               "the fast engine")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        twin = model.twin()
        fields = twin.config_fields()
        if not fields:
            return
        covered = (twin.fast_attr_reads() | twin.fastsim_names()
                   | twin.exempt_names())
        # One finding per drifting field, anchored at its first oracle
        # read site; later sites are counted, not repeated.
        sites: Dict[str, List[Tuple[str, str, TwinRead]]] = {}
        for qualname in sorted(twin.oracle_exclusive):
            facts = twin.facts_for(qualname)
            if facts is None:
                continue
            path = twin.module_of(qualname)
            for read in facts.reads:
                if read.attr in fields and read.attr not in covered:
                    sites.setdefault(read.attr, []).append(
                        (path, qualname, read))
        for attr in sorted(sites):
            field_info = fields[attr]
            occurrences = sorted(sites[attr],
                                 key=lambda item: (item[0], item[2].line))
            path, qualname, read = occurrences[0]
            chain = twin.describe_chain(qualname, twin.oracle_parents)
            extra = ""
            if len(occurrences) > 1:
                extra = f" (and {len(occurrences) - 1} more oracle sites)"
            self.report(
                path, read.line, read.col,
                f"config field {field_info.class_name}.{attr} steers the "
                f"oracle path ({chain}){extra} but the fast engine "
                f"neither reads it nor names it in an eligibility or "
                f"fallback check; a sweep varying it diverges the two "
                f"engines silently — widen the kernel, refuse it in "
                f"FastSimulator._eligibility, or document the exclusion "
                f"with '# mapglint: twin-exempt={attr}'")
