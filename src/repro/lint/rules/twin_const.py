"""TWIN04 — tuning constants spelled as literals in both engines.

The fast kernel inlines the oracle's policy/predictor update rules, so
every tuning constant in that arithmetic is *used* at two sites.  Using
it is fine; **defining** it twice is not: two literals with today-equal
values are exactly how the engines drift apart — someone retunes the
oracle's AIMD decay and the kernel keeps replaying the old one, and the
crosscheck only catches it if its configurations happen to gate.

This rule intersects the non-trivial numeric literals appearing in
gating/break-even arithmetic (``BinOp``/``Compare`` operands) of the
fast engine's own modules with those of the oracle closure, and flags
each shared value at its fastsim site, naming the oracle site it
duplicates.  The fix is mechanical — hoist the value into one shared
module-level name and import it from both sides (see
``repro.core.gating_constants``) — and ``--fix`` applies it
automatically whenever a module-level definition with the same value
already exists.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel


@register_project_rule
class TwinConstantDuplicationRule(ProjectRule):
    rule_id = "TWIN04"
    summary = ("gating/break-even constants must be defined once and "
               "imported by both engines, never duplicated as literals")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        twin = model.twin()
        fast_consts = twin.fastsim_constants()
        if not fast_consts:
            return
        oracle_consts = twin.oracle_constants()
        shared_defs = twin.shared_constant_defs()
        for key in sorted(set(fast_consts) & set(oracle_consts)):
            fast_qual, fast_const = fast_consts[key]
            oracle_qual, oracle_const = oracle_consts[key]
            oracle_path = twin.module_of(oracle_qual)
            fast_path = twin.module_of(fast_qual)
            hoist = shared_defs.get(key)
            if hoist is not None:
                def_path, const_def = hoist
                remedy = (f"import {const_def.name} "
                          f"({def_path}:{const_def.line}) at both sites "
                          f"(--fix rewrites the fastsim literal)")
            else:
                remedy = ("hoist it into one module-level name (e.g. in "
                          "repro/core/gating_constants.py) and import it "
                          "from both engines")
            self.report(
                fast_path, fast_const.line, fast_const.col + 1,
                f"numeric constant {fast_const.text} in "
                f"{fast_qual.rsplit('::', 1)[-1]} duplicates the oracle's "
                f"{oracle_const.text} in "
                f"{oracle_qual.rsplit('::', 1)[-1]} "
                f"({oracle_path}:{oracle_const.line}); retuning one side "
                f"silently breaks the engines' bit-identity — {remedy}")
