"""TWIN03 — engine code invisible to the simulation-source digest.

:func:`repro.exec.version.simulation_version` hashes the package tree
(minus ``_EXCLUDED_DIRS``) to key the persistent result cache: edit any
simulation source and every cached result is orphaned.  That guarantee
only holds if everything *reachable from either engine* actually lives
inside the digested tree.  A module that both engines can execute but
the digest skips — because it sits in an excluded directory, or outside
the ``repro`` package entirely — means an edit to live simulation
semantics silently keeps serving stale cached results.

This rule walks the union of the oracle and fast closures and flags any
member module the digest cannot see, anchoring the finding at the
closure member and naming the ``_EXCLUDED_DIRS`` definition it fell
afoul of.  If the digest module itself is outside the linted file set,
the rule stays quiet rather than guess at the exclusion list.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel, in_repro


@register_project_rule
class TwinDigestCoverageRule(ProjectRule):
    rule_id = "TWIN03"
    summary = ("every module reachable from either engine must be inside "
               "the source tree simulation_version digests for the "
               "result cache")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        twin = model.twin()
        digest = twin.digest_excluded_dirs()
        if digest is None:
            return  # version.py not in the linted set: nothing to verify
        excluded_dirs, digest_path, digest_line = digest
        for path, qualname in sorted(twin.closure_modules().items()):
            info = model.functions_by_qualname.get(qualname)
            line = info.line if info is not None else 1
            chain_parents = twin.oracle_parents \
                if qualname in twin.oracle_parents else twin.fast_parents
            chain = twin.describe_chain(qualname, chain_parents)
            parts = path.split("/")
            if not in_repro(path):
                self.report(
                    path, line, 1,
                    f"module {path} is reachable from a simulation engine "
                    f"({chain}) but lies outside the repro package tree, "
                    f"so simulation_version ({digest_path}:{digest_line}) "
                    f"never digests it; editing it would keep serving "
                    f"stale cached results — move it under repro/ or cut "
                    f"the engine's dependency on it")
                continue
            # Directory components below the package root are what the
            # digest walk prunes against _EXCLUDED_DIRS.
            below = parts[len(parts) - 1 - parts[::-1].index("repro"):-1]
            hit = next((d for d in below if d in excluded_dirs), None)
            if hit is not None:
                self.report(
                    path, line, 1,
                    f"module {path} is reachable from a simulation engine "
                    f"({chain}) but sits under '{hit}/', which "
                    f"_EXCLUDED_DIRS ({digest_path}:{digest_line}) prunes "
                    f"from the simulation-source digest; edits to it "
                    f"would keep serving stale cached results — move the "
                    f"module or stop excluding '{hit}'")
