"""TWIN02 — outputs the oracle produces that the fast flush never writes.

The fast kernel keeps its measurements in loop-local scalars and *flushes*
them into the wrapped simulator's real objects (ledger, counters,
histograms) at the end of a region, so ``sim.result()`` serializes
identical state whichever engine ran.  Statically, that means every
output the oracle-only path emits must have a fast-side writer:

* a :class:`PowerState` ledger tag charged on the oracle path must be
  batch-added by the fast flush;
* a counter key the oracle path adds (by string literal) must appear in
  the fast engine's ``counters.add``/``_flush_counters`` emissions;
* a ``SimulationResult`` field constructed on an oracle-only path must
  be constructed by the fast closure too.

A missing writer silently drops a column from every fast-path result —
the kind of drift a spot-check crosscheck configuration may never
exercise.  Dynamically-keyed emissions (f-string counter keys, keys held
in module constants) are invisible to this rule by design; it checks the
literal-keyed contract only.  Deliberate gaps are documented with
``# mapglint: twin-exempt=<tag-or-key>``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.graph import ProjectModel
from repro.lint.project.twin import _is_powerstate_read


@register_project_rule
class TwinResultCoverageRule(ProjectRule):
    rule_id = "TWIN02"
    summary = ("every ledger tag, counter key, and SimulationResult field "
               "the oracle path produces must be written by the fast "
               "engine's flush")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        twin = model.twin()
        exempt = twin.exempt_names()
        fast_tags = twin.fast_ledger_tags()
        fast_keys = twin.fast_counter_keys()
        fast_fields = twin.fast_result_fields()

        tags: Dict[str, Tuple[str, str, int, int]] = {}
        keys: Dict[str, Tuple[str, str, int]] = {}
        fields: Dict[str, Tuple[str, str, int]] = {}
        for qualname in sorted(twin.oracle_exclusive):
            facts = twin.facts_for(qualname)
            if facts is None:
                continue
            path = twin.module_of(qualname)
            for read in facts.reads:
                if _is_powerstate_read(read) and read.attr not in fast_tags \
                        and read.attr not in exempt:
                    tags.setdefault(read.attr,
                                    (path, qualname, read.line, read.col))
            for key, line in facts.counter_keys:
                if key not in fast_keys and key not in exempt:
                    keys.setdefault(key, (path, qualname, line))
            for name, line in facts.result_fields:
                if name not in fast_fields and name not in exempt:
                    fields.setdefault(name, (path, qualname, line))

        for tag in sorted(tags):
            path, qualname, line, col = tags[tag]
            chain = twin.describe_chain(qualname, twin.oracle_parents)
            self.report(
                path, line, col,
                f"the oracle path ({chain}) charges ledger tag "
                f"PowerState.{tag} but the fast engine's flush never "
                f"writes it; fast-path runs drop that energy bucket from "
                f"SimulationResult — mirror it in the kernel's "
                f"ledger.add_batch section or add "
                f"'# mapglint: twin-exempt={tag}'")
        for key in sorted(keys):
            path, qualname, line = keys[key]
            chain = twin.describe_chain(qualname, twin.oracle_parents)
            self.report(
                path, line, 1,
                f"the oracle path ({chain}) emits counter '{key}' but the "
                f"fast engine's flush never writes that key; fast-path "
                f"runs drop it from the serialized counters — mirror it "
                f"in FastSimulator's flush (counters.add or "
                f"_flush_counters) or add '# mapglint: twin-exempt={key}'")
        for name in sorted(fields):
            path, qualname, line = fields[name]
            chain = twin.describe_chain(qualname, twin.oracle_parents)
            self.report(
                path, line, 1,
                f"SimulationResult field '{name}' is constructed on an "
                f"oracle-only path ({chain}) and never by the fast "
                f"closure; fast-path results lose it — route both engines "
                f"through one result constructor or add "
                f"'# mapglint: twin-exempt={name}'")
