"""UNIT01 — cycle/SI unit safety.

Two checks, both scoped to everything *except* ``repro/units.py`` (the one
module allowed to convert between domains):

1. **Mixed-domain arithmetic** — a binary operation or comparison whose
   operands put a cycle-suffixed identifier (``*_cycles``) and an
   SI-suffixed identifier (``*_s``, ``*_j``, ``*_w``, ``*_hz``, …) on
   opposite sides.  ``cycles / frequency_hz`` is a unit conversion and must
   go through :func:`repro.units.cycles_to_seconds`.

2. **Raw scale literals** — a float literal equal to one of the
   ``repro.units`` scale constants (``1e-9``, ``1e-6``, ``1e3``, …) used as
   a multiplication/division operand.  ``total_ns * 1e-9`` hides a unit
   conversion behind a magic number; write ``total_ns * NS``.  Float
   literals in comparisons or additions (epsilons such as
   ``mean_gap < 1e-9``) are deliberately not flagged.
"""

from __future__ import annotations

import ast

from repro.lint.base import FileContext, LintRule, register_rule
from repro.lint.findings import Severity
from repro.lint.rules.common import CYCLE, SI, unit_families

# Values of the scale constants exported by repro.units.  Matching is by
# exact float value, so 1e-9 and 0.000000001 both hit, while 85e-9 (a
# scaled quantity, not a bare scale factor) does not.
_SCALE_LITERALS = {
    1e-15: "FS/FJ", 1e-12: "PS/PJ", 1e-9: "NS/NW/NJ", 1e-6: "US/UW/UJ",
    1e-3: "MS/MW/MJ", 1e3: "KHZ", 1e6: "MHZ", 1e9: "GHZ",
}


def _is_scale_literal(node: ast.AST, context: FileContext) -> bool:
    """A float scale constant *written in exponent notation*.

    The spelling matters: ``x * 1e-9`` is a disguised unit conversion,
    while ``misses / instructions * 1000.0`` (misses per kilo-instruction)
    is a dimensionless rate — same value, different intent.  Requiring the
    ``e`` keeps the rule targeted at the former.
    """
    if not (isinstance(node, ast.Constant)
            and isinstance(node.value, float)
            and node.value in _SCALE_LITERALS):
        return False
    line = context.line_text(node.lineno)
    end = getattr(node, "end_col_offset", None)
    text = line[node.col_offset:end] if end is not None else ""
    return "e" in text.lower()


@register_rule
class UnitSafetyRule(LintRule):
    rule_id = "UNIT01"
    summary = ("cycle-count and SI-unit identifiers must only mix inside "
               "repro/units.py; scale factors must use the units constants")
    default_severity = Severity.ERROR

    def applies_to(self, context: FileContext) -> bool:
        return not context.is_module("repro/units.py")

    def _check_mixing(self, node: ast.AST, left: ast.AST,
                      right: ast.AST) -> None:
        left_units = unit_families(left)
        right_units = unit_families(right)
        if (CYCLE in left_units and SI in right_units) or \
                (SI in left_units and CYCLE in right_units):
            self.report(node,
                        "arithmetic mixes cycle-count and SI-unit operands; "
                        "convert through repro.units (cycles_to_seconds / "
                        "seconds_to_cycles) instead")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div,
                                ast.FloorDiv, ast.Mod)):
            self._check_mixing(node, node.left, node.right)
        if isinstance(node.op, (ast.Mult, ast.Div)):
            assert self.context is not None
            for operand in (node.left, node.right):
                if _is_scale_literal(operand, self.context):
                    assert isinstance(operand, ast.Constant)
                    names = _SCALE_LITERALS[operand.value]
                    self.report(
                        operand,
                        f"raw scale literal {operand.value:g} in arithmetic; "
                        f"use the repro.units constant ({names}) so the "
                        f"conversion is explicit")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for first, second in zip(operands, operands[1:]):
            self._check_mixing(node, first, second)
        self.generic_visit(node)
