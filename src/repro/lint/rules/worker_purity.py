"""PURE01 — pool-worker purity.

``SweepRunner`` promises byte-identical sweep output at any ``--jobs``
count and any task completion order.  That holds only if every function
handed to a ``multiprocessing`` pool — and everything it transitively
calls — is *pure beyond its payload*: no environment reads, no
filesystem, no global RNG, no wall clock, no process management, and no
reads or writes of post-import-mutable module globals.  An impure worker
makes results depend on which process ran which cell in which order,
which is exactly the nondeterminism the engine's merge step cannot undo.

The check is interprocedural: the worker's bare name is resolved to its
definition, and the effect engine's fixpoint closure
(:class:`~repro.lint.project.effects.EffectPropagator`) supplies every
effect reachable through unambiguously resolved calls, each reported with
the call chain that reaches it.  Declared caches
(``# mapglint: declared-cache``) are exempt by construction — they never
produce global effects in phase 1.  Ambiguous callee names contribute
nothing, per the project's agreement rule: the rule under-approximates
rather than guesses, so every reported chain is real.
"""

from __future__ import annotations

from repro.lint.base import ProjectRule, register_project_rule
from repro.lint.findings import Severity
from repro.lint.project.effects import IMPURE_KINDS, format_chain
from repro.lint.project.graph import ProjectModel, in_repro, is_test_path


@register_project_rule
class WorkerPurityRule(ProjectRule):
    rule_id = "PURE01"
    summary = ("functions submitted to a multiprocessing pool, and "
               "everything they transitively call, must be effect-free "
               "beyond their payload and declared caches")
    default_severity = Severity.ERROR

    def run(self, model: "object") -> None:
        assert isinstance(model, ProjectModel)
        for summary in model.summaries:
            if is_test_path(summary.path) or not in_repro(summary.path):
                continue
            effects = summary.module_effects
            if effects is None:
                continue
            for submission in effects.pool_submissions:
                self._check_submission(model, summary.path, submission)

    def _check_submission(self, model: ProjectModel, path: str,
                          submission) -> None:
        # Lambdas / bound methods / closures are PAR01's findings; the
        # purity check needs a resolvable definition.
        if submission.worker_kind != "name":
            return
        candidates = model.resolve(submission.worker_name)
        if len(candidates) != 1:
            return  # unknown or ambiguous: skip rather than guess
        worker = candidates[0]
        propagator = model.effects()
        seen = set()
        reached = sorted(
            propagator.transitive(worker.qualname),
            key=lambda r: (r.origin, r.effect.kind, r.effect.line,
                           r.effect.col))
        for item in reached:
            effect = item.effect
            if effect.kind not in IMPURE_KINDS:
                continue
            dedup = (item.origin, effect.kind)
            if dedup in seen:
                continue
            seen.add(dedup)
            chain = format_chain(
                propagator.call_path(worker.qualname, item.origin))
            origin_path = item.origin.split("::", 1)[0]
            self.report(
                path, submission.line, submission.col,
                f"pool worker '{submission.worker_name}' is impure: "
                f"{effect.detail} (via {chain}, at "
                f"{origin_path}:{effect.line}); workers must be "
                f"effect-free beyond their payload and declared caches or "
                f"sweep output depends on worker scheduling",
                line_text=submission.line_text)
