"""File collection and rule execution."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint.base import FileContext, all_rules
from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, Severity


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.parse_errors + self.findings)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(names):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            collected.append(path)
    # De-duplicate while preserving a deterministic order.
    return sorted(dict.fromkeys(collected))


def lint_source(path: str, source: str,
                rule_ids: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one in-memory module; returns unsuppressed findings."""
    tree = ast.parse(source, filename=path)
    context = FileContext(path, source, tree)
    wanted = set(rule_ids) if rule_ids is not None else None
    findings: List[Finding] = []
    for rule_class in all_rules():
        if wanted is not None and rule_class.rule_id not in wanted:
            continue
        findings.extend(rule_class().check(context))
    return findings


def lint_files(files: Sequence[str],
               baseline: Optional[Baseline] = None,
               rule_ids: Optional[Iterable[str]] = None) -> LintReport:
    """Lint a list of files, optionally filtering through a baseline."""
    report = LintReport()
    raw: List[Finding] = []
    for path in files:
        norm = path.replace("\\", "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.parse_errors.append(Finding(
                path=norm, line=1, column=1, rule_id="IO",
                severity=Severity.ERROR, message=f"cannot read file: {exc}"))
            continue
        try:
            raw.extend(lint_source(path, source, rule_ids=rule_ids))
        except SyntaxError as exc:
            report.parse_errors.append(Finding(
                path=norm, line=exc.lineno or 1,
                column=(exc.offset or 0) + 1, rule_id="SYNTAX",
                severity=Severity.ERROR, message=f"cannot parse file: {exc.msg}"))
            continue
        report.files_checked += 1
    if baseline is not None:
        report.findings, report.stale_baseline = baseline.filter(raw)
    else:
        report.findings = sorted(raw)
    return report


def lint_paths(paths: Sequence[str],
               baseline: Optional[Baseline] = None,
               rule_ids: Optional[Iterable[str]] = None) -> LintReport:
    """Lint files and/or directory trees (the main entry point)."""
    return lint_files(collect_files(paths), baseline=baseline,
                      rule_ids=rule_ids)
