"""Two-phase rule execution with caching and a worker pool.

Phase 1 is per-file and embarrassingly parallel: parse, run every
:class:`~repro.lint.base.LintRule`, and extract the module's
:class:`~repro.lint.project.summary.ModuleSummary`.  Its results depend
only on the file's bytes and the linter's own source, so they are served
from :class:`~repro.lint.cache.ResultCache` when available and farmed out
to a ``multiprocessing`` pool (``--jobs``) only for the cache misses.

Phase 2 merges all summaries into a
:class:`~repro.lint.project.graph.ProjectModel` and runs the whole-program
rules (UNIT02, LEDGER01, CFG01, EVT01).  It is cheap — no ASTs, a few
dictionary passes — and always runs in-process, which is what makes a warm
run nearly free: cache hits skip parsing entirely and go straight here.

Per-line suppressions are applied inside phase 1 for file rules (the
``FileContext`` does it) and against the summaries' recorded pragma table
for project rules, so both paths honor the same ``# mapglint: disable``
comments.  The baseline filter runs last, over the merged finding list.
"""

from __future__ import annotations

import ast
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.base import (
    FileContext, all_project_rules, all_rules, parse_suppressions)
from repro.lint.baseline import Baseline
from repro.lint.cache import ResultCache
from repro.lint.findings import Finding, Severity
from repro.lint.project.graph import ProjectModel
from repro.lint.project.summary import ModuleSummary, extract_summary


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    stale_baseline: List[Tuple[str, str, str]] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: List[Finding] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def all_findings(self) -> List[Finding]:
        return sorted(self.parse_errors + self.findings)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def collect_files(paths: Sequence[str]) -> List[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    collected: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs
                                 if d not in ("__pycache__", ".git"))
                for name in sorted(names):
                    if name.endswith(".py"):
                        collected.append(os.path.join(root, name))
        else:
            collected.append(path)
    # De-duplicate while preserving a deterministic order.
    return sorted(dict.fromkeys(collected))


def lint_source(path: str, source: str,
                rule_ids: Optional[Iterable[str]] = None) -> List[Finding]:
    """Run the per-file rules over one in-memory module.

    Project rules need the whole program and are not run here; use
    :func:`lint_files`/:func:`lint_paths` (or :func:`run_project_rules`
    with hand-built summaries) for those.
    """
    tree = ast.parse(source, filename=path)
    context = FileContext(path, source, tree)
    wanted = set(rule_ids) if rule_ids is not None else None
    findings: List[Finding] = []
    for rule_class in all_rules():
        if wanted is not None and rule_class.rule_id not in wanted:
            continue
        findings.extend(rule_class().check(context))
    return findings


# One file's phase-1 outcome: (norm_path, findings, summary, error).
_Phase1Result = Tuple[str, List[Finding], Optional[ModuleSummary],
                      Optional[Finding]]


def _analyze_file(item: Tuple[str, str]) -> _Phase1Result:
    """Phase-1 worker: all file rules + summary extraction for one file.

    Module-level (not a closure) so the multiprocessing pool can pickle
    it; everything it returns is plain data.
    """
    path, source = item
    norm = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        error = Finding(
            path=norm, line=exc.lineno or 1, column=(exc.offset or 0) + 1,
            rule_id="SYNTAX", severity=Severity.ERROR,
            message=f"cannot parse file: {exc.msg}")
        return norm, [], None, error
    context = FileContext(path, source, tree)
    findings: List[Finding] = []
    for rule_class in all_rules():
        findings.extend(rule_class().check(context))
    summary = extract_summary(path, source, tree, parse_suppressions(source))
    return norm, findings, summary, None


def run_project_rules(summaries: Sequence[ModuleSummary],
                      rule_ids: Optional[Iterable[str]] = None
                      ) -> List[Finding]:
    """Phase 2: whole-program rules over pre-built summaries."""
    wanted = set(rule_ids) if rule_ids is not None else None
    model = ProjectModel(summaries)
    findings: List[Finding] = []
    for rule_class in all_project_rules():
        if wanted is not None and rule_class.rule_id not in wanted:
            continue
        # check_project applies per-line suppressions itself (same filter
        # as LintRule.check), so every caller gets identical behavior.
        findings.extend(rule_class().check_project(model))
    return findings


def lint_files(files: Sequence[str],
               baseline: Optional[Baseline] = None,
               rule_ids: Optional[Iterable[str]] = None,
               jobs: int = 1,
               cache: Optional[ResultCache] = None) -> LintReport:
    """Lint a list of files: cache lookup, pooled phase 1, phase 2, baseline."""
    report = LintReport()
    wanted = set(rule_ids) if rule_ids is not None else None

    # Cache lookup; what misses goes to the workers.
    results: Dict[str, Tuple[List[Finding], ModuleSummary]] = {}
    pending: List[Tuple[str, str]] = []
    pending_keys: Dict[str, str] = {}
    for path in files:
        norm = path.replace("\\", "/")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.parse_errors.append(Finding(
                path=norm, line=1, column=1, rule_id="IO",
                severity=Severity.ERROR, message=f"cannot read file: {exc}"))
            continue
        if cache is not None:
            key = cache.key(source.encode("utf-8"))
            entry = cache.load(key)
            if entry is not None:
                results[norm] = entry
                continue
            pending_keys[norm] = key
        pending.append((path, source))

    # Phase 1 on the misses — pooled only when it can actually help.
    if jobs > 1 and len(pending) > 1:
        with multiprocessing.Pool(processes=min(jobs, len(pending))) as pool:
            outcomes = pool.map(_analyze_file, pending)
    else:
        outcomes = [_analyze_file(item) for item in pending]
    for norm, findings, summary, error in outcomes:
        if error is not None:
            report.parse_errors.append(error)
            continue
        assert summary is not None
        results[norm] = (findings, summary)
        if cache is not None and norm in pending_keys:
            cache.store(pending_keys[norm], findings, summary)

    report.files_checked = len(results)
    if cache is not None:
        report.cache_hits = cache.hits
        report.cache_misses = cache.misses

    # Cached entries hold *all* file-rule findings; subset at read time.
    raw: List[Finding] = []
    for norm in sorted(results):
        findings, _ = results[norm]
        raw.extend(f for f in findings
                   if wanted is None or f.rule_id in wanted)

    # Phase 2: whole-program rules over the merged summaries.
    summaries = [summary for _, summary in results.values()]
    if summaries:
        raw.extend(run_project_rules(summaries, rule_ids=rule_ids))

    if baseline is not None:
        report.findings, report.stale_baseline = baseline.filter(raw)
    else:
        report.findings = sorted(raw)
    return report


def lint_paths(paths: Sequence[str],
               baseline: Optional[Baseline] = None,
               rule_ids: Optional[Iterable[str]] = None,
               jobs: int = 1,
               cache: Optional[ResultCache] = None) -> LintReport:
    """Lint files and/or directory trees (the main entry point)."""
    return lint_files(collect_files(paths), baseline=baseline,
                      rule_ids=rule_ids, jobs=jobs, cache=cache)
