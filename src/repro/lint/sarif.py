"""SARIF 2.1.0 serialization of lint reports.

``--format sarif`` emits one run of the ``mapglint`` driver in the Static
Analysis Results Interchange Format so findings land in code-review UIs
(GitHub code scanning consumes the file directly via
``github/codeql-action/upload-sarif``).  The driver advertises *every*
enabled rule — not just those that fired — so a clean run still documents
what was checked, and each result carries a ``partialFingerprints`` entry
derived from the same ``(path, rule, line-text)`` triple the baseline
uses, which keeps annotations stable across unrelated edits that only
shift line numbers.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.base import all_project_rules, all_rules
from repro.lint.findings import Finding, Severity

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")
SARIF_VERSION = "2.1.0"
TOOL_NAME = "mapglint"
TOOL_VERSION = "2.0.0"
INFORMATION_URI = "docs/LINTING.md"

#: Pseudo-rules the runner synthesizes for unreadable / unparsable files.
_PSEUDO_RULES = {
    "SYNTAX": "file could not be parsed as Python",
    "IO": "file could not be read",
}


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _fingerprint_hash(finding: Finding) -> str:
    path, rule_id, line_text = finding.fingerprint()
    digest = hashlib.sha256(
        f"{path}\x00{rule_id}\x00{line_text}".encode("utf-8"))
    return digest.hexdigest()[:32]


def _rule_descriptors(rule_ids: Optional[Iterable[str]],
                      extra_ids: Iterable[str]) -> List[Dict[str, object]]:
    wanted = set(rule_ids) if rule_ids is not None else None
    descriptors: List[Dict[str, object]] = []
    for rule_class in list(all_rules()) + list(all_project_rules()):
        if wanted is not None and rule_class.rule_id not in wanted:
            continue
        descriptors.append({
            "id": rule_class.rule_id,
            "name": rule_class.__name__,
            "shortDescription": {"text": rule_class.summary},
            "helpUri": INFORMATION_URI,
            "defaultConfiguration": {
                "level": _level(rule_class.default_severity)},
        })
    known = {d["id"] for d in descriptors}
    for rule_id in sorted(set(extra_ids) - known):
        descriptors.append({
            "id": rule_id,
            "name": rule_id.title(),
            "shortDescription": {
                "text": _PSEUDO_RULES.get(rule_id, rule_id)},
            "defaultConfiguration": {"level": "error"},
        })
    descriptors.sort(key=lambda d: str(d["id"]))
    return descriptors


def to_sarif(findings: Sequence[Finding],
             rule_ids: Optional[Iterable[str]] = None) -> Dict[str, object]:
    """Build the SARIF 2.1.0 log dict for one lint run.

    ``rule_ids`` is the enabled subset (``None`` = every registered rule);
    the driver's ``rules`` array lists all of them plus any pseudo-rules
    (``SYNTAX``, ``IO``) present in ``findings``.
    """
    descriptors = _rule_descriptors(rule_ids,
                                    extra_ids=(f.rule_id for f in findings))
    index_of = {d["id"]: i for i, d in enumerate(descriptors)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        results.append({
            "ruleId": finding.rule_id,
            "ruleIndex": index_of.get(finding.rule_id, -1),
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.column, 1),
                    },
                },
            }],
            "partialFingerprints": {
                "mapglintFingerprint/v1": _fingerprint_hash(finding),
            },
        })
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "version": TOOL_VERSION,
                    "informationUri": INFORMATION_URI,
                    "rules": descriptors,
                },
            },
            "columnKind": "utf16CodeUnits",
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }


def format_sarif(findings: Sequence[Finding],
                 rule_ids: Optional[Iterable[str]] = None) -> str:
    """The SARIF log as pretty-printed JSON (what ``--format sarif`` prints)."""
    return json.dumps(to_sarif(findings, rule_ids=rule_ids),
                      indent=2, sort_keys=False)
