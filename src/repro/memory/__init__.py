"""Memory substrate: set-associative caches, MSHRs, DRAM, and the hierarchy."""

from repro.memory.cache import Cache, CacheAccessResult
from repro.memory.dram import Dram, DramAccessResult, ROW_CLOSED, ROW_CONFLICT, ROW_HIT
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.mshr import Mshr, MshrEntry

__all__ = [
    "Cache",
    "CacheAccessResult",
    "Dram",
    "DramAccessResult",
    "ROW_HIT",
    "ROW_CLOSED",
    "ROW_CONFLICT",
    "AccessResult",
    "MemoryHierarchy",
    "Mshr",
    "MshrEntry",
]
