"""Set-associative cache with LRU, random, and tree-PLRU replacement.

The cache tracks tag state only (no data payloads — the simulator never
needs values).  Stores are write-allocate; with ``config.write_back`` (the
default) a store hit marks the line dirty and evicting a dirty line
reports a write-back so the hierarchy can charge DRAM write traffic.
With ``write_back=False`` the cache is write-through: stores never dirty
a line, so evictions are free and the write traffic is charged at access
time by the caller.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CacheConfig
from repro.errors import SimulationError
from repro.stats import CounterSet


@dataclass(frozen=True)
class CacheAccessResult:
    """Outcome of one cache lookup.

    ``writeback_address`` is the byte address of an evicted dirty line (or
    None); it is only ever set on misses that allocated over a dirty victim.
    """

    hit: bool
    writeback_address: Optional[int] = None


class _Line:
    __slots__ = ("tag", "valid", "dirty")

    def __init__(self) -> None:
        self.tag = -1
        self.valid = False
        self.dirty = False


class Cache:
    """One level of a write-allocate set-associative cache.

    Write-back versus write-through is selected by ``config.write_back``.
    """

    def __init__(self, config: CacheConfig, seed: int = 0) -> None:
        self.config = config
        self._num_sets = config.num_sets
        self._ways = config.associativity
        self._offset_bits = config.line_bytes.bit_length() - 1
        self._index_mask = self._num_sets - 1
        self._sets: List[List[_Line]] = [
            [_Line() for __ in range(self._ways)] for __ in range(self._num_sets)
        ]
        # LRU: per-set list of way indices, most-recent last.
        self._lru: List[List[int]] = [list(range(self._ways)) for __ in range(self._num_sets)]
        # Tree-PLRU: per-set bit array over a complete binary tree (ways must
        # be a power of two for PLRU; validated lazily on first use).
        self._plru: List[List[int]] = [[0] * max(1, self._ways - 1) for __ in range(self._num_sets)]
        self._rng = random.Random(seed)
        self.counters = CounterSet()

    # ---- address mapping ---------------------------------------------------

    def line_address(self, address: int) -> int:
        """Byte address of the start of the line containing ``address``."""
        return (address >> self._offset_bits) << self._offset_bits

    def _index_and_tag(self, address: int) -> "tuple[int, int]":
        block = address >> self._offset_bits
        return block & self._index_mask, block >> (self._index_mask.bit_length())

    # ---- main operation ----------------------------------------------------

    def access(self, address: int, is_write: bool = False) -> CacheAccessResult:
        """Look up ``address``; on a miss, allocate the line (fill assumed).

        The caller is responsible for charging the miss latency; this method
        only updates tag/replacement state and returns hit/writeback facts.
        """
        index, tag = self._index_and_tag(address)
        lines = self._sets[index]
        self.counters.add("accesses")
        if is_write:
            self.counters.add("writes")

        for way, line in enumerate(lines):
            if line.valid and line.tag == tag:
                self.counters.add("hits")
                if is_write and self.config.write_back:
                    line.dirty = True
                self._touch(index, way)
                return CacheAccessResult(hit=True)

        self.counters.add("misses")
        way = self._choose_victim(index)
        victim = lines[way]
        writeback: Optional[int] = None
        if victim.valid and victim.dirty:
            self.counters.add("writebacks")
            victim_block = (victim.tag << self._index_mask.bit_length()) | index
            writeback = victim_block << self._offset_bits
        victim.tag = tag
        victim.valid = True
        victim.dirty = is_write and self.config.write_back
        self._touch(index, way)
        return CacheAccessResult(hit=False, writeback_address=writeback)

    def probe(self, address: int) -> bool:
        """Non-destructive lookup: True if the line is resident."""
        index, tag = self._index_and_tag(address)
        return any(line.valid and line.tag == tag for line in self._sets[index])

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address`` if resident; True if dropped.

        Dirty data is discarded (used by failure-injection tests)."""
        index, tag = self._index_and_tag(address)
        for line in self._sets[index]:
            if line.valid and line.tag == tag:
                line.valid = False
                line.dirty = False
                return True
        return False

    def flush(self) -> List[int]:
        """Invalidate everything; returns addresses of dirty lines dropped."""
        dirty: List[int] = []
        for index, lines in enumerate(self._sets):
            for line in lines:
                if line.valid and line.dirty:
                    block = (line.tag << self._index_mask.bit_length()) | index
                    dirty.append(block << self._offset_bits)
                line.valid = False
                line.dirty = False
        return dirty

    # ---- replacement -------------------------------------------------------

    def _touch(self, index: int, way: int) -> None:
        policy = self.config.replacement
        if policy == "lru":
            order = self._lru[index]
            order.remove(way)
            order.append(way)
        elif policy == "plru":
            self._plru_touch(index, way)
        # random: stateless

    def _choose_victim(self, index: int) -> int:
        # Prefer an invalid way regardless of policy.
        for way, line in enumerate(self._sets[index]):
            if not line.valid:
                return way
        policy = self.config.replacement
        if policy == "lru":
            return self._lru[index][0]
        if policy == "random":
            return self._rng.randrange(self._ways)
        if policy == "plru":
            return self._plru_victim(index)
        raise SimulationError(f"unknown replacement policy {policy!r}")

    def _plru_check(self) -> None:
        if self._ways & (self._ways - 1):
            raise SimulationError(
                f"tree-PLRU requires power-of-two associativity, got {self._ways}")

    def _plru_touch(self, index: int, way: int) -> None:
        self._plru_check()
        if self._ways == 1:
            return
        bits = self._plru[index]
        node = 0
        span = self._ways
        low = 0
        while span > 1:
            half = span // 2
            if way < low + half:
                bits[node] = 1  # point away: right subtree is older
                node = 2 * node + 1
            else:
                bits[node] = 0
                node = 2 * node + 2
                low += half
            span = half

    def _plru_victim(self, index: int) -> int:
        self._plru_check()
        if self._ways == 1:
            return 0
        bits = self._plru[index]
        node = 0
        span = self._ways
        low = 0
        while span > 1:
            half = span // 2
            if bits[node]:
                node = 2 * node + 2  # bit points at the older (right) side
                low += half
            else:
                node = 2 * node + 1
            span = half
        return low

    # ---- statistics ----------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        return self.counters.ratio("hits", "accesses")

    def __repr__(self) -> str:
        cfg = self.config
        return (f"Cache({cfg.name}, {cfg.size_bytes // 1024} KiB, "
                f"{cfg.associativity}-way, {cfg.replacement})")
