"""Behavioural DRAM model with banks, row buffers, and FIFO bank queueing.

The model answers one question per request: *how many nanoseconds does this
access take, arriving at absolute time t?*  That latency is what MAPG gates
against, so its composition matters:

``latency = controller overhead + queue wait + row-buffer latency
            + queue service + bus transfer (+ refresh collision)``

Row-buffer latency follows the classic three-way split:

* **row hit** — the open row matches: ``tCAS``
* **row closed** — no open row (closed-page policy, or first touch):
  ``tRCD + tCAS``
* **row conflict** — a different row is open: ``tRP + tRCD + tCAS``
  (precharge respects the ``tRAS`` minimum since activation)

Queueing is per-bank FIFO: each bank records when it becomes free; requests
arriving earlier wait.  This first-order model reproduces the property MAPG
depends on — off-chip latency is *mostly* deterministic with a workload-
dependent spread from row state and bank contention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import DramConfig
from repro.stats import CounterSet, Histogram

ROW_HIT = "row_hit"
ROW_CLOSED = "row_closed"
ROW_CONFLICT = "row_conflict"
WRITE_BUFFERED = "write_buffered"


@dataclass(frozen=True)
class DramAccessResult:
    """Latency breakdown of one DRAM access (all times in nanoseconds)."""

    latency_ns: float
    kind: str  # ROW_HIT | ROW_CLOSED | ROW_CONFLICT
    bank: int
    queue_wait_ns: float
    refresh_wait_ns: float


class _Bank:
    __slots__ = ("open_row", "busy_until_ns", "activated_at_ns",
                 "write_debt_ns")

    def __init__(self) -> None:
        self.open_row = -1  # -1 = precharged / no open row
        self.busy_until_ns = 0.0
        self.activated_at_ns = -1e18
        # Buffered write work not yet performed (read-priority draining).
        self.write_debt_ns = 0.0


class Dram:
    """All channels/ranks/banks of the off-chip memory."""

    def __init__(self, config: DramConfig) -> None:
        self.config = config
        self._banks: List[_Bank] = [_Bank() for __ in range(config.total_banks)]
        self._row_bits = config.row_bytes.bit_length() - 1
        self.counters = CounterSet()
        self.latency_histogram = Histogram.exponential(
            low=10.0, factor=1.3, buckets=24, keep_samples=False)

    # ---- address mapping ---------------------------------------------------

    def map_address(self, address: int) -> Tuple[int, int]:
        """Map a byte address to (bank index, row number).

        Row-interleaved mapping: consecutive rows rotate across banks, which
        gives synthetic workloads natural bank-level parallelism.
        """
        row_global = address >> self._row_bits
        bank = row_global % self.config.total_banks
        row = row_global // self.config.total_banks
        return bank, row

    # ---- access ------------------------------------------------------------

    def access(self, address: int, now_ns: float, is_write: bool = False) -> DramAccessResult:
        """Issue one access at absolute time ``now_ns``; returns its latency.

        Reads and writes share timing in this model; writes are counted
        separately for traffic statistics.
        """
        cfg = self.config
        bank_index, row = self.map_address(address)
        bank = self._banks[bank_index]

        arrival_ns = now_ns + cfg.controller_overhead_ns
        refresh_wait = self._refresh_wait(arrival_ns)
        arrival_ns += refresh_wait

        # Buffered writes drain during the idle gap before this request.
        if bank.write_debt_ns > 0.0:
            idle_gap = max(0.0, arrival_ns - bank.busy_until_ns)
            drained = min(bank.write_debt_ns, idle_gap)
            bank.write_debt_ns -= drained
            bank.busy_until_ns += drained

        if is_write and cfg.write_buffer_per_bank > 0:
            return self._buffered_write(bank, bank_index, row, arrival_ns,
                                        now_ns, refresh_wait)

        queue_wait = max(0.0, bank.busy_until_ns - arrival_ns)
        start_ns = arrival_ns + queue_wait

        if bank.open_row == row:
            kind = ROW_HIT
            array_ns = cfg.t_cas_ns
        elif bank.open_row == -1:
            kind = ROW_CLOSED
            array_ns = cfg.t_rcd_ns + cfg.t_cas_ns
            bank.activated_at_ns = start_ns
        else:
            kind = ROW_CONFLICT
            # Precharge may not begin before tRAS has elapsed since activate.
            ras_wait = max(0.0, (bank.activated_at_ns + cfg.t_ras_ns) - start_ns)
            array_ns = ras_wait + cfg.t_rp_ns + cfg.t_rcd_ns + cfg.t_cas_ns
            bank.activated_at_ns = start_ns + ras_wait + cfg.t_rp_ns

        done_ns = start_ns + array_ns + cfg.queue_service_ns
        bank.busy_until_ns = done_ns
        if cfg.row_policy == "open":
            bank.open_row = row
        else:
            bank.open_row = -1
            bank.busy_until_ns += cfg.t_rp_ns  # auto-precharge after access

        total_ns = (done_ns + cfg.bus_transfer_ns) - now_ns

        self.counters.add("accesses")
        self.counters.add(kind)
        if is_write:
            self.counters.add("writes")
        self.latency_histogram.observe(total_ns)
        return DramAccessResult(
            latency_ns=total_ns,
            kind=kind,
            bank=bank_index,
            queue_wait_ns=queue_wait,
            refresh_wait_ns=refresh_wait,
        )

    def _buffered_write(self, bank: "_Bank", bank_index: int, row: int,
                        arrival_ns: float, now_ns: float,
                        refresh_wait: float) -> DramAccessResult:
        """Absorb a write into the bank's buffer (read-priority draining).

        The write completes from the requester's point of view as soon as
        the buffer accepts it; the bank performs the work later, in idle
        gaps.  When the buffer overflows, the accumulated debt drains as a
        burst that occupies the bank immediately — the bandwidth-saturated
        case where writes do slow reads down.
        """
        cfg = self.config
        write_service_ns = cfg.t_cas_ns + cfg.queue_service_ns
        bank.write_debt_ns += write_service_ns
        self.counters.add("accesses")
        self.counters.add("writes")
        self.counters.add("buffered_writes")
        capacity_ns = cfg.write_buffer_per_bank * write_service_ns
        if bank.write_debt_ns > capacity_ns:
            start_ns = max(arrival_ns, bank.busy_until_ns)
            bank.busy_until_ns = start_ns + bank.write_debt_ns
            bank.write_debt_ns = 0.0
            self.counters.add("write_buffer_drains")
        latency_ns = (arrival_ns - now_ns) + 1.0  # buffer accept
        return DramAccessResult(
            latency_ns=latency_ns, kind=WRITE_BUFFERED, bank=bank_index,
            queue_wait_ns=0.0, refresh_wait_ns=refresh_wait)

    def _refresh_wait(self, arrival_ns: float) -> float:
        """Extra wait if the access lands inside an all-bank refresh window."""
        cfg = self.config
        if cfg.refresh_latency_ns <= 0.0:
            return 0.0
        phase = arrival_ns % cfg.refresh_interval_ns
        if phase < cfg.refresh_latency_ns:
            self.counters.add("refresh_collisions")
            return cfg.refresh_latency_ns - phase
        return 0.0

    # ---- statistics ----------------------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        return self.counters.ratio(ROW_HIT, "accesses")

    def reset_state(self) -> None:
        """Precharge all banks and clear the timing state (not the counters)."""
        for bank in self._banks:
            bank.open_row = -1
            bank.busy_until_ns = 0.0
            bank.activated_at_ns = -1e18
            bank.write_debt_ns = 0.0
