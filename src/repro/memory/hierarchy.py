"""Two-level cache hierarchy in front of DRAM.

``MemoryHierarchy`` composes :class:`repro.memory.cache.Cache` (L1, L2),
:class:`repro.memory.mshr.Mshr` per level, and :class:`repro.memory.dram.Dram`
into a single call:

    result = hierarchy.access(address, cycle, is_write=False)

which returns the total access latency in **core cycles** and where the
request was satisfied.  Off-chip accesses (``result.off_chip``) are the
events the MAPG controller gates on.

Modeling choices (documented because they shape the evaluation):

* Misses to a line already in flight merge into the MSHR entry and pay only
  the residual latency — this creates the short-stall population that makes
  naive gating lose energy (F2).
* A full MSHR file stalls the request until the oldest fill returns.
* Dirty evictions issue DRAM writes that occupy the bank (raising later
  queue waits) but do not delay the triggering load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import CacheConfig, DramConfig
from repro.memory.cache import Cache
from repro.memory.dram import Dram, DramAccessResult
from repro.memory.mshr import Mshr
from repro.memory.prefetch import PrefetcherConfig, StridePrefetcher
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.stats import CounterSet
from repro.units import NS, cycles_to_ns, seconds_to_cycles_ceil


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one hierarchy access.

    ``level`` is the furthest level that serviced the request: ``"l1"``,
    ``"l2"``, or ``"dram"``.  ``merged`` marks MSHR merges (the request
    piggybacked on an in-flight fill).  ``dram`` carries the DRAM latency
    breakdown when ``level == "dram"``.
    """

    total_cycles: int
    level: str
    merged: bool = False
    mshr_wait_cycles: int = 0
    dram: Optional[DramAccessResult] = None
    # For merged results: the cycle the in-flight miss originally issued
    # (lets callers compute how long the line has been outstanding).
    in_flight_issue_cycle: Optional[int] = None

    @property
    def off_chip(self) -> bool:
        """True when the request left the chip (the MAPG gating trigger)."""
        return self.level == "dram"


class MemoryHierarchy:
    """L1 -> L2 -> DRAM with per-level MSHRs and write-back traffic."""

    # Bound on the prefetched-line tracking set (useful-prefetch accounting).
    _PREFETCH_TRACK_LIMIT = 4096

    def __init__(self, l1_config: CacheConfig, l2_config: CacheConfig,
                 dram_config: DramConfig, frequency_hz: float, seed: int = 0,
                 shared_dram: "Dram | None" = None,
                 prefetcher_config: "PrefetcherConfig | None" = None,
                 recorder: "NullRecorder | None" = None) -> None:
        self.l1 = Cache(l1_config, seed=seed)
        self.l2 = Cache(l2_config, seed=seed + 1)
        # Multi-core systems pass one Dram shared by all hierarchies so bank
        # contention couples the cores; single-core builds its own.
        self.dram = shared_dram if shared_dram is not None else Dram(dram_config)
        self.l1_mshr = Mshr(l1_config.mshr_entries)
        self.l2_mshr = Mshr(l2_config.mshr_entries)
        self._frequency_hz = frequency_hz
        self.counters = CounterSet()
        self.prefetcher: "StridePrefetcher | None" = None
        if prefetcher_config is not None and prefetcher_config.enabled:
            self.prefetcher = StridePrefetcher(prefetcher_config)
        self._prefetched_lines: "dict[int, None]" = {}
        # Observability: off-chip accesses become spans on the shared DRAM
        # track; the disabled default costs one attribute check per access.
        self._obs = recorder if recorder is not None else NULL_RECORDER
        if self._obs.enabled:
            self._m_accesses = self._obs.metrics.counter(
                "mem.accesses", help="hierarchy accesses serviced")
            self._m_dram = self._obs.metrics.counter(
                "mem.dram_accesses", help="demand accesses that left the chip")

    def _cycles_to_ns(self, cycles: int) -> float:
        return cycles_to_ns(cycles, self._frequency_hz)

    def _ns_to_cycles(self, ns: float) -> int:
        return seconds_to_cycles_ceil(ns * NS, self._frequency_hz)

    def access(self, address: int, cycle: int, is_write: bool = False,
               pc: int = 0) -> AccessResult:
        """Service one memory instruction issued at ``cycle``.

        ``pc`` identifies the static instruction; the stride prefetcher
        (when configured) trains on it.
        """
        self.counters.add("accesses")
        if self._obs.enabled:
            self._m_accesses.inc()
        line = self.l1.line_address(address)
        l1_lat = self.l1.config.hit_latency_cycles

        # L1 MSHR merge: the line is already being fetched into L1.
        in_flight = self.l1_mshr.lookup(line, cycle)
        if in_flight is not None:
            self.counters.add("l1_mshr_merges")
            total = l1_lat + in_flight.remaining(cycle)
            # The line will be resident when the fill lands; update tag state
            # so the post-fill world is consistent.
            self.l1.access(address, is_write)
            return AccessResult(total, level="l1", merged=True,
                                in_flight_issue_cycle=in_flight.issue_cycle)

        l1_result = self.l1.access(address, is_write)
        if l1_result.hit:
            return AccessResult(l1_lat, level="l1")

        # L1 miss: possibly wait for an MSHR slot, then go to L2.
        mshr_wait = self.l1_mshr.wait_for_free_slot(cycle)
        if mshr_wait:
            self.counters.add("l1_mshr_stalls")
        issue = cycle + mshr_wait
        below = self._access_l2(address, issue, is_write, pc=pc)
        total = mshr_wait + l1_lat + below.total_cycles
        self.l1_mshr.allocate(line, issue, cycle + total)
        if l1_result.writeback_address is not None:
            self._writeback(l1_result.writeback_address, issue, to_dram=False)
        if self._obs.enabled and below.level == "dram":
            self._m_dram.inc()
            kind = below.dram.kind if below.dram is not None else "dram"
            bank = below.dram.bank if below.dram is not None else -1
            self._obs.span(
                "dram", kind, cycle, total, category="mem",
                args={"bank": bank, "write": is_write,
                      "mshr_wait_cycles": mshr_wait + below.mshr_wait_cycles})
        return AccessResult(
            total, level=below.level, merged=below.merged,
            mshr_wait_cycles=mshr_wait + below.mshr_wait_cycles, dram=below.dram,
            in_flight_issue_cycle=below.in_flight_issue_cycle)

    def _access_l2(self, address: int, cycle: int, is_write: bool,
                   pc: int = 0) -> AccessResult:
        line = self.l2.line_address(address)
        l2_lat = self.l2.config.hit_latency_cycles
        if self.prefetcher is not None:
            self._run_prefetcher(pc, address, cycle)

        in_flight = self.l2_mshr.lookup(line, cycle)
        if in_flight is not None:
            self.counters.add("l2_mshr_merges")
            if self._prefetched_lines.pop(line, "absent") is None:
                self.counters.add("useful_prefetches")
                self.counters.add("late_prefetches")  # arrived mid-flight
            self.l2.access(address, is_write=False)
            return AccessResult(l2_lat + in_flight.remaining(cycle),
                                level="l2", merged=True,
                                in_flight_issue_cycle=in_flight.issue_cycle)

        l2_result = self.l2.access(address, is_write=False)
        if l2_result.hit:
            if self._prefetched_lines.pop(line, "absent") is None:
                self.counters.add("useful_prefetches")
            return AccessResult(l2_lat, level="l2")

        mshr_wait = self.l2_mshr.wait_for_free_slot(cycle)
        if mshr_wait:
            self.counters.add("l2_mshr_stalls")
        issue = cycle + mshr_wait
        dram_result = self.dram.access(address, self._cycles_to_ns(issue), is_write=False)
        dram_cycles = self._ns_to_cycles(dram_result.latency_ns)
        total = mshr_wait + l2_lat + dram_cycles
        self.l2_mshr.allocate(line, issue, cycle + total)
        if l2_result.writeback_address is not None:
            self._writeback(l2_result.writeback_address, issue, to_dram=True)
        return AccessResult(total, level="dram", mshr_wait_cycles=mshr_wait,
                            dram=dram_result)

    def _run_prefetcher(self, pc: int, address: int, cycle: int) -> None:
        """Train the stride prefetcher and launch its fills toward L2.

        Honest costs: prefetch fills occupy DRAM banks (raising later queue
        waits), take an MSHR slot (dropped when none is free — demands have
        priority), arrive after the full DRAM latency (a demand arriving
        earlier merges and pays the residual — the "late prefetch" case),
        and evict L2 lines through the normal replacement path (pollution).
        """
        for target in self.prefetcher.train(pc, address):
            line = self.l2.line_address(target)
            if self.l2.probe(line) or self.l2_mshr.lookup(line, cycle) is not None:
                self.counters.add("prefetch_redundant")
                continue
            if self.l2_mshr.wait_for_free_slot(cycle) > 0:
                self.counters.add("prefetch_dropped")
                continue
            dram_result = self.dram.access(
                line, self._cycles_to_ns(cycle), is_write=False)
            fill_cycle = cycle + self._ns_to_cycles(dram_result.latency_ns)
            self.l2_mshr.allocate(line, cycle, fill_cycle)
            result = self.l2.access(line, is_write=False)
            if result.writeback_address is not None:
                self.dram.access(result.writeback_address,
                                 self._cycles_to_ns(cycle), is_write=True)
            self.counters.add("prefetch_fills")
            if len(self._prefetched_lines) >= self._PREFETCH_TRACK_LIMIT:
                self._prefetched_lines.pop(next(iter(self._prefetched_lines)))
            self._prefetched_lines[line] = None

    def _writeback(self, address: int, cycle: int, to_dram: bool) -> None:
        """Install an evicted dirty line one level down (off the load's path)."""
        self.counters.add("writebacks")
        if not to_dram:
            # L1 victim lands in L2; a dirty L2 victim may cascade to DRAM.
            result = self.l2.access(address, is_write=True)
            if not result.hit and result.writeback_address is not None:
                self._writeback(result.writeback_address, cycle, to_dram=True)
            return
        self.dram.access(address, self._cycles_to_ns(cycle), is_write=True)

    # ---- statistics ----------------------------------------------------------

    def mpki(self, instructions: int) -> float:
        """Off-chip misses per kilo-instruction (L2 demand misses)."""
        if instructions <= 0:
            return 0.0
        return self.l2.counters.get("misses") / instructions * 1000.0
