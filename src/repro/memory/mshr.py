"""Miss-status holding registers (MSHRs).

MSHRs track in-flight misses so that (a) a second access to a line already
being fetched *merges* into the outstanding miss instead of issuing a
duplicate DRAM request, and (b) the number of simultaneously outstanding
misses is bounded — when the file is full, a new miss must wait for the
oldest entry to retire (structural hazard), which the core model charges as
extra stall cycles.

Entries are keyed by line address and expire at their fill cycle; callers
drive expiry by passing the current cycle into every operation (the MSHR
has no clock of its own).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class MshrEntry:
    """One outstanding miss: the line and the cycle its fill completes."""

    line_address: int
    issue_cycle: int
    fill_cycle: int

    def remaining(self, cycle: int) -> int:
        """Cycles until the fill returns, as seen at ``cycle`` (>= 0)."""
        return max(0, self.fill_cycle - cycle)


class Mshr:
    """A bounded file of outstanding misses."""

    def __init__(self, entries: int) -> None:
        if entries < 1:
            raise SimulationError(f"MSHR file needs >= 1 entry, got {entries}")
        self._capacity = entries
        self._entries: Dict[int, MshrEntry] = {}

    @property
    def capacity(self) -> int:
        return self._capacity

    def _expire(self, cycle: int) -> None:
        expired = [addr for addr, e in self._entries.items() if e.fill_cycle <= cycle]
        for addr in expired:
            del self._entries[addr]

    def outstanding(self, cycle: int) -> int:
        """Number of live entries at ``cycle``."""
        self._expire(cycle)
        return len(self._entries)

    def lookup(self, line_address: int, cycle: int) -> Optional[MshrEntry]:
        """The live entry covering ``line_address``, or None."""
        self._expire(cycle)
        entry = self._entries.get(line_address)
        if entry is not None and entry.fill_cycle > cycle:
            return entry
        return None

    def allocate(self, line_address: int, cycle: int, fill_cycle: int) -> MshrEntry:
        """Record a new outstanding miss.

        Raises if the line already has a live entry (callers must merge via
        :meth:`lookup` first) or if the file is full (callers must first wait
        via :meth:`wait_for_free_slot`).
        """
        self._expire(cycle)
        if fill_cycle < cycle:
            raise SimulationError(
                f"fill cycle {fill_cycle} precedes allocation cycle {cycle}")
        if line_address in self._entries:
            raise SimulationError(
                f"line {line_address:#x} already has an outstanding miss")
        if len(self._entries) >= self._capacity:
            raise SimulationError("MSHR file is full; wait_for_free_slot first")
        entry = MshrEntry(line_address, cycle, fill_cycle)
        self._entries[line_address] = entry
        return entry

    def wait_for_free_slot(self, cycle: int) -> int:
        """Cycles to wait at ``cycle`` until a slot frees (0 if one is free)."""
        self._expire(cycle)
        if len(self._entries) < self._capacity:
            return 0
        earliest = min(entry.fill_cycle for entry in self._entries.values())
        return earliest - cycle

    def drain_cycle(self, cycle: int) -> int:
        """Cycle at which all current entries have filled (>= ``cycle``).

        The power-gating controller uses this: a core must not gate its
        caches while fills are in flight.
        """
        self._expire(cycle)
        if not self._entries:
            return cycle
        return max(entry.fill_cycle for entry in self._entries.values())
