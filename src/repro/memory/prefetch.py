"""Stride/stream prefetcher in front of DRAM.

A classic per-PC stride prefetcher attached to the L2: on every demand
access it trains a small table with the last address and stride seen per
static instruction; after two confirmations of the same stride it issues
``degree`` prefetches ahead of the stream into L2.

Why this lives in the MAPG repository: prefetching *removes* off-chip
stalls (hits that would have been misses) and *shortens* others (late
prefetches cut the residual latency), which shrinks exactly the idle
windows MAPG gates.  The F11 experiment quantifies that interaction — a
design team deploying MAPG needs to know how much saving survives a decent
prefetcher.

Modeled costs are honest: prefetch fills occupy DRAM banks (raising later
queue waits) and evict L2 lines (pollution); useless prefetches are
counted.
"""

from __future__ import annotations

from typing import Dict, List

from repro.config import PrefetcherConfig
from repro.stats import CounterSet

__all__ = ["PrefetcherConfig", "StridePrefetcher"]


class _StrideEntry:
    __slots__ = ("last_address", "stride", "confidence", "valid")

    def __init__(self) -> None:
        self.last_address = 0
        self.stride = 0
        self.confidence = 0
        self.valid = False


class StridePrefetcher:
    """Per-PC stride detector; returns addresses worth prefetching."""

    def __init__(self, config: PrefetcherConfig) -> None:
        self.config = config
        self._table: Dict[int, _StrideEntry] = {}
        self.counters = CounterSet()

    def _entry(self, pc: int) -> _StrideEntry:
        # Knuth multiplicative hash, taking the *high* bits (the low bits
        # preserve input congruences), so nearby PCs land in distinct slots.
        product = (pc >> 2) * 2654435761 & 0xFFFF_FFFF
        index = (product >> 16) % self.config.table_entries
        entry = self._table.get(index)
        if entry is None:
            if len(self._table) >= self.config.table_entries:
                # Direct-mapped behaviour: evict whatever aliases.
                self._table.pop(next(iter(self._table)))
            entry = _StrideEntry()
            self._table[index] = entry
        return entry

    def train(self, pc: int, address: int) -> List[int]:
        """Observe one demand access; return addresses to prefetch.

        Addresses are returned most-imminent first; the caller decides what
        to do with them (the hierarchy fills them into L2).
        """
        entry = self._entry(pc)
        self.counters.add("trained")
        if not entry.valid:
            entry.last_address = address
            entry.valid = True
            return []
        stride = address - entry.last_address
        entry.last_address = address
        if stride == 0 or abs(stride) > self.config.max_stride_bytes:
            entry.confidence = 0
            entry.stride = 0
            return []
        if stride == entry.stride:
            entry.confidence = min(entry.confidence + 1, self.config.confirmations)
        else:
            # New stride: start counting confirmations from zero matches.
            entry.stride = stride
            entry.confidence = 0
            return []
        if entry.confidence < self.config.confirmations:
            return []
        self.counters.add("triggers")
        prefetches = [address + stride * (i + 1)
                      for i in range(self.config.degree)]
        self.counters.add("issued", len(prefetches))
        return [p for p in prefetches if p >= 0]
