"""Deterministic observability: metrics, spans, manifests, self-profiling.

The simulator's evidence layer (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics`  — ``Counter`` / ``Gauge`` / ``Histogram`` in a
  ``Registry``; cycle-domain, never wall-clock.
* :mod:`repro.obs.spans`    — ``SpanRecorder`` buffers cycle-timestamped
  spans per track; ``NULL_RECORDER`` is the free disabled default.
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON export
  (``python -m repro run ... --trace-out run.json``).
* :mod:`repro.obs.manifest` — run manifests tying every result to its
  config digest, seed, workload, git SHA, and package version.
* :mod:`repro.obs.runlog`   — structured JSONL logs.
* :mod:`repro.obs.profile`  — simulator self-profiling (events/sec, wall
  time per stage, peak RSS); wall-clock allowed (DET01 allowlist).
* :mod:`repro.obs.sweep`    — ``SweepRecorder`` sweep-scale telemetry:
  per-cell lifecycle events, JSONL event stream, sweep manifest, live
  progress; ``NULL_SWEEP_RECORDER`` is the free disabled default.
  Wall-clock allowed — host telemetry, outside the cycle domain.
* :mod:`repro.obs.anomaly`  — perf-anomaly watcher: tolerance-band
  comparison of profiles/scorecards/sweeps against the checked-in
  baseline, ``anomaly_report.json`` + quick actions.
"""

from repro.obs.anomaly import (
    ANOMALY_SCHEMA,
    DEFAULT_BANDS,
    ToleranceBand,
    append_anomaly_rows,
    archive_trace,
    compare_to_baseline,
    environment_warnings,
    flatten_metrics,
    load_perf_document,
    parse_band,
    write_anomaly_report,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    environment_manifest,
    git_revision,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    default_registry,
)
from repro.obs.perfetto import (
    artifact_paths,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import PROFILE_SCHEMA, SelfProfiler, StageTimer, peak_rss_bytes
from repro.obs.runlog import (
    JsonlWriter,
    metrics_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.spans import NULL_RECORDER, NullRecorder, SpanRecorder
from repro.obs.sweep import (
    NULL_SWEEP_RECORDER,
    SWEEP_EVENTS_SCHEMA,
    SWEEP_MANIFEST_SCHEMA,
    NullSweepRecorder,
    SweepRecorder,
    sweep_artifact_paths,
    validate_sweep_events,
    validate_sweep_manifest,
    write_sweep_artifacts,
)

__all__ = [
    "ANOMALY_SCHEMA",
    "DEFAULT_BANDS",
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "SWEEP_EVENTS_SCHEMA",
    "SWEEP_MANIFEST_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricError",
    "NULL_RECORDER",
    "NULL_SWEEP_RECORDER",
    "NullRecorder",
    "NullSweepRecorder",
    "Registry",
    "SelfProfiler",
    "SpanRecorder",
    "StageTimer",
    "SweepRecorder",
    "ToleranceBand",
    "append_anomaly_rows",
    "archive_trace",
    "artifact_paths",
    "build_manifest",
    "compare_to_baseline",
    "config_digest",
    "default_registry",
    "environment_manifest",
    "environment_warnings",
    "flatten_metrics",
    "git_revision",
    "load_perf_document",
    "metrics_to_jsonl",
    "parse_band",
    "peak_rss_bytes",
    "read_jsonl",
    "read_manifest",
    "sweep_artifact_paths",
    "to_chrome_trace",
    "validate_chrome_trace",
    "validate_sweep_events",
    "validate_sweep_manifest",
    "write_anomaly_report",
    "write_chrome_trace",
    "write_jsonl",
    "write_manifest",
]
