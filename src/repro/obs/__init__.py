"""Deterministic observability: metrics, spans, manifests, self-profiling.

The simulator's evidence layer (see ``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.metrics`  — ``Counter`` / ``Gauge`` / ``Histogram`` in a
  ``Registry``; cycle-domain, never wall-clock.
* :mod:`repro.obs.spans`    — ``SpanRecorder`` buffers cycle-timestamped
  spans per track; ``NULL_RECORDER`` is the free disabled default.
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON export
  (``python -m repro run ... --trace-out run.json``).
* :mod:`repro.obs.manifest` — run manifests tying every result to its
  config digest, seed, workload, git SHA, and package version.
* :mod:`repro.obs.runlog`   — structured JSONL logs.
* :mod:`repro.obs.profile`  — simulator self-profiling (events/sec, wall
  time per stage, peak RSS); the only module allowed the wall clock.
"""

from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    build_manifest,
    config_digest,
    environment_manifest,
    git_revision,
    read_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    Registry,
    default_registry,
)
from repro.obs.perfetto import (
    artifact_paths,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.profile import PROFILE_SCHEMA, SelfProfiler, StageTimer, peak_rss_bytes
from repro.obs.runlog import (
    JsonlWriter,
    metrics_to_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.obs.spans import NULL_RECORDER, NullRecorder, SpanRecorder

__all__ = [
    "MANIFEST_SCHEMA",
    "PROFILE_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlWriter",
    "MetricError",
    "NULL_RECORDER",
    "NullRecorder",
    "Registry",
    "SelfProfiler",
    "SpanRecorder",
    "StageTimer",
    "artifact_paths",
    "build_manifest",
    "config_digest",
    "default_registry",
    "environment_manifest",
    "git_revision",
    "metrics_to_jsonl",
    "peak_rss_bytes",
    "read_jsonl",
    "read_manifest",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_manifest",
]
