"""Perf-anomaly watcher: compare observed metrics against the baseline.

The checked-in ``BENCH_sim_throughput.json`` scorecard is only useful if
something *reads* it.  This module is that reader: it flattens a bench
scorecard, a :class:`~repro.obs.profile.SelfProfiler` report, or a sweep
manifest (:data:`~repro.obs.sweep.SWEEP_MANIFEST_SCHEMA`) into dotted
metric names, compares them against the baseline under configurable
tolerance bands, and emits a machine-readable ``anomaly_report.json``
naming every regressed metric (baseline, observed, ratio, band).  CI,
``python -m repro watch-perf``, ``scripts/bench_perf.py``, and the
future mapg-lab daemon all consume the same artifact.

Design points:

* **Ratios, not deltas.**  A band is a fractional tolerance around the
  baseline: ``higher``-is-better metrics regress when
  ``observed < baseline * (1 - tolerance)``; ``lower``-is-better when
  ``observed > baseline * (1 + tolerance)``.
* **Staleness warns, never fails.**  A baseline recorded on another
  commit or another core count is noise, not a regression — the report
  carries ``warnings`` naming the mismatch and pointing at
  ``scripts/bench_perf.py --update-baseline``.
* **Quick actions** for the failure path: archive the Perfetto trace of
  the offending run and append issue rows to a local ``ANOMALIES.jsonl``
  so regressions accumulate into a greppable history.

Reports are written atomically (tmp + ``os.replace``, per CONC04) so a
watcher racing a reader never exposes a torn file.
"""

from __future__ import annotations

import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ManifestError
from repro.obs.manifest import environment_manifest
from repro.obs.profile import PROFILE_SCHEMA
from repro.obs.sweep import SWEEP_MANIFEST_SCHEMA

PathLike = Union[str, Path]

ANOMALY_SCHEMA = "mapg.anomaly-report/1"

_DIRECTIONS = ("higher", "lower")


@dataclass(frozen=True)
class ToleranceBand:
    """One metric to watch: name, fractional tolerance, good direction.

    ``direction="higher"`` means larger observed values are better
    (throughput); ``"lower"`` means smaller is better (wall time).
    """

    metric: str
    tolerance: float
    direction: str = "higher"

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigError("tolerance band needs a metric name")
        if not 0.0 < self.tolerance < 10.0:
            raise ConfigError(
                f"band tolerance must be in (0, 10), got {self.tolerance!r}")
        if self.direction not in _DIRECTIONS:
            raise ConfigError(
                f"band direction must be one of {_DIRECTIONS}, "
                f"got {self.direction!r}")


#: Default watch list: the throughput-shaped rows of the bench scorecard
#: plus sweep-manifest throughput.  Generous bands — the watcher's job is
#: catching step-function regressions (an accidental O(n^2), a dropped
#: cache), not 5% jitter on a noisy CI box.
DEFAULT_BANDS: Tuple[ToleranceBand, ...] = (
    ToleranceBand("single_core.ops_per_sec", 0.30),
    ToleranceBand("single_core.events_per_sec", 0.30),
    ToleranceBand("single_core_fast.ops_per_sec", 0.30),
    ToleranceBand("single_core_fast.speedup_vs_oracle", 0.50),
    ToleranceBand("cache_warm.speedup_vs_cold", 0.50),
    ToleranceBand("sweep_parallel.speedup_vs_serial", 0.50),
    ToleranceBand("sweep.cells_per_sec", 0.50),
    # Engine-mix telemetry (mapg.sweep-manifest/1 counters.engines):
    # fewer fast-path cells, or more kernel refusals, than the baseline
    # sweep means an eligibility regression — the grid silently fell
    # back to the 13x-slower oracle.  Skipped when the baseline predates
    # the engine counters.
    ToleranceBand("sweep.engines.fast", 0.50, "higher"),
    ToleranceBand("sweep.engines.fast_fallback", 0.50, "lower"),
)


def parse_band(text: str) -> ToleranceBand:
    """Parse ``METRIC=TOL`` or ``METRIC=TOL:DIRECTION`` (CLI ``--band``)."""
    metric, sep, rest = text.partition("=")
    if not sep or not metric:
        raise ConfigError(
            f"band {text!r} is not METRIC=TOL[:higher|lower]")
    tol_text, _, direction = rest.partition(":")
    try:
        tolerance = float(tol_text)
    except ValueError:
        raise ConfigError(f"band {text!r} has a non-numeric tolerance")
    return ToleranceBand(metric.strip(), tolerance,
                         direction.strip() or "higher")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def flatten_metrics(document: Mapping[str, Any]) -> Dict[str, float]:
    """Flatten any supported perf document into dotted metric names.

    * bench scorecard rows      -> ``<row>.<field>``
    * self-profile stages       -> ``<stage>.wall_s`` / ``.events_per_sec``
      (whether the profile is the document itself or its ``self_profile``
      embed; row names win on collision since they are the curated view)
    * sweep-manifest counters   -> ``sweep.<counter>``, with one level of
      nesting for grouped counters -> ``sweep.<group>.<counter>`` (e.g.
      ``sweep.engines.fast``, ``sweep.fallback_reasons.<reason>``)
    """
    metrics: Dict[str, float] = {}
    rows = document.get("rows")
    if isinstance(rows, Mapping):
        for row_name, row in sorted(rows.items()):
            if isinstance(row, Mapping):
                for field, value in sorted(row.items()):
                    if _is_number(value):
                        metrics[f"{row_name}.{field}"] = float(value)
    profile: Any = None
    if document.get("schema") == PROFILE_SCHEMA:
        profile = document
    elif isinstance(document.get("self_profile"), Mapping):
        profile = document["self_profile"]
    if isinstance(profile, Mapping):
        stages = profile.get("stages")
        for stage in stages if isinstance(stages, list) else []:
            if not isinstance(stage, Mapping) or not stage.get("name"):
                continue
            for field in ("wall_s", "events_per_sec"):
                value = stage.get(field)
                if _is_number(value):
                    metrics.setdefault(f"{stage['name']}.{field}",
                                       float(value))
    if document.get("schema") == SWEEP_MANIFEST_SCHEMA:
        counters = document.get("counters")
        if isinstance(counters, Mapping):
            for field, value in sorted(counters.items()):
                if _is_number(value):
                    metrics[f"sweep.{field}"] = float(value)
                elif isinstance(value, Mapping):
                    # One level of grouped counters (engines,
                    # fallback_reasons, per_worker) — deeper nesting is
                    # not a counter shape the manifest produces.
                    for sub_field, sub_value in sorted(value.items()):
                        if _is_number(sub_value):
                            metrics[f"sweep.{field}.{sub_field}"] = \
                                float(sub_value)
    return metrics


def environment_warnings(baseline: Mapping[str, Any]) -> List[str]:
    """Staleness signals: baseline recorded elsewhere?  Warn, never fail."""
    warnings: List[str] = []
    environment = environment_manifest()
    baseline_env = baseline.get("environment")
    baseline_env = baseline_env if isinstance(baseline_env, Mapping) else {}
    baseline_sha = baseline_env.get("git_sha")
    current_sha = environment.get("git_sha")
    if baseline_sha and current_sha and baseline_sha != current_sha:
        warnings.append(
            f"baseline git_sha {str(baseline_sha)[:12]} != current "
            f"{str(current_sha)[:12]} — the baseline is stale; refresh "
            f"with scripts/bench_perf.py --update-baseline")
    baseline_cpus = baseline.get("cpu_count")
    current_cpus = os.cpu_count()
    if baseline_cpus is not None and current_cpus is not None \
            and baseline_cpus != current_cpus:
        warnings.append(
            f"baseline cpu_count {baseline_cpus} != current {current_cpus} "
            f"— wall-clock and speedup rows are not comparable across "
            f"machines")
    return warnings


def compare_to_baseline(observed: Mapping[str, Any],
                        baseline: Mapping[str, Any],
                        bands: Optional[Sequence[ToleranceBand]] = None
                        ) -> Dict[str, Any]:
    """Judge ``observed`` against ``baseline``; returns the anomaly report.

    Metrics absent from either side are *skipped*, not failed — a
    self-profile document simply has no cache rows.  ``ok`` is True iff
    no checked metric regressed past its band.
    """
    watch = tuple(bands) if bands is not None else DEFAULT_BANDS
    observed_metrics = flatten_metrics(observed)
    baseline_metrics = flatten_metrics(baseline)
    anomalies: List[Dict[str, Any]] = []
    checked: List[str] = []
    skipped: List[str] = []
    for band in watch:
        observed_value = observed_metrics.get(band.metric)
        baseline_value = baseline_metrics.get(band.metric)
        if observed_value is None or baseline_value is None \
                or baseline_value == 0:
            skipped.append(band.metric)
            continue
        checked.append(band.metric)
        ratio = observed_value / baseline_value
        if band.direction == "higher":
            regressed = ratio < 1.0 - band.tolerance
        else:
            regressed = ratio > 1.0 + band.tolerance
        if regressed:
            anomalies.append({
                "metric": band.metric,
                "baseline": baseline_value,
                "observed": observed_value,
                "ratio": round(ratio, 6),
                "band": band.tolerance,
                "direction": band.direction,
            })
    baseline_env = baseline.get("environment")
    return {
        "schema": ANOMALY_SCHEMA,
        "ok": not anomalies,
        "anomalies": anomalies,
        "checked": checked,
        "skipped": skipped,
        "warnings": environment_warnings(baseline),
        "baseline_environment": (dict(baseline_env)
                                 if isinstance(baseline_env, Mapping)
                                 else None),
        "environment": environment_manifest(),
    }


def write_anomaly_report(report: Mapping[str, Any],
                         path: PathLike) -> Path:
    """Atomically write a report (tmp + ``os.replace``, per CONC04)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(dict(report), indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)
    return target


def load_perf_document(path: PathLike) -> Dict[str, Any]:
    """Load a scorecard / profile / sweep manifest, with a typed error."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except ValueError as exc:
        raise ManifestError(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ManifestError(f"{path} is not a JSON object")
    return data


# ---- quick actions ----------------------------------------------------------


def archive_trace(trace_path: PathLike,
                  archive_dir: PathLike) -> Optional[Path]:
    """Copy the offending run's Perfetto trace into ``archive_dir``.

    Returns the destination (uniquified with ``-N`` suffixes so repeated
    regressions never clobber earlier evidence), or None when the trace
    does not exist — a missing trace must not mask the real anomaly.
    """
    source = Path(trace_path)
    if not source.is_file():
        return None
    directory = Path(archive_dir)
    directory.mkdir(parents=True, exist_ok=True)
    destination = directory / source.name
    serial = 1
    while destination.exists():
        destination = directory / f"{source.stem}-{serial}{source.suffix}"
        serial += 1
    shutil.copy2(source, destination)
    return destination


def append_anomaly_rows(report: Mapping[str, Any],
                        path: PathLike = "ANOMALIES.jsonl") -> int:
    """Append one issue row per anomaly to a local JSONL history.

    Each row is self-contained (metric, numbers, both git SHAs) so the
    history stays greppable after the reports themselves are gone.
    Returns the number of rows appended.
    """
    anomalies = report.get("anomalies")
    if not isinstance(anomalies, list) or not anomalies:
        return 0
    environment = report.get("environment")
    environment = environment if isinstance(environment, Mapping) else {}
    baseline_env = report.get("baseline_environment")
    baseline_env = baseline_env if isinstance(baseline_env, Mapping) else {}
    target = Path(path)
    if target.parent != Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    rows = 0
    with open(target, "a", encoding="utf-8") as stream:
        for anomaly in anomalies:
            row = {"record": "anomaly",
                   "git_sha": environment.get("git_sha"),
                   "baseline_git_sha": baseline_env.get("git_sha")}
            row.update(anomaly)
            stream.write(json.dumps(row, sort_keys=True) + "\n")
            rows += 1
    return rows
