"""Run manifests: every exported number traceable to its exact inputs.

A manifest is a small JSON document written next to a result (a trace
file, a bench row, an EXPERIMENTS.md table) answering "what produced
this?": the full configuration and its digest, the workload and seed, the
package version, the interpreter, and the git commit of the working tree.
Two runs with equal manifests are bit-identical by the determinism
discipline, so the digest doubles as a cache/comparison key.

Deliberately absent: timestamps.  Wall-clock time is banned from the
simulation layer (DET01) and adds nothing here — the git SHA already
orders manifests historically, and omitting time keeps manifests of
repeated runs byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.config import SystemConfig
from repro.errors import ManifestError
from repro.version import __version__

PathLike = Union[str, Path]

MANIFEST_SCHEMA = "mapg.run-manifest/1"


def config_digest(config: SystemConfig) -> str:
    """Stable sha256 over the canonical JSON form of a configuration."""
    canonical = json.dumps(config.to_dict(), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def git_revision(cwd: Optional[PathLike] = None) -> Optional[str]:
    """The current git commit SHA, or None outside a repo / without git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True, text=True, timeout=10, check=False)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def environment_manifest() -> Dict[str, Any]:
    """The run-independent part: package, interpreter, platform, commit."""
    return {
        "package_version": __version__,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "git_sha": git_revision(),
    }


def build_manifest(config: SystemConfig, *, workload: str, seed: int,
                   num_ops: Optional[int] = None,
                   command: Optional[str] = None,
                   extra: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Assemble the full manifest for one simulation run."""
    manifest: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "workload": workload,
        "seed": seed,
        "ops": num_ops,
        "policy": config.gating.policy,
        "technology": config.technology,
        "num_cores": config.num_cores,
        "config_digest": config_digest(config),
        "config": config.to_dict(),
    }
    if command is not None:
        manifest["command"] = command
    manifest.update(environment_manifest())
    if extra:
        manifest.update(dict(extra))
    return manifest


def write_manifest(manifest: Mapping[str, Any], path: PathLike) -> None:
    """Write a manifest as stable, sorted, human-diffable JSON."""
    Path(path).write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")


def read_manifest(path: PathLike) -> Dict[str, Any]:
    """Load a manifest written by :func:`write_manifest`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict):
        raise ManifestError(f"manifest {path} is not a JSON object")
    return data
