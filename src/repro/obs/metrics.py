"""Deterministic metrics primitives: counters, gauges, histograms, registry.

These are *observability* metrics — cheap named instruments the simulator
increments as events happen, collected into machine-readable snapshots
(JSONL, the run manifest, the bench harness).  They are deliberately
simpler than :mod:`repro.stats`: no percentile estimation, no merging —
just monotone counts, last-value gauges, and fixed-bucket histograms that
serialize to plain dicts.

Everything here is deterministic-safe: no instrument ever reads the wall
clock (DET01); "when" is always a caller-supplied cycle count.  The one
process-wide :class:`Registry` (``default_registry()``) exists so that
far-apart components can share instruments without threading a registry
handle through every constructor; tests that need isolation construct
their own ``Registry``.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError


class MetricError(ReproError):
    """Raised on metric misuse (decremented counter, kind collision...)."""


class Counter:
    """A monotonically increasing count of events."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError(
                f"counter {self.name!r} is monotonic; cannot add {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "value": self._value}


class Gauge:
    """A value that can move both ways (queue depth, current cycle...)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def add(self, amount: float) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "value": self._value}


class Histogram:
    """Fixed-bucket histogram with half-open ``[edge[i], edge[i+1])`` buckets.

    Values below the first edge land in the underflow bucket, values at or
    above the last edge in the overflow bucket — the same convention as
    :class:`repro.stats.Histogram`, but without sample retention.
    """

    kind = "histogram"

    def __init__(self, name: str, edges: Sequence[float], help: str = "") -> None:
        if len(edges) < 2:
            raise MetricError(f"histogram {name!r} needs at least two edges")
        ordered = list(edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise MetricError(
                f"histogram {name!r} edges must be strictly increasing")
        self.name = name
        self.help = help
        self._edges: List[float] = ordered
        self._counts: List[int] = [0] * (len(ordered) + 1)
        self._n = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_right(self._edges, value)] += 1
        self._n += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._n

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._n if self._n else 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self._n,
            "sum": self._sum,
            "edges": list(self._edges),
            "buckets": list(self._counts),
        }


class Registry:
    """Named instruments of one observation scope.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, asking with a different
    kind is an error — so two components can safely share a metric by name.

    Get-or-create is thread-safe: the daemon/watcher roadmap items put
    instrument creation on more than one thread, and an unlocked
    get-then-create lets two threads each create-and-register "the"
    instrument — counts then split across two objects and one snapshot
    silently loses the other's increments.  The lock covers only the
    creation path (double-checked: the common all-hits case takes the
    lock once per instrument lifetime); increments stay lock-free, as
    does the NULL_RECORDER fast path, so golden outputs are
    bit-identical.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Any] = {}  # mapglint: guarded-by=self._lock

    def _get_or_create(self, cls: type, name: str, help: str,
                       **kwargs: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = cls(name, help=help, **kwargs)
                    # A freshly created metric always passes the kind
                    # check below, so the raise cannot unwind past this
                    # registration — line order just can't show that.
                    self._metrics[name] = metric  # mapglint: disable=ERR03
        if not isinstance(metric, cls):
            raise MetricError(
                f"metric {name!r} already registered as "
                f"{metric.kind}, not {cls.kind}")  # type: ignore[attr-defined]
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, edges: Sequence[float],
                  help: str = "") -> Histogram:
        metric = self._get_or_create(Histogram, name, help, edges=edges)
        return metric

    def get(self, name: str) -> Optional[Any]:
        """The instrument registered under ``name``, or None."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def collect(self) -> List[Dict[str, Any]]:
        """Snapshot every instrument, sorted by name (deterministic)."""
        return [self._metrics[name].snapshot()
                for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every registered instrument (tests, measured-region resets)."""
        with self._lock:
            self._metrics.clear()


_DEFAULT_REGISTRY = Registry()


def default_registry() -> Registry:
    """The process-wide registry shared by components without a wired one."""
    return _DEFAULT_REGISTRY
