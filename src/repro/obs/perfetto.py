"""Chrome trace-event / Perfetto JSON export of a recorded run.

The output is the classic ``{"traceEvents": [...]}`` JSON that
https://ui.perfetto.dev (and chrome://tracing) opens directly.  Mapping:

* every recorder *track* becomes one named thread (lane) of a single
  "mapg-sim" process, in sorted-name order;
* spans are complete events (``ph: "X"``), instants are ``ph: "i"`` with
  thread scope, counter samples are ``ph: "C"``;
* timestamps are **cycles written into the microsecond field** — the
  trace-event format has no unit metadata, so one trace microsecond equals
  one core cycle.  Durations read off the Perfetto ruler are therefore
  cycle counts, which is exactly what the MAPG argument is about.

The run manifest travels in ``otherData`` so a trace file is
self-describing: config digest, seed, workload, and package version ride
along with the timeline they explain.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.errors import ReproError
from repro.obs.spans import SpanRecorder

PathLike = Union[str, Path]


def artifact_paths(trace_path: PathLike) -> "tuple[Path, Path, Path]":
    """Sibling artifact paths for one ``--trace-out`` target.

    ``run.json`` -> (``run.json``, ``run.manifest.json``,
    ``run.metrics.jsonl``) — the trace, the run manifest, and the JSONL
    metrics snapshot always travel together.
    """
    path = Path(trace_path)
    stem = path.name[:-5] if path.name.endswith(".json") else path.name
    return (path,
            path.with_name(stem + ".manifest.json"),
            path.with_name(stem + ".metrics.jsonl"))


_PROCESS_NAME = "mapg-sim"
_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def to_chrome_trace(recorder: SpanRecorder,
                    manifest: Optional[Mapping[str, Any]] = None
                    ) -> Dict[str, Any]:
    """Convert a recorder's buffer into a Chrome trace-event document."""
    tids = {track: index + 1 for index, track in enumerate(recorder.tracks())}
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0, "ts": 0,
        "args": {"name": _PROCESS_NAME},
    }]
    for track, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid, "ts": 0,
            "args": {"name": track},
        })
        events.append({
            "name": "thread_sort_index", "ph": "M", "pid": 0, "tid": tid,
            "ts": 0, "args": {"sort_index": tid},
        })
    for event in recorder.events():
        tid = tids[event["track"]]
        if event["type"] == "span":
            converted: Dict[str, Any] = {
                "name": event["name"], "ph": "X", "ts": event["start"],
                "dur": event["dur"], "pid": 0, "tid": tid,
                "cat": event["cat"] or "sim",
            }
            if "args" in event:
                converted["args"] = event["args"]
        elif event["type"] == "instant":
            converted = {
                "name": event["name"], "ph": "i", "ts": event["start"],
                "pid": 0, "tid": tid, "s": "t", "cat": "sim",
            }
            if "args" in event:
                converted["args"] = event["args"]
        elif event["type"] == "sample":
            converted = {
                "name": event["name"], "ph": "C", "ts": event["start"],
                "pid": 0, "tid": tid,
                "args": {event["name"]: event["value"]},
            }
        else:
            raise ReproError(f"unknown recorded event type {event['type']!r}")
        events.append(converted)
    other: Dict[str, Any] = {"timeUnit": "cycles"}
    if manifest is not None:
        other["manifest"] = dict(manifest)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": other,
    }


def write_chrome_trace(recorder: SpanRecorder, path: PathLike,
                       manifest: Optional[Mapping[str, Any]] = None) -> int:
    """Write the trace JSON to ``path``; returns the event count."""
    payload = to_chrome_trace(recorder, manifest=manifest)
    Path(path).write_text(json.dumps(payload, sort_keys=True),
                          encoding="utf-8")
    return len(payload["traceEvents"])


def validate_chrome_trace(payload: Mapping[str, Any]) -> List[str]:
    """Schema-check a trace document; returns a list of problems (empty = ok).

    Checks the subset of the trace-event format the viewers actually
    require: the ``traceEvents`` array, the per-event required keys, a
    duration on every complete event, and metadata naming for every tid
    used.  Tests and the CI smoke job call this instead of eyeballing
    Perfetto.
    """
    problems: List[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents must be a non-empty list"]
    named_tids = set()
    for index, event in enumerate(events):
        for key in _REQUIRED_KEYS:
            if key not in event:
                problems.append(f"event {index} missing required key {key!r}")
        ph = event.get("ph")
        if ph == "X" and "dur" not in event:
            problems.append(f"complete event {index} has no dur")
        if ph == "M" and event.get("name") == "thread_name":
            named_tids.add(event.get("tid"))
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append(f"event {index} ts is not numeric")
    used_tids = {event.get("tid") for event in events
                 if event.get("ph") not in ("M",)}
    for tid in sorted(used_tids - named_tids, key=str):
        problems.append(f"tid {tid} is used but never named")
    return problems
