"""Self-profiling of the simulator process — the wall-clock exception.

This module measures the *simulator*, not the simulation: wall time per
run stage, simulated events per wall second, and peak memory.  It is the
**only** module in the tree allowed to touch ``time.perf_counter`` and
``tracemalloc`` — the DET01 determinism rule scopes its wall-clock ban
over ``repro/obs`` but allowlists exactly this file (see
``repro/lint/rules/determinism.py``), because host time can never leak
into simulated time from here: nothing in this module feeds values back
into the model; it only reports.

Usage::

    profiler = SelfProfiler()
    with profiler.stage("simulate") as stage:
        result = simulator.run(ops)
        stage.add_events(result.total_cycles)
    report = profiler.report()   # wall_s, events/sec, peak RSS

``report()`` output lands in run manifests and the bench harness's
``results/<id>.json``, which is what every later performance PR measures
itself against.
"""

from __future__ import annotations

import time
import tracemalloc
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

try:  # POSIX-only; Windows falls back to tracemalloc peaks.
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

PROFILE_SCHEMA = "mapg.self-profile/1"


def peak_rss_bytes() -> Optional[int]:
    """High-water resident set size of this process, in bytes.

    Linux reports ``ru_maxrss`` in KiB, macOS in bytes; both are
    normalized here.  Returns None where ``resource`` is unavailable.
    """
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":  # pragma: no cover - exercised on macOS
        return int(peak)
    return int(peak) * 1024


class StageTimer:
    """One named stage: wall time plus an attributable event count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.events = 0

    def add_events(self, count: int) -> None:
        """Attribute ``count`` simulated events (segments, ops, cycles...)
        to this stage so the report can derive a throughput."""
        self.events += count

    @property
    def events_per_sec(self) -> float:
        if self.wall_s <= 0.0:
            return 0.0
        return self.events / self.wall_s

    def snapshot(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
        }


class SelfProfiler:
    """Wall-time/memory profiler for whole runs, organized into stages.

    ``trace_malloc=True`` additionally records the peak of Python-level
    allocations via ``tracemalloc`` (slower; off by default).  Stages may
    repeat — times of same-named stages accumulate.
    """

    def __init__(self, trace_malloc: bool = False) -> None:
        self._stages: List[StageTimer] = []
        self._by_name: Dict[str, StageTimer] = {}
        self._trace_malloc = trace_malloc
        self._peak_traced: Optional[int] = None

    @contextmanager
    def stage(self, name: str) -> Iterator[StageTimer]:
        """Time one stage; re-entering a name accumulates into it."""
        timer = self._by_name.get(name)
        if timer is None:
            timer = StageTimer(name)
            self._by_name[name] = timer
            self._stages.append(timer)
        started_tracing = False
        if self._trace_malloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            started_tracing = True
        begin = time.perf_counter()
        try:
            yield timer
        finally:
            timer.wall_s += time.perf_counter() - begin
            if started_tracing:
                __, peak = tracemalloc.get_traced_memory()
                tracemalloc.stop()
                best = self._peak_traced or 0
                self._peak_traced = max(best, int(peak))

    @property
    def total_wall_s(self) -> float:
        return sum(stage.wall_s for stage in self._stages)

    def report(self) -> Dict[str, Any]:
        """Everything measured, JSON-ready (manifests, bench results)."""
        return {
            "schema": PROFILE_SCHEMA,
            "total_wall_s": self.total_wall_s,
            "peak_rss_bytes": peak_rss_bytes(),
            "peak_traced_bytes": self._peak_traced,
            "stages": [stage.snapshot() for stage in self._stages],
        }
