"""Structured JSONL run logs.

One record per line, keys sorted, no timestamps — the same determinism
discipline as the rest of the observability layer, so the metrics log of a
seeded run is byte-identical across machines.  The primary producer is the
CLI's ``--trace-out`` flow, which dumps the metric registry's snapshot
next to the Perfetto trace; anything downstream (dashboards, the bench
trajectory) greps or ``json.loads``-es lines without a schema dance.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, Iterable, List, Mapping, Optional, Type, Union

from repro.obs.metrics import Registry

PathLike = Union[str, Path]


class JsonlWriter:
    """Append-only JSON-lines writer; usable as a context manager."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self._stream = open(self.path, "w", encoding="utf-8")
        self._records = 0

    def write(self, record: Mapping[str, Any]) -> None:
        self._stream.write(json.dumps(dict(record), sort_keys=True) + "\n")
        self._records += 1

    @property
    def records_written(self) -> int:
        return self._records

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()


def write_jsonl(records: Iterable[Mapping[str, Any]], path: PathLike) -> int:
    """Write ``records`` to ``path``; returns the line count."""
    with JsonlWriter(path) as writer:
        for record in records:
            writer.write(record)
        return writer.records_written


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Load every record of a JSONL file (skipping blank lines)."""
    records: List[Dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            records.append(json.loads(line))
    return records


def metrics_to_jsonl(registry: Registry, path: PathLike,
                     header: Optional[Mapping[str, Any]] = None) -> int:
    """Dump a registry snapshot as JSONL: optional header line, then one
    ``{"record": "metric", ...}`` line per instrument, sorted by name."""
    with JsonlWriter(path) as writer:
        if header is not None:
            record = {"record": "header"}
            record.update(dict(header))
            writer.write(record)
        for snapshot in registry.collect():
            line = {"record": "metric"}
            line.update(snapshot)
            writer.write(line)
        return writer.records_written
