"""Cycle-timestamped span recording for simulator timelines.

A *span* is a named interval on a named track — "core0 slept cycles
[1200, 1900)" — and a *track* is one horizontal lane in the exported
Perfetto/Chrome trace (one per core, plus gating, DRAM, and controller
lanes).  All timestamps are **simulation cycles**, never wall time, so a
recorded trace is as bit-reproducible as the run that produced it.

The hot-path contract: every instrumentation site guards itself with a
single attribute check —

    if self._obs.enabled:
        self._obs.span(...)

``NULL_RECORDER`` (the default everywhere) has ``enabled = False`` and
no-op methods, so an uninstrumented run pays one attribute load per site
and allocates nothing.  :class:`SpanRecorder` buffers events in memory;
:mod:`repro.obs.perfetto` turns the buffer into a Chrome trace-event JSON
file.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.obs.metrics import Registry


class NullRecorder:
    """Disabled recorder: one attribute check, zero allocation, no-ops.

    Shared as the module-level ``NULL_RECORDER`` singleton; components take
    it as their default so observability costs nothing until a real
    :class:`SpanRecorder` is wired in.
    """

    enabled = False

    def span(self, track: str, name: str, start_cycle: int,
             duration_cycles: int, category: str = "",
             args: Optional[Mapping[str, Any]] = None) -> None:
        """Record nothing."""

    def instant(self, track: str, name: str, cycle: int,
                args: Optional[Mapping[str, Any]] = None) -> None:
        """Record nothing."""

    def sample(self, track: str, name: str, cycle: int, value: float) -> None:
        """Record nothing."""


NULL_RECORDER = NullRecorder()


class SpanRecorder(NullRecorder):
    """In-memory event buffer plus a metrics registry.

    One recorder observes one run (single- or multi-core: the runner hands
    the same recorder to every simulator, and per-core track names keep the
    lanes apart).  Events are plain dicts in recording order; the exporter
    sorts tracks for a stable file layout.
    """

    enabled = True

    def __init__(self, registry: Optional[Registry] = None) -> None:
        self.metrics = registry if registry is not None else Registry()
        self._events: List[Dict[str, Any]] = []

    # -- event sinks -------------------------------------------------------

    def span(self, track: str, name: str, start_cycle: int,
             duration_cycles: int, category: str = "",
             args: Optional[Mapping[str, Any]] = None) -> None:
        """One complete interval: ``duration_cycles`` starting at ``start_cycle``."""
        event: Dict[str, Any] = {
            "type": "span", "track": track, "name": name,
            "start": start_cycle, "dur": duration_cycles, "cat": category,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def instant(self, track: str, name: str, cycle: int,
                args: Optional[Mapping[str, Any]] = None) -> None:
        """A zero-duration marker (a decision, a state transition)."""
        event: Dict[str, Any] = {
            "type": "instant", "track": track, "name": name, "start": cycle,
        }
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def sample(self, track: str, name: str, cycle: int, value: float) -> None:
        """One point of a counter series (rendered as a graph track)."""
        self._events.append({
            "type": "sample", "track": track, "name": name,
            "start": cycle, "value": value,
        })

    # -- inspection --------------------------------------------------------

    def events(self) -> Tuple[Dict[str, Any], ...]:
        """Everything recorded so far, in recording order."""
        return tuple(self._events)

    def tracks(self) -> Tuple[str, ...]:
        """Distinct track names, sorted (the exporter's lane order)."""
        return tuple(sorted({event["track"] for event in self._events}))

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        """Drop buffered events (measured-region resets keep the registry)."""
        self._events.clear()
