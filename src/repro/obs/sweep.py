"""Sweep-scale telemetry: per-cell lifecycle events for ``SweepRunner``.

PR 3 made *single runs* observable; this module does the same for whole
sweeps.  A :class:`SweepRecorder` receives lifecycle callbacks from
:class:`repro.exec.engine.SweepRunner` — queued → cache probe →
hit/miss → dispatched → completed/failed — and turns them into three
artifacts:

* a **JSONL event stream** (schema ``mapg.sweep-events/1``): one line
  per lifecycle event, monotone ``t`` offsets in wall seconds since the
  recorder was built;
* a **sweep manifest** (schema ``mapg.sweep-manifest/1``): the spec-key
  list, the simulation-source digest, per-cell timing/source records,
  failure records from the :class:`~repro.errors.SweepError` path, and
  aggregate counters (hit rate, dedupe count, worker utilization,
  cells/sec, per-engine cell counts with fast-path fallback reasons)
  next to the environment manifest;
* an optional **live progress/ETA line** for TTY runs.

The determinism contract mirrors :mod:`repro.obs.spans`: sweep *results*
are byte-identical with the recorder attached or not, at any ``--jobs``
count — the recorder only observes; nothing it produces may flow back
into a :class:`~repro.sim.results.SimulationResult` (OBS01 enforces
this).  Unlike spans, sweep telemetry is *about the host* (how long did
cells take, which worker ran them), so this module — like
:mod:`repro.obs.profile` — is on the DET01 wall-clock allowlist; its
event streams are intentionally not bit-reproducible, only its sweep
results are.

The disabled default is :data:`NULL_SWEEP_RECORDER`: ``enabled = False``
plus no-op methods, so an unobserved sweep pays one attribute check per
instrumentation site and allocates nothing.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple, Union

from repro.obs.manifest import environment_manifest
from repro.obs.runlog import JsonlWriter

PathLike = Union[str, Path]

SWEEP_EVENTS_SCHEMA = "mapg.sweep-events/1"
SWEEP_MANIFEST_SCHEMA = "mapg.sweep-manifest/1"

#: Every event type the recorder can emit, with the keys each must carry
#: (beyond the common ``event`` and ``t``).  The validator below checks
#: streams against this table — the same pattern as
#: :func:`repro.obs.perfetto.validate_chrome_trace`.
EVENT_REQUIRED_KEYS: Dict[str, Tuple[str, ...]] = {
    "sweep_begin": ("cells", "unique", "jobs", "simulation_version",
                    "cache"),
    "cell_queued": ("key", "profile", "policy", "seed", "num_ops"),
    "cache_hit": ("key",),
    "cache_miss": ("key",),
    "dispatch": ("cells", "workers", "mode"),
    "cell_start": ("key",),
    "cell_done": ("key", "wall_s", "worker"),
    "cell_failed": ("key", "error", "worker"),
    "sweep_end": ("wall_s", "executed", "hits", "failed", "cells_per_sec"),
}
# ``cell_queued`` and ``cell_done`` additionally carry ``engine`` (and
# ``cell_done`` a ``fallback_reasons`` list) when the runner reports
# them.  Deliberately *not* required keys: streams recorded before the
# engine telemetry existed must keep validating.


def _engine_bucket(engine: Optional[str],
                   fallback_reasons: Sequence[str]) -> str:
    """Which ``counters.engines`` bucket one executed cell lands in.

    A fast-engine cell the kernel refused (non-empty fallback reasons)
    ran bit-identically through oracle delegation; it is counted as
    ``fast_fallback`` so the manifest shows how much of the grid
    actually took the fast path.  Shared by the recorder and the
    manifest validator so the two can never disagree on classification.
    """
    if engine == "fast":
        return "fast_fallback" if fallback_reasons else "fast"
    return "oracle"

#: Event types that reference a cell and therefore require the key to
#: have been announced by a prior ``cell_queued``.
_KEYED_EVENTS = frozenset({"cache_hit", "cache_miss", "cell_start",
                           "cell_done", "cell_failed"})


class NullSweepRecorder:
    """Disabled sweep recorder: one attribute check, no-ops, no state.

    Shared as the module-level :data:`NULL_SWEEP_RECORDER` singleton;
    :class:`~repro.exec.engine.SweepRunner` takes it as the default so
    sweep telemetry costs nothing until a real :class:`SweepRecorder`
    is wired in.
    """

    enabled = False

    def sweep_begin(self, cells: int, unique: int, jobs: int,
                    simulation_version: str, cache_attached: bool) -> None:
        """Record nothing."""

    def cell_queued(self, key: str, profile: str, policy: str, seed: int,
                    num_ops: int, engine: str = "oracle") -> None:
        """Record nothing."""

    def cell_cache_hit(self, key: str) -> None:
        """Record nothing."""

    def cell_cache_miss(self, key: str) -> None:
        """Record nothing."""

    def dispatch(self, cells: int, workers: int, mode: str) -> None:
        """Record nothing."""

    def cell_start(self, key: str) -> None:
        """Record nothing."""

    def cell_done(self, key: str, worker: int = 0,
                  engine: Optional[str] = None,
                  fallback_reasons: Sequence[str] = ()) -> None:
        """Record nothing."""

    def cell_failed(self, key: str, error: str, worker: int = 0) -> None:
        """Record nothing."""

    def sweep_end(self) -> None:
        """Record nothing."""


NULL_SWEEP_RECORDER = NullSweepRecorder()


class SweepRecorder(NullSweepRecorder):
    """In-memory buffer of sweep lifecycle events plus aggregates.

    One recorder observes one or more sequential ``SweepRunner.run``
    calls (counters accumulate; each run contributes one
    ``sweep_begin``/``sweep_end`` pair to the event stream).  All
    timestamps are wall-clock offsets since construction — this is host
    telemetry, deliberately outside the cycle domain.

    Per-cell ``wall_s`` semantics: on the serial path it is the exact
    cell execution time (``cell_start`` → ``cell_done``); on the pool
    path it is the completion offset since the batch dispatch — an upper
    bound, since workers pipeline cells.  Cache hits carry no ``wall_s``.

    ``progress`` may be a TTY stream (``sys.stderr``); a live
    ``done/total | hit/run/fail | cells/s | ETA`` line is rewritten in
    place as cells finish and finalized with a newline at ``sweep_end``.
    Non-TTY streams are ignored, so piping a sweep stays clean.
    """

    enabled = True

    def __init__(self, progress: Optional[TextIO] = None) -> None:
        self._t0 = time.perf_counter()
        self._events: List[Dict[str, Any]] = []
        self._cells: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        is_tty = getattr(progress, "isatty", None)
        self._progress = progress if (progress is not None and is_tty
                                      and is_tty()) else None
        self._progress_width = 0
        self.submitted = 0
        self.hits = 0
        self.misses = 0
        self.completed = 0
        self.failed = 0
        self.jobs = 1
        self.cache_attached = False
        self.simulation_version = ""
        self._wall_s = 0.0
        self._begin_t: Optional[float] = None
        self._dispatch_t: Optional[float] = None
        self._start_t: Dict[str, float] = {}
        self._engine_counts: Dict[str, int] = {
            "oracle": 0, "fast": 0, "fast_fallback": 0}
        self._fallback_reasons: Dict[str, int] = {}

    # -- internals ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _emit(self, event: str, **fields: Any) -> float:
        now = self._now()
        record: Dict[str, Any] = {"event": event, "t": round(now, 6)}
        record.update(fields)
        self._events.append(record)
        return now

    # -- lifecycle sinks (called by SweepRunner) ---------------------------

    def sweep_begin(self, cells: int, unique: int, jobs: int,
                    simulation_version: str, cache_attached: bool) -> None:
        """One ``run()`` call starts: ``cells`` specs, ``unique`` distinct."""
        self.submitted += cells
        self.jobs = jobs
        self.cache_attached = cache_attached
        self.simulation_version = simulation_version
        self._begin_t = self._emit(
            "sweep_begin", cells=cells, unique=unique, jobs=jobs,
            simulation_version=simulation_version, cache=cache_attached)

    def cell_queued(self, key: str, profile: str, policy: str, seed: int,
                    num_ops: int, engine: str = "oracle") -> None:
        """Announce one distinct cell of the sweep (first-seen order).

        ``engine`` is the engine the spec *requests*; whether a fast
        cell actually took the fast path is only known at
        :meth:`cell_done`, which overwrites the record with the
        telemetry-reported engine and fallback reasons.
        """
        self._emit("cell_queued", key=key, profile=profile, policy=policy,
                   seed=seed, num_ops=num_ops, engine=engine)
        if key not in self._cells:
            self._cells[key] = {
                "profile": profile, "policy": policy, "seed": seed,
                "num_ops": num_ops, "source": "queued",
                "worker": None, "wall_s": None,
                "engine": engine, "fallback_reasons": None,
            }

    def cell_cache_hit(self, key: str) -> None:
        """The cache probe found this cell; it will not execute."""
        self.hits += 1
        self._emit("cache_hit", key=key)
        record = self._cells.get(key)
        if record is not None:
            record["source"] = "cache"
        self._render_progress()

    def cell_cache_miss(self, key: str) -> None:
        """The cache probe missed; the cell joins the execution batch."""
        self.misses += 1
        self._emit("cache_miss", key=key)

    def dispatch(self, cells: int, workers: int, mode: str) -> None:
        """The miss batch is handed to the serial loop or the pool."""
        self._dispatch_t = self._emit("dispatch", cells=cells,
                                      workers=workers, mode=mode)

    def cell_start(self, key: str) -> None:
        """Serial path only: this cell starts executing right now."""
        self._start_t[key] = self._emit("cell_start", key=key)

    def cell_done(self, key: str, worker: int = 0,
                  engine: Optional[str] = None,
                  fallback_reasons: Sequence[str] = ()) -> None:
        """One cell finished; ``worker`` is 0 on the serial path.

        ``engine``/``fallback_reasons`` come from
        :meth:`~repro.exec.jobspec.JobSpec.execute_with_telemetry`; a
        caller without telemetry (``engine=None``) falls back to the
        engine announced at :meth:`cell_queued`.
        """
        now = self._now()
        wall = self._cell_wall(key, now)
        self.completed += 1
        record = self._cells.get(key)
        if engine is None:
            engine = record["engine"] if record is not None else "oracle"
        reasons = list(fallback_reasons)
        bucket = _engine_bucket(engine, reasons)
        self._engine_counts[bucket] = self._engine_counts.get(bucket, 0) + 1
        for reason in reasons:
            self._fallback_reasons[reason] = \
                self._fallback_reasons.get(reason, 0) + 1
        self._emit("cell_done", key=key, wall_s=round(wall, 6),
                   worker=worker, engine=engine, fallback_reasons=reasons)
        if record is not None:
            record.update(source="executed", worker=worker,
                          wall_s=round(wall, 6), engine=engine,
                          fallback_reasons=reasons)
        self._render_progress()

    def cell_failed(self, key: str, error: str, worker: int = 0) -> None:
        """One cell raised; the failure record feeds the sweep manifest."""
        now = self._now()
        wall = self._cell_wall(key, now)
        self.failed += 1
        self._emit("cell_failed", key=key, error=error, worker=worker)
        record = self._cells.get(key)
        if record is not None:
            record.update(source="failed", worker=worker,
                          wall_s=round(wall, 6), error=error)
        self._render_progress()

    def sweep_end(self) -> None:
        """The ``run()`` call is over (reached even on the failure path)."""
        now = self._now()
        if self._begin_t is not None:
            self._wall_s += now - self._begin_t
            self._begin_t = None
        counters = self.summary()
        self._emit("sweep_end", wall_s=counters["wall_s"],
                   executed=self.completed, hits=self.hits,
                   failed=self.failed,
                   cells_per_sec=counters["cells_per_sec"])
        self._finish_progress()

    def _cell_wall(self, key: str, now: float) -> float:
        started = self._start_t.pop(key, None)
        if started is not None:
            return now - started
        if self._dispatch_t is not None:
            return now - self._dispatch_t
        return 0.0

    # -- progress ----------------------------------------------------------

    def _render_progress(self) -> None:
        if self._progress is None:
            return
        done = self.hits + self.completed + self.failed
        total = len(self._cells)
        origin = self._begin_t if self._begin_t is not None else 0.0
        elapsed = max(self._now() - origin, 1e-9)
        rate = done / elapsed
        remaining = max(total - done, 0)
        eta = remaining / rate if rate > 0 else 0.0
        line = (f"\rsweep {done}/{total} cells | {self.hits} hit "
                f"{self.completed} run {self.failed} fail | "
                f"{rate:.1f} cells/s | ETA {eta:.1f}s")
        self._progress_width = max(self._progress_width, len(line))
        self._progress.write(line.ljust(self._progress_width))
        self._progress.flush()

    def _finish_progress(self) -> None:
        if self._progress is None:
            return
        self._render_progress()
        self._progress.write("\n")
        self._progress.flush()

    # -- inspection / artifacts --------------------------------------------

    def events(self) -> Tuple[Dict[str, Any], ...]:
        """Every recorded event, in recording order."""
        return tuple(self._events)

    def summary(self) -> Dict[str, Any]:
        """Aggregate counters over everything recorded so far."""
        unique = len(self._cells)
        processed = self.hits + self.completed + self.failed
        per_worker: Dict[str, int] = {}
        for record in self._cells.values():
            if record["source"] in ("executed", "failed") and \
                    record["worker"] is not None:
                slot = str(record["worker"])
                per_worker[slot] = per_worker.get(slot, 0) + 1
        utilization = None
        if per_worker:
            counts = sorted(per_worker.values())
            utilization = round(
                (sum(counts) / len(counts)) / counts[-1], 6)
        wall = self._wall_s
        if self._begin_t is not None:  # mid-sweep snapshot (progress line)
            wall += self._now() - self._begin_t
        return {
            "submitted": self.submitted,
            "unique_cells": unique,
            "dedupe": self.submitted - unique,
            "hits": self.hits,
            "misses": self.misses,
            "executed": self.completed,
            "failed": self.failed,
            "hit_rate": round(self.hits / unique, 6) if unique else 0.0,
            "wall_s": round(wall, 6),
            "cells_per_sec": (round(processed / wall, 6)
                              if wall > 0 else 0.0),
            "jobs": self.jobs,
            "per_worker": per_worker,
            "worker_utilization": utilization,
            "engines": dict(self._engine_counts),
            "fallback_reasons": dict(sorted(
                self._fallback_reasons.items())),
        }

    def manifest(self) -> Dict[str, Any]:
        """The sweep-level manifest: spec keys, per-cell records, counters."""
        failures = {key: record["error"]
                    for key, record in self._cells.items()
                    if record["source"] == "failed"}
        return {
            "schema": SWEEP_MANIFEST_SCHEMA,
            "simulation_version": self.simulation_version,
            "cache_attached": self.cache_attached,
            "jobs": self.jobs,
            "spec_keys": list(self._cells),
            "counters": self.summary(),
            "cells": {key: dict(record)
                      for key, record in self._cells.items()},
            "failures": failures,
            "environment": environment_manifest(),
        }


# ---- artifacts --------------------------------------------------------------


def sweep_artifact_paths(manifest_path: PathLike) -> Tuple[Path, Path]:
    """Sibling artifact paths for one ``--telemetry-out`` target.

    ``sweep.json`` -> (``sweep.json``, ``sweep.events.jsonl``) — the
    manifest and the JSONL event stream always travel together, the same
    convention as :func:`repro.obs.perfetto.artifact_paths`.
    """
    path = Path(manifest_path)
    stem = path.name[:-5] if path.name.endswith(".json") else path.name
    return path, path.with_name(stem + ".events.jsonl")


def write_sweep_artifacts(recorder: SweepRecorder,
                          manifest_path: PathLike) -> Tuple[Path, Path]:
    """Write the manifest + event stream next to ``manifest_path``.

    Returns ``(manifest_path, events_path)``.  The events file carries a
    schema header line so a consumer can sniff it without the manifest.
    """
    manifest_file, events_file = sweep_artifact_paths(manifest_path)
    manifest_file.parent.mkdir(parents=True, exist_ok=True)
    manifest_file.write_text(
        json.dumps(recorder.manifest(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    with JsonlWriter(events_file) as writer:
        writer.write({"record": "header", "schema": SWEEP_EVENTS_SCHEMA,
                      "simulation_version": recorder.simulation_version})
        for event in recorder.events():
            writer.write(event)
    return manifest_file, events_file


# ---- validators -------------------------------------------------------------


def validate_sweep_events(records: Sequence[Mapping[str, Any]]
                          ) -> List[str]:
    """Schema-check an event stream; returns problems (empty = ok).

    Accepts the in-memory ``recorder.events()`` tuple or the parsed
    JSONL file (whose leading header line is recognized and skipped).
    Checks: known event types, per-type required keys, numeric monotone
    ``t``, a leading ``sweep_begin``, a trailing ``sweep_end``, and that
    every keyed event names a previously queued cell.
    """
    problems: List[str] = []
    events = list(records)
    if events and events[0].get("record") == "header":
        if events[0].get("schema") != SWEEP_EVENTS_SCHEMA:
            problems.append(
                f"header schema {events[0].get('schema')!r} != "
                f"{SWEEP_EVENTS_SCHEMA!r}")
        events = events[1:]
    if not events:
        return ["event stream is empty"]
    if events[0].get("event") != "sweep_begin":
        problems.append("first event must be sweep_begin")
    if events[-1].get("event") != "sweep_end":
        problems.append("last event must be sweep_end")
    queued = set()
    last_t = None
    for index, event in enumerate(events):
        kind = event.get("event")
        if kind not in EVENT_REQUIRED_KEYS:
            problems.append(f"event {index} has unknown type {kind!r}")
            continue
        for key in EVENT_REQUIRED_KEYS[kind]:
            if key not in event:
                problems.append(
                    f"event {index} ({kind}) missing required key {key!r}")
        t = event.get("t")
        if not isinstance(t, (int, float)) or isinstance(t, bool) or t < 0:
            problems.append(f"event {index} ({kind}) t is not a "
                            f"non-negative number")
        elif last_t is not None and t < last_t:
            problems.append(f"event {index} ({kind}) t={t} goes backwards "
                            f"(previous {last_t})")
        else:
            last_t = t
        if kind == "cell_queued":
            queued.add(event.get("key"))
        elif kind in _KEYED_EVENTS and event.get("key") not in queued:
            problems.append(f"event {index} ({kind}) references key "
                            f"{event.get('key')!r} never announced by "
                            f"cell_queued")
    return problems


def validate_sweep_manifest(manifest: Mapping[str, Any]) -> List[str]:
    """Schema-check a sweep manifest; returns problems (empty = ok).

    Beyond key presence, the counters must *reconcile*: every unique
    cell is accounted for exactly once as a hit, an executed cell, or a
    failure, and the failure records agree with the per-cell sources.
    """
    problems: List[str] = []
    if manifest.get("schema") != SWEEP_MANIFEST_SCHEMA:
        return [f"schema {manifest.get('schema')!r} != "
                f"{SWEEP_MANIFEST_SCHEMA!r}"]
    for key in ("simulation_version", "cache_attached", "jobs", "spec_keys",
                "counters", "cells", "failures", "environment"):
        if key not in manifest:
            problems.append(f"manifest missing key {key!r}")
    spec_keys = manifest.get("spec_keys")
    cells = manifest.get("cells")
    counters = manifest.get("counters")
    failures = manifest.get("failures")
    if not isinstance(spec_keys, list) or not isinstance(cells, Mapping) \
            or not isinstance(counters, Mapping) \
            or not isinstance(failures, Mapping):
        problems.append("spec_keys/cells/counters/failures have wrong types")
        return problems
    if sorted(spec_keys) != sorted(cells):
        problems.append("cells dict does not cover spec_keys exactly")
    unique = counters.get("unique_cells")
    if unique != len(spec_keys):
        problems.append(f"counters.unique_cells {unique!r} != "
                        f"{len(spec_keys)} spec keys")
    hits = counters.get("hits", 0)
    executed = counters.get("executed", 0)
    failed = counters.get("failed", 0)
    if isinstance(unique, int) and hits + executed + failed != unique:
        problems.append(
            f"counters do not reconcile: hits {hits} + executed {executed} "
            f"+ failed {failed} != unique_cells {unique}")
    failed_cells = {key for key, record in cells.items()
                    if isinstance(record, Mapping)
                    and record.get("source") == "failed"}
    if failed_cells != set(failures):
        problems.append("failure records disagree with per-cell sources")
    if len(failed_cells) != failed:
        problems.append(f"counters.failed {failed} != "
                        f"{len(failed_cells)} failed cell records")
    problems.extend(_validate_engine_counters(counters, cells, executed))
    return problems


def _validate_engine_counters(counters: Mapping[str, Any],
                              cells: Mapping[str, Any],
                              executed: Any) -> List[str]:
    """Reconcile ``counters.engines``/``fallback_reasons`` with the cells.

    Only runs when the manifest carries an ``engines`` counter —
    manifests recorded before the engine telemetry existed validate
    unchanged.  Checks: the engine buckets sum to ``executed``, every
    executed cell's recorded engine/fallback classification agrees with
    the bucket counts, and the per-reason counters match the per-cell
    ``fallback_reasons`` lists exactly.
    """
    engines = counters.get("engines")
    if engines is None:
        return []
    if not isinstance(engines, Mapping):
        return ["counters.engines is not a mapping"]
    problems: List[str] = []
    total = sum(value for value in engines.values()
                if isinstance(value, int) and not isinstance(value, bool))
    if total != executed:
        problems.append(f"counters.engines sum {total} != "
                        f"executed {executed}")
    recomputed: Dict[str, int] = {}
    recomputed_reasons: Dict[str, int] = {}
    for record in cells.values():
        if not isinstance(record, Mapping) \
                or record.get("source") != "executed":
            continue
        reasons = record.get("fallback_reasons") or []
        bucket = _engine_bucket(record.get("engine"), reasons)
        recomputed[bucket] = recomputed.get(bucket, 0) + 1
        for reason in reasons:
            recomputed_reasons[reason] = \
                recomputed_reasons.get(reason, 0) + 1
    declared = {key: value for key, value in engines.items() if value}
    if declared != recomputed:
        problems.append(
            f"per-cell engine records {recomputed!r} disagree with "
            f"counters.engines {declared!r}")
    declared_reasons = counters.get("fallback_reasons")
    if isinstance(declared_reasons, Mapping) \
            and dict(declared_reasons) != recomputed_reasons:
        problems.append(
            f"per-cell fallback_reasons {recomputed_reasons!r} disagree "
            f"with counters.fallback_reasons {dict(declared_reasons)!r}")
    return problems
