"""Power substrate: technology nodes, core power model, PG circuit model."""

from repro.power.gating import GatingCircuit, SleepTransistorNetwork
from repro.power.model import CorePowerModel, PowerState
from repro.power.technology import TECHNOLOGY_NODES, TechnologyNode, get_technology
from repro.power.temperature import leakage_scale_factor

__all__ = [
    "GatingCircuit",
    "SleepTransistorNetwork",
    "CorePowerModel",
    "PowerState",
    "TECHNOLOGY_NODES",
    "TechnologyNode",
    "get_technology",
    "leakage_scale_factor",
]
