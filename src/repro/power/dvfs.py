"""Memory-aware DVFS: the classic alternative to memory-access gating.

When a program is memory-bound, lowering the core's frequency barely hurts
wall-clock time (memory wall-clock is frequency-independent) while cutting
dynamic power roughly as V^2 * f.  DVFS and MAPG attack *different* energy
components — dynamic vs leakage — over the same memory-bound phases, so a
DATE-style evaluation compares them head-to-head and combined (F17).

This module evaluates DVFS *analytically on top of a simulated run*: the
run's per-state cycle ledger says how much wall-clock was compute vs
memory, and the transform below rescales each component.  That avoids
re-simulating at every frequency while staying exact for the first-order
model used:

* compute time stretches by ``1/r`` (r = f/f0);
* memory stall / sleep / wake wall-clock time is unchanged;
* voltage tracks frequency linearly between Vmin and nominal:
  ``V(r) = Vdd * (v_floor + (1 - v_floor) * r)``;
* dynamic and clock power scale as ``(V/Vdd)^2 * r``;
* leakage scales as ``(V/Vdd)`` (first-order DIBL-free approximation);
* gating-event energies scale as ``(V/Vdd)^2`` (charge * voltage);
* background (uncore) power is on its own rail: unscaled, billed over the
  (longer) total time — the honest cost of slowing down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.power.model import CorePowerModel, PowerState
from repro.sim.results import SimulationResult

# States whose wall-clock duration is set by the memory system, not the core
# clock: they neither stretch nor shrink under DVFS.
_MEMORY_TIME_STATES = ("stall", "sleep", "sleep_retention", "wake",
                       "token_wait", "drain")


@dataclass(frozen=True)
class DvfsPoint:
    """Energy/time of one run re-evaluated at relative frequency ``r``."""

    relative_frequency: float
    relative_voltage: float
    time_s: float
    energy_j: float

    def edp(self) -> float:
        return self.energy_j * self.time_s


class DvfsModel:
    """Re-evaluates a simulated run at a different core frequency."""

    def __init__(self, power_model: CorePowerModel,
                 voltage_floor: float = 0.6) -> None:
        if not 0.0 < voltage_floor <= 1.0:
            raise ConfigError(
                f"voltage_floor must be in (0, 1], got {voltage_floor}")
        self.power_model = power_model
        self.voltage_floor = voltage_floor

    def relative_voltage(self, relative_frequency: float) -> float:
        """V(r)/Vdd along the linear frequency-voltage curve."""
        if not 0.0 < relative_frequency <= 1.0:
            raise ConfigError(
                f"relative frequency must be in (0, 1], got {relative_frequency}")
        return self.voltage_floor + (1.0 - self.voltage_floor) * relative_frequency

    def evaluate(self, result: SimulationResult,
                 relative_frequency: float) -> DvfsPoint:
        """Time and energy of ``result``'s run at frequency ``r * f0``.

        ``result`` may come from any gating policy: its per-state ledger is
        rescaled state by state, so "MAPG + DVFS" is just evaluating a MAPG
        run at r < 1.
        """
        r = relative_frequency
        v = self.relative_voltage(r)
        f0 = self.power_model.circuit.frequency_hz
        tech = self.power_model.tech
        leak_scale = self.power_model.leakage_power_w / tech.core_leakage_power_w

        total_time_s = 0.0
        energy_j = 0.0
        for state_name, cycles in result.state_cycles.items():
            base_time = cycles / f0
            if state_name in _MEMORY_TIME_STATES:
                time_s = base_time  # wall clock fixed by the memory system
            else:
                time_s = base_time / r  # compute stretches
            total_time_s += time_s
            energy_j += self._state_power_w(state_name, r, v, leak_scale) * time_s

        # Gating events: charge-dominated, scale as V^2.
        energy_j += result.event_energy_j * v * v
        # Uncore rail: unscaled power over the stretched runtime.
        energy_j += self.power_model.background_power_w * total_time_s
        return DvfsPoint(relative_frequency=r, relative_voltage=v,
                         time_s=total_time_s, energy_j=energy_j)

    def _state_power_w(self, state_name: str, r: float, v: float,
                       leak_scale: float) -> float:
        """Power of one activity state at the scaled operating point."""
        tech = self.power_model.tech
        leakage = tech.core_leakage_power_w * leak_scale * v
        dynamic_scale = v * v * r
        if state_name == "active":
            return (tech.core_dynamic_power_w + tech.clock_tree_power_w) \
                * dynamic_scale + leakage
        if state_name in ("stall", "token_wait"):
            return tech.clock_tree_power_w * 0.10 * dynamic_scale + leakage
        if state_name == "drain":
            return tech.clock_tree_power_w * dynamic_scale + leakage
        if state_name == "wake":
            return leakage
        if state_name == "sleep":
            return self.power_model.circuit.sleep_residual_power_w * v
        if state_name == "sleep_retention":
            return self.power_model.circuit.retention_sleep_power_w * v
        raise ConfigError(f"unknown state {state_name!r} in DVFS evaluation")


def sweep(model: DvfsModel, result: SimulationResult,
          frequencies: "list[float]") -> "list[DvfsPoint]":
    """Evaluate a run across a list of relative frequencies."""
    return [model.evaluate(result, r) for r in frequencies]
