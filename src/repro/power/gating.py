"""First-order sleep-transistor (header) network model.

This module replaces the SPICE characterization a circuits paper would use
(the substitution is recorded in DESIGN.md).  It derives, from a
:class:`~repro.power.technology.TechnologyNode`:

* **Switch sizing** — total header width from the active IR-drop budget:
  the full-on network must carry the core's peak current with at most
  ``max_ir_drop_fraction * Vdd`` across it.
* **Wakeup latency** — the virtual rail carries ``domain_capacitance_f`` of
  charge; grid-noise rules cap the recharge (rush) current, so wake time is
  bounded below by ``C * Vdd / I_rush_max`` plus an RC settling tail.
  Staggering the header into groups is how hardware enforces that cap; the
  model exposes the required group count.
* **Per-event overhead energy** — driving the header gate off+on
  (``C_gate * Vdd^2``) plus recharging whatever rail charge leaked away
  during the sleep.  Rail decay is exponential with time constant
  ``tau = C * Vdd / I_leak``: short sleeps decay (and cost) little, which is
  exactly why the break-even time exists.
* **Break-even time (BET)** — the sleep duration at which leakage energy
  saved equals overhead energy spent, solved by bisection on the decay
  model.

All durations are reported both in seconds and in core cycles at the
frequency supplied to :func:`SleepTransistorNetwork.characterize`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import CircuitModelError
from repro.power.technology import TechnologyNode
from repro.units import cycles_to_seconds as _cycles_to_seconds
from repro.units import seconds_to_cycles_ceil


class SleepTransistorNetwork:
    """Analytic model of a header-switch network for one gated core domain.

    ``temperature_c`` scales the domain leakage (doubling every ~25 C),
    which moves everything leakage-driven: the rail-decay time constant,
    the recoverable energy, and therefore the break-even time.  A BET
    characterized on hot silicon is dangerously optimistic on cool silicon —
    passing the operating temperature here keeps the controller's decisions
    honest across the thermal range (the F10 experiment).
    """

    # Settling multiplier: rail is "up" after this many RC time constants.
    _SETTLE_TAUS = 3.0
    # Retention mode: a clamp holds the virtual rail at this fraction of
    # Vdd, preserving state while cutting leakage superlinearly (the
    # quadratic DIBL-flavoured approximation below).  Waking from retention
    # recharges only (1 - fraction) * Vdd of rail swing, so it is several
    # times faster and cheaper than waking from a full collapse.
    RETENTION_VDD_FRACTION = 0.45

    def __init__(self, tech: TechnologyNode,
                 temperature_c: float = None) -> None:
        from repro.power.temperature import NOMINAL_TEMPERATURE_C, leakage_scale_factor
        self.tech = tech
        if temperature_c is None:
            temperature_c = NOMINAL_TEMPERATURE_C
        self.temperature_c = temperature_c
        self._leakage_power_w = (
            tech.core_leakage_power_w * leakage_scale_factor(temperature_c))

    @property
    def domain_leakage_power_w(self) -> float:
        """Temperature-scaled leakage of the gated domain."""
        return self._leakage_power_w

    # ---- sizing --------------------------------------------------------------

    @property
    def switch_width_um(self) -> float:
        """Total header gate width meeting the active IR-drop budget."""
        tech = self.tech
        drop_v = tech.max_ir_drop_fraction * tech.vdd_v
        return tech.core_peak_current_a * tech.sleep_tx_resistance_ohm_um / drop_v

    @property
    def ron_total_ohm(self) -> float:
        """On-resistance of the fully-enabled network."""
        return self.tech.sleep_tx_resistance_ohm_um / self.switch_width_um

    @property
    def sleep_residual_power_w(self) -> float:
        """Leakage through the OFF header network (not saved by gating)."""
        return self.switch_width_um * self.tech.sleep_tx_leakage_w_per_um

    @property
    def switch_gate_capacitance_f(self) -> float:
        return self.switch_width_um * self.tech.sleep_tx_gate_cap_f_per_um

    @property
    def switch_event_energy_j(self) -> float:
        """Gate-drive energy for one full off+on header cycle."""
        return self.switch_gate_capacitance_f * self.tech.vdd_v ** 2

    # ---- rail decay ------------------------------------------------------------

    @property
    def decay_tau_s(self) -> float:
        """Virtual-rail decay time constant under domain leakage."""
        tech = self.tech
        leak_current_a = self._leakage_power_w / tech.vdd_v
        return tech.domain_capacitance_f * tech.vdd_v / leak_current_a

    def rail_droop_v(self, sleep_s: float) -> float:
        """Voltage lost from the virtual rail after ``sleep_s`` asleep."""
        if sleep_s < 0.0:
            raise CircuitModelError(f"sleep duration must be >= 0, got {sleep_s}")
        return self.tech.vdd_v * (1.0 - math.exp(-sleep_s / self.decay_tau_s))

    def rush_charge_energy_j(self, sleep_s: float) -> float:
        """Supply energy to recharge the rail after ``sleep_s`` asleep."""
        return self.tech.domain_capacitance_f * self.rail_droop_v(sleep_s) * self.tech.vdd_v

    def overhead_energy_j(self, sleep_s: float) -> float:
        """Total per-event energy overhead of gating for ``sleep_s``."""
        residual = self.sleep_residual_power_w * sleep_s
        return self.switch_event_energy_j + self.rush_charge_energy_j(sleep_s) + residual

    def net_saving_j(self, sleep_s: float) -> float:
        """Leakage energy saved minus overhead for one sleep of ``sleep_s``."""
        return self._leakage_power_w * sleep_s - self.overhead_energy_j(sleep_s)

    # ---- wakeup ---------------------------------------------------------------

    def min_stagger_groups(self) -> int:
        """Fewest header groups keeping worst-case rush under the ceiling.

        Worst case: the rail is fully decayed and the first group turns on,
        driving ``Vdd / (n * Ron_total)`` through it.
        """
        tech = self.tech
        groups = tech.vdd_v / (tech.max_rush_current_a * self.ron_total_ohm)
        return max(1, int(math.ceil(groups - 1e-9)))

    def rush_peak_current_a(self, groups: int) -> float:
        """Worst-case instantaneous rush current with ``groups`` stagger groups."""
        if groups < 1:
            raise CircuitModelError(f"stagger groups must be >= 1, got {groups}")
        return self.tech.vdd_v / (groups * self.ron_total_ohm)

    def wake_latency_s(self, groups: int = 0) -> float:
        """Time to recharge and settle the rail from full decay.

        The charge-delivery bound ``C*Vdd/I_max`` dominates; the RC settle of
        the fully-on network adds a short tail.  ``groups=0`` uses the
        minimum legal stagger.  More groups than the minimum slow the wake
        proportionally (each group is narrower, so the current ceiling is
        under-used) — this is the F9 trade-off curve.
        """
        tech = self.tech
        min_groups = self.min_stagger_groups()
        if groups == 0:
            groups = min_groups
        if groups < min_groups:
            raise CircuitModelError(
                f"{groups} stagger groups exceed the rush-current ceiling "
                f"(need >= {min_groups})")
        delivery_current = self.rush_peak_current_a(groups)
        charge_time = tech.domain_capacitance_f * tech.vdd_v / delivery_current
        settle_time = self._SETTLE_TAUS * self.ron_total_ohm * tech.domain_capacitance_f
        return charge_time + settle_time

    # ---- retention mode ---------------------------------------------------------

    @property
    def retention_voltage_v(self) -> float:
        return self.tech.vdd_v * self.RETENTION_VDD_FRACTION

    @property
    def retention_leakage_w(self) -> float:
        """Domain leakage with the rail clamped at the retention voltage.

        Subthreshold leakage falls superlinearly with the rail voltage
        (DIBL + stacking); a quadratic is the standard first-order shape.
        """
        return self._leakage_power_w * self.RETENTION_VDD_FRACTION ** 2

    @property
    def retention_sleep_power_w(self) -> float:
        """Continuous draw while in retention: clamp current + header residual."""
        return self.retention_leakage_w + self.sleep_residual_power_w

    def retention_droop_v(self, sleep_s: float) -> float:
        """Rail droop in retention: free decay, clamped at Vdd - Vret."""
        ceiling = self.tech.vdd_v - self.retention_voltage_v
        return min(self.rail_droop_v(sleep_s), ceiling)

    def retention_rush_energy_j(self, sleep_s: float) -> float:
        """Supply energy to recharge the (clamped) rail after retention."""
        return (self.tech.domain_capacitance_f
                * self.retention_droop_v(sleep_s) * self.tech.vdd_v)

    def retention_overhead_energy_j(self, sleep_s: float) -> float:
        """Per-event overhead of one retention sleep of ``sleep_s``."""
        continuous = self.retention_sleep_power_w * sleep_s
        return (self.switch_event_energy_j
                + self.retention_rush_energy_j(sleep_s) + continuous)

    def retention_net_saving_j(self, sleep_s: float) -> float:
        """Leakage saved minus overhead for one retention sleep."""
        return (self._leakage_power_w * sleep_s
                - self.retention_overhead_energy_j(sleep_s))

    def retention_wake_latency_s(self) -> float:
        """Recharge (Vdd - Vret) of rail swing at the rush-current ceiling."""
        tech = self.tech
        swing = tech.vdd_v - self.retention_voltage_v
        charge_time = tech.domain_capacitance_f * swing / tech.max_rush_current_a
        settle_time = self._SETTLE_TAUS * self.ron_total_ohm * tech.domain_capacitance_f
        return charge_time + settle_time

    def retention_breakeven_time_s(self) -> float:
        """Smallest retention sleep with non-negative net saving."""
        saved_power = (self._leakage_power_w - self.retention_sleep_power_w)
        if saved_power <= 0.0:
            raise CircuitModelError(
                "retention draw exceeds domain leakage; retention can never win")
        low, high = 0.0, self.decay_tau_s
        for __ in range(64):
            if self.retention_net_saving_j(high) > 0.0:
                break
            high *= 2.0
        else:
            raise CircuitModelError("retention break-even failed to bracket a root")
        for __ in range(80):
            mid = 0.5 * (low + high)
            if self.retention_net_saving_j(mid) > 0.0:
                high = mid
            else:
                low = mid
        return 0.5 * (low + high)

    # ---- break-even -------------------------------------------------------------

    def breakeven_time_s(self) -> float:
        """Smallest sleep duration with non-negative net saving.

        Solved by bisection on :meth:`net_saving_j`, which is monotonically
        increasing past its single zero crossing (savings grow linearly,
        overhead saturates).
        """
        tech = self.tech
        effective_leak = self._leakage_power_w - self.sleep_residual_power_w
        if effective_leak <= 0.0:
            raise CircuitModelError(
                "header leakage exceeds domain leakage; gating can never win")
        low = 0.0
        high = self.decay_tau_s
        # Expand until the saving is positive.
        for __ in range(64):
            if self.net_saving_j(high) > 0.0:
                break
            high *= 2.0
        else:
            raise CircuitModelError("break-even search failed to bracket a root")
        for __ in range(80):
            mid = 0.5 * (low + high)
            if self.net_saving_j(mid) > 0.0:
                high = mid
            else:
                low = mid
        return 0.5 * (low + high)

    # ---- characterization --------------------------------------------------------

    def characterize(self, frequency_hz: float, pipeline_depth: int = 12,
                     stagger_groups: int = 0) -> "GatingCircuit":
        """Produce the cycle-domain summary the MAPG controller consumes."""
        if frequency_hz <= 0.0:
            raise CircuitModelError(f"frequency must be > 0, got {frequency_hz}")
        if stagger_groups == 0:
            stagger_groups = self.min_stagger_groups()
        wake_s = self.wake_latency_s(stagger_groups)
        bet_s = self.breakeven_time_s()
        retention_wake_s = self.retention_wake_latency_s()
        retention_bet_s = self.retention_breakeven_time_s()
        # Draining: retire in-flight work (pipeline depth) then isolate and
        # drive the header off (2 cycles for the control handshake).
        drain_cycles = pipeline_depth + 2
        return GatingCircuit(
            tech=self.tech,
            network=self,
            frequency_hz=frequency_hz,
            switch_width_um=self.switch_width_um,
            stagger_groups=stagger_groups,
            drain_cycles=drain_cycles,
            wake_latency_s=wake_s,
            wake_cycles=seconds_to_cycles_ceil(wake_s, frequency_hz),
            breakeven_s=bet_s,
            breakeven_cycles=seconds_to_cycles_ceil(bet_s, frequency_hz),
            switch_event_energy_j=self.switch_event_energy_j,
            sleep_residual_power_w=self.sleep_residual_power_w,
            decay_tau_s=self.decay_tau_s,
            retention_wake_latency_s=retention_wake_s,
            retention_wake_cycles=seconds_to_cycles_ceil(
                retention_wake_s, frequency_hz),
            retention_breakeven_s=retention_bet_s,
            retention_breakeven_cycles=seconds_to_cycles_ceil(
                retention_bet_s, frequency_hz),
            retention_sleep_power_w=self.retention_sleep_power_w,
        )


@dataclass(frozen=True)
class GatingCircuit:
    """Cycle-domain characterization of one gated core domain.

    This is the contract between the circuit model and the architecture
    layer: everything MAPG's decision logic needs, with the analog detail
    reachable through ``network`` for energy integration.
    """

    tech: TechnologyNode
    network: SleepTransistorNetwork
    frequency_hz: float
    switch_width_um: float
    stagger_groups: int
    drain_cycles: int
    wake_latency_s: float
    wake_cycles: int
    breakeven_s: float
    breakeven_cycles: int
    switch_event_energy_j: float
    sleep_residual_power_w: float
    decay_tau_s: float
    # Retention (state-preserving, clamped-rail) mode characterization.
    retention_wake_latency_s: float = 0.0
    retention_wake_cycles: int = 0
    retention_breakeven_s: float = 0.0
    retention_breakeven_cycles: int = 0
    retention_sleep_power_w: float = 0.0

    def cycles_to_seconds(self, cycles: float) -> float:
        return _cycles_to_seconds(cycles, self.frequency_hz)

    def overhead_energy_j(self, sleep_cycles: float) -> float:
        """Per-event overhead for a full-gate sleep of ``sleep_cycles``."""
        return self.network.overhead_energy_j(self.cycles_to_seconds(sleep_cycles))

    def net_saving_j(self, sleep_cycles: float) -> float:
        """Net energy won (or lost, if negative) by one gating event."""
        return self.network.net_saving_j(self.cycles_to_seconds(sleep_cycles))
