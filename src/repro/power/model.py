"""Core-domain power model: power per activity state, energy per event.

The simulator tiles time into activity states (see
``repro.stats.intervals``); this module assigns each state a power draw and
prices the per-event costs of power gating.  Accounting is split carefully
to avoid double counting:

* **Interval energy** = state power x state residency.  While ``SLEEP``,
  the domain draws only the residual header leakage; the charge that leaks
  *off the virtual rail* is not burned continuously — it is repaid from the
  supply at wakeup.
* **Event energy** = header gate drive (off+on) + rail recharge, the latter
  a function of how long the domain slept (short sleeps decay little).

The break-even analysis in ``repro.power.gating`` uses the same three terms,
so controller decisions and the energy ledger are consistent by
construction.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import ConfigError
from repro.power.gating import GatingCircuit
from repro.power.temperature import NOMINAL_TEMPERATURE_C, leakage_scale_factor


class PowerState(enum.Enum):
    """Activity states of one gated core domain."""

    ACTIVE = "active"        # retiring instructions
    STALL = "stall"          # clock-gated, waiting on memory, not power-gated
    DRAIN = "drain"          # emptying the pipeline before gating
    SLEEP = "sleep"          # header off, rail decaying (full gate)
    SLEEP_RETENTION = "sleep_retention"  # rail clamped at the retention voltage
    WAKE = "wake"            # header staggering on, rail recharging
    TOKEN_WAIT = "token_wait"  # awake-but-idle, waiting for a wake token (TAP)


# Fraction of clock-tree power that survives clock gating (gaters and spine).
_CLOCK_GATED_RESIDUE = 0.10


class CorePowerModel:
    """Maps activity states and gating events to watts and joules."""

    def __init__(self, circuit: GatingCircuit,
                 temperature_c: float = NOMINAL_TEMPERATURE_C) -> None:
        self.circuit = circuit
        self.tech = circuit.tech
        self.temperature_c = temperature_c
        self._leak_scale = leakage_scale_factor(temperature_c)
        self._state_power = self._build_state_power()

    def _build_state_power(self) -> Dict[PowerState, float]:
        tech = self.tech
        leakage = tech.core_leakage_power_w * self._leak_scale
        return {
            PowerState.ACTIVE: tech.core_dynamic_power_w + tech.clock_tree_power_w + leakage,
            PowerState.STALL: tech.clock_tree_power_w * _CLOCK_GATED_RESIDUE + leakage,
            PowerState.DRAIN: tech.clock_tree_power_w + leakage,
            PowerState.SLEEP: self.circuit.sleep_residual_power_w,
            PowerState.SLEEP_RETENTION: self.circuit.retention_sleep_power_w,
            PowerState.WAKE: leakage,
            PowerState.TOKEN_WAIT: tech.clock_tree_power_w * _CLOCK_GATED_RESIDUE + leakage,
        }

    @property
    def leakage_power_w(self) -> float:
        """Temperature-scaled domain leakage (what gating can save)."""
        return self.tech.core_leakage_power_w * self._leak_scale

    @property
    def background_power_w(self) -> float:
        """Always-on power outside the gated domain (uncore, DRAM I/F).

        Charged over *total* execution time regardless of core state, which
        is how gating-induced slowdowns translate into real energy cost.
        """
        return self.tech.system_background_power_w

    def state_power_w(self, state: PowerState) -> float:
        """Power draw while residing in ``state``."""
        try:
            return self._state_power[state]
        except KeyError:
            raise ConfigError(f"unknown power state {state!r}") from None

    def interval_energy_j(self, state: PowerState, cycles: float) -> float:
        """Energy of ``cycles`` spent in ``state``."""
        if cycles < 0:
            raise ConfigError(f"cycles must be >= 0, got {cycles}")
        return self.state_power_w(state) * self.circuit.cycles_to_seconds(cycles)

    def state_power_table(self) -> Dict[PowerState, float]:
        """Per-state power draw for every state, for batch integrators.

        The fast-path kernel (:mod:`repro.fastsim`) hoists these draws out
        of its inner loop and reproduces :meth:`interval_energy_j` term by
        term; handing it a copy keeps the table itself private.
        """
        return dict(self._state_power)

    def gating_event_energy_j(self, sleep_cycles: float,
                              mode: str = "full") -> float:
        """One-off cost of a gating event whose sleep lasted ``sleep_cycles``.

        Header gate drive plus rail recharge; the continuous sleep draw
        (header residual, retention clamp) is *not* included here because it
        is charged as SLEEP / SLEEP_RETENTION interval energy.  ``mode`` is
        ``"full"`` (collapsed rail) or ``"retention"`` (clamped rail, whose
        recharge is capped at the clamp swing).
        """
        if sleep_cycles < 0:
            raise ConfigError(f"sleep_cycles must be >= 0, got {sleep_cycles}")
        sleep_s = self.circuit.cycles_to_seconds(sleep_cycles)
        if mode == "full":
            rush = self.circuit.network.rush_charge_energy_j(sleep_s)
        elif mode == "retention":
            rush = self.circuit.network.retention_rush_energy_j(sleep_s)
        else:
            raise ConfigError(f"unknown sleep mode {mode!r}")
        return self.circuit.switch_event_energy_j + rush
