"""Technology-node parameter sets.

Each :class:`TechnologyNode` bundles the electrical parameters the power and
gating models need for one process generation.  Values are *representative*
of published 90/65/45/32 nm characterizations (ITRS-era planar bulk CMOS):
supply voltage falls slowly, leakage's share of core power grows from ~20 %
at 90 nm to ~40 % at 32 nm, and per-micron switch parameters improve with
scaling.  Only ratios and orderings derived from these numbers are claimed
by the evaluation, never absolute watts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class TechnologyNode:
    """Electrical parameters of one process node for a small embedded core."""

    name: str
    vdd_v: float
    # Core-domain power at nominal voltage/temperature, 2 GHz-class core.
    core_dynamic_power_w: float       # switching power when actively retiring
    core_leakage_power_w: float       # subthreshold + gate leakage, whole domain
    clock_tree_power_w: float         # burned whenever the clock toggles
    # Gated-domain electrical characteristics.
    domain_capacitance_f: float       # virtual-rail + local decap capacitance
    core_peak_current_a: float        # worst-case active current draw
    # Sleep (header) transistor characteristics, per micron of gate width.
    sleep_tx_resistance_ohm_um: float  # Ron * W (ohm-micron product)
    sleep_tx_leakage_w_per_um: float   # residual leakage through an OFF switch
    sleep_tx_gate_cap_f_per_um: float  # gate capacitance (switching energy)
    # Design budgets.
    max_ir_drop_fraction: float        # allowed virtual-rail droop when active
    max_rush_current_a: float          # grid-noise ceiling during wakeup
    # Always-on power outside the gated domain (uncore, DRAM interface,
    # PLLs): burned for every cycle the program runs, so gating penalties
    # that stretch execution time cost real energy here.
    system_background_power_w: float = 0.6

    def __post_init__(self) -> None:
        positive = (
            "vdd_v", "core_dynamic_power_w", "core_leakage_power_w",
            "clock_tree_power_w", "domain_capacitance_f", "core_peak_current_a",
            "sleep_tx_resistance_ohm_um", "sleep_tx_leakage_w_per_um",
            "sleep_tx_gate_cap_f_per_um", "max_rush_current_a",
            "system_background_power_w",
        )
        for label in positive:
            if getattr(self, label) <= 0.0:
                raise ConfigError(f"{label} must be > 0 in node {self.name!r}")
        if not 0.0 < self.max_ir_drop_fraction < 0.5:
            raise ConfigError(
                f"max_ir_drop_fraction must be in (0, 0.5), got {self.max_ir_drop_fraction}")

    @property
    def leakage_fraction(self) -> float:
        """Leakage share of total active core power."""
        total = self.core_dynamic_power_w + self.core_leakage_power_w + self.clock_tree_power_w
        return self.core_leakage_power_w / total


TECHNOLOGY_NODES: Dict[str, TechnologyNode] = {
    node.name: node
    for node in (
        TechnologyNode(
            name="90nm", vdd_v=1.20,
            core_dynamic_power_w=1.60, core_leakage_power_w=0.45,
            clock_tree_power_w=0.40,
            domain_capacitance_f=18e-9, core_peak_current_a=2.2,
            sleep_tx_resistance_ohm_um=12_000.0,
            sleep_tx_leakage_w_per_um=5.0e-9,
            sleep_tx_gate_cap_f_per_um=1.4e-15,
            max_ir_drop_fraction=0.03, max_rush_current_a=1.6,
            system_background_power_w=0.90,
        ),
        TechnologyNode(
            name="65nm", vdd_v=1.10,
            core_dynamic_power_w=1.25, core_leakage_power_w=0.50,
            clock_tree_power_w=0.32,
            domain_capacitance_f=14e-9, core_peak_current_a=2.0,
            sleep_tx_resistance_ohm_um=9_000.0,
            sleep_tx_leakage_w_per_um=6.5e-9,
            sleep_tx_gate_cap_f_per_um=1.2e-15,
            max_ir_drop_fraction=0.03, max_rush_current_a=1.5,
            system_background_power_w=0.75,
        ),
        TechnologyNode(
            name="45nm", vdd_v=1.00,
            core_dynamic_power_w=1.00, core_leakage_power_w=0.55,
            clock_tree_power_w=0.26,
            domain_capacitance_f=11e-9, core_peak_current_a=1.9,
            sleep_tx_resistance_ohm_um=6_500.0,
            sleep_tx_leakage_w_per_um=8.0e-9,
            sleep_tx_gate_cap_f_per_um=1.0e-15,
            max_ir_drop_fraction=0.025, max_rush_current_a=1.4,
            system_background_power_w=0.60,
        ),
        TechnologyNode(
            name="32nm", vdd_v=0.90,
            core_dynamic_power_w=0.80, core_leakage_power_w=0.60,
            clock_tree_power_w=0.21,
            domain_capacitance_f=9e-9, core_peak_current_a=1.8,
            sleep_tx_resistance_ohm_um=4_800.0,
            sleep_tx_leakage_w_per_um=1.0e-8,
            sleep_tx_gate_cap_f_per_um=0.85e-15,
            max_ir_drop_fraction=0.025, max_rush_current_a=1.3,
            system_background_power_w=0.50,
        ),
    )
}


def get_technology(name: str) -> TechnologyNode:
    """Look up a node by name (``'45nm'`` etc.), with a helpful error."""
    try:
        return TECHNOLOGY_NODES[name]
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_NODES))
        raise ConfigError(f"unknown technology {name!r}; known nodes: {known}") from None
