"""Leakage-temperature dependence.

Subthreshold leakage grows roughly exponentially with junction temperature;
the folk rule of thumb is "leakage doubles every ~20-30 degrees C".  The
evaluation uses this only as a scale factor on the node's nominal leakage
(characterized at 85 degrees C, a typical hot-spot assumption), so a simple
exponential with a configurable doubling interval is all that is needed.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError

NOMINAL_TEMPERATURE_C = 85.0
DEFAULT_DOUBLING_INTERVAL_C = 25.0

# Physical sanity range for junction temperature in silicon.
_MIN_TEMPERATURE_C = -55.0
_MAX_TEMPERATURE_C = 150.0


def leakage_scale_factor(temperature_c: float,
                         nominal_c: float = NOMINAL_TEMPERATURE_C,
                         doubling_interval_c: float = DEFAULT_DOUBLING_INTERVAL_C) -> float:
    """Multiplier on nominal leakage power at ``temperature_c``.

    Equals 1.0 at the nominal temperature, 2.0 one doubling interval above
    it, 0.5 one below, etc.
    """
    if doubling_interval_c <= 0.0:
        raise ConfigError(
            f"doubling_interval_c must be > 0, got {doubling_interval_c}")
    for label, value in (("temperature_c", temperature_c), ("nominal_c", nominal_c)):
        if not _MIN_TEMPERATURE_C <= value <= _MAX_TEMPERATURE_C:
            raise ConfigError(
                f"{label} must be within [{_MIN_TEMPERATURE_C}, {_MAX_TEMPERATURE_C}] C, "
                f"got {value}")
    return math.pow(2.0, (temperature_c - nominal_c) / doubling_interval_c)
