"""Die-to-die leakage variation.

Leakage current is the most process-sensitive quantity in CMOS: threshold
voltage variation enters the subthreshold current exponentially, so
die-to-die leakage is well modeled as **lognormal**.  That matters to MAPG
twice:

* a *leaky* die saves more from gating (more leakage to cut) and has a
  shorter break-even time;
* a *strong* (low-leakage) die may make gating marginal — a BET
  characterized at typical corner over-gates on strong silicon.

:class:`LeakageVariationModel` samples per-die leakage multipliers and
builds per-die :class:`~repro.power.gating.SleepTransistorNetwork`
instances, so a population study (the F13 experiment) is just a loop over
virtual dies.  Sampling is seeded and reproducible.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigError
from repro.power.gating import SleepTransistorNetwork
from repro.power.technology import TechnologyNode
from repro.power.temperature import NOMINAL_TEMPERATURE_C, leakage_scale_factor


@dataclass(frozen=True)
class DieSample:
    """One virtual die: its leakage multiplier and derived circuit model."""

    die_id: int
    leakage_multiplier: float
    network: SleepTransistorNetwork


class _ScaledLeakageNetwork(SleepTransistorNetwork):
    """A sleep-transistor network whose domain leakage carries a die factor."""

    def __init__(self, tech: TechnologyNode, multiplier: float,
                 temperature_c: float) -> None:
        super().__init__(tech, temperature_c=temperature_c)
        self._leakage_power_w *= multiplier


class LeakageVariationModel:
    """Lognormal die-to-die leakage population.

    ``sigma_log`` is the standard deviation of ln(leakage); typical
    published die-to-die spreads correspond to sigma_log ~ 0.2-0.5
    (a 3-sigma leakage ratio of ~3x-20x).  The distribution is normalized
    to a **median** multiplier of 1.0, i.e. the nominal characterization
    is the median die.
    """

    def __init__(self, tech: TechnologyNode, sigma_log: float = 0.3,
                 temperature_c: float = NOMINAL_TEMPERATURE_C,
                 seed: int = 1) -> None:
        if sigma_log < 0.0:
            raise ConfigError(f"sigma_log must be >= 0, got {sigma_log}")
        self.tech = tech
        self.sigma_log = sigma_log
        self.temperature_c = temperature_c
        self._rng = random.Random(seed)

    def sample_multiplier(self) -> float:
        """One die's leakage multiplier (median 1.0, lognormal)."""
        return math.exp(self._rng.gauss(0.0, self.sigma_log))

    def sample_die(self, die_id: int) -> DieSample:
        multiplier = self.sample_multiplier()
        network = _ScaledLeakageNetwork(self.tech, multiplier,
                                        self.temperature_c)
        return DieSample(die_id=die_id, leakage_multiplier=multiplier,
                         network=network)

    def sample_population(self, count: int) -> List[DieSample]:
        """``count`` independent virtual dies."""
        if count < 1:
            raise ConfigError(f"population size must be >= 1, got {count}")
        return [self.sample_die(die_id) for die_id in range(count)]

    def percentile_multiplier(self, p: float) -> float:
        """Analytic lognormal percentile (0 < p < 100) of the multiplier."""
        if not 0.0 < p < 100.0:
            raise ConfigError(f"percentile must be in (0, 100), got {p}")
        return math.exp(self.sigma_log * _probit(p / 100.0))


def _probit(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation)."""
    if not 0.0 < q < 1.0:
        raise ConfigError(f"quantile must be in (0, 1), got {q}")
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2.0 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    if q > 1.0 - p_low:
        u = math.sqrt(-2.0 * math.log(1.0 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
            ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0)
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / \
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
