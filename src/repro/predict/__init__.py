"""Residual memory-latency predictors used by the MAPG controller."""

from repro.predict.base import LatencyPredictor, Prediction
from repro.predict.simple import EwmaPredictor, FixedPredictor, LastValuePredictor
from repro.predict.table import HistoryTablePredictor, make_predictor

__all__ = [
    "LatencyPredictor",
    "Prediction",
    "FixedPredictor",
    "LastValuePredictor",
    "EwmaPredictor",
    "HistoryTablePredictor",
    "make_predictor",
]
