"""Predictor interface.

MAPG must estimate, at the moment a core stalls on an off-chip access, how
long that access will take — to decide whether gating is worthwhile (stall
>= break-even + margin) and when to begin the early wakeup.  Predictors see
the same information the hardware would: the static instruction (``pc``),
the DRAM bank the access maps to, and afterwards the measured latency.

All latencies are in core cycles.  ``confidence`` is in [0, 1]; the
controller falls back to a conservative default below its threshold.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import PredictionError


@dataclass(frozen=True)
class Prediction:
    """A latency estimate and the predictor's confidence in it."""

    latency_cycles: int
    confidence: float

    def __post_init__(self) -> None:
        if self.latency_cycles < 0:
            raise PredictionError(
                f"predicted latency must be >= 0, got {self.latency_cycles}")
        if not 0.0 <= self.confidence <= 1.0:
            raise PredictionError(
                f"confidence must be in [0, 1], got {self.confidence}")


class LatencyPredictor(abc.ABC):
    """Base class: predict off-chip access latency, learn from outcomes.

    ``kind`` is an optional categorical feature of the access — in this
    system the DRAM row-buffer outcome (``"row_hit"`` / ``"row_closed"`` /
    ``"row_conflict"``), which the memory controller knows when it
    schedules the command and can expose to the gating controller.  Since
    DRAM latency is mostly determined by that outcome plus queueing,
    keying on it is the single biggest accuracy lever.  Predictors are free
    to ignore it (the scalar baselines do).
    """

    @abc.abstractmethod
    def predict(self, pc: int, bank: int, kind: str = "") -> Prediction:
        """Estimate the latency of an access from ``pc`` hitting ``bank``."""

    @abc.abstractmethod
    def observe(self, pc: int, bank: int, actual_cycles: int,
                kind: str = "") -> None:
        """Learn the measured latency of a completed access."""

    def reset(self) -> None:
        """Forget all learned state (default: nothing to forget)."""
