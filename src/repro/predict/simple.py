"""Stateless and scalar-state latency predictors (F6 baselines)."""

from __future__ import annotations

from repro.errors import PredictionError
from repro.predict.base import LatencyPredictor, Prediction


class FixedPredictor(LatencyPredictor):
    """Always predicts a configured constant.

    With the constant set to the closed-row DRAM latency this is the
    "static worst-typical estimate" a design team would hard-wire; it is
    also the fallback the MAPG controller uses at low confidence.
    """

    def __init__(self, latency_cycles: int, confidence: float = 1.0) -> None:
        if latency_cycles < 0:
            raise PredictionError(f"latency must be >= 0, got {latency_cycles}")
        self._prediction = Prediction(latency_cycles, confidence)

    def predict(self, pc: int, bank: int, kind: str = "") -> Prediction:
        return self._prediction

    def observe(self, pc: int, bank: int, actual_cycles: int,
                kind: str = "") -> None:
        pass  # nothing to learn


class LastValuePredictor(LatencyPredictor):
    """Predicts the most recently observed latency, globally.

    Confidence ramps with consecutive predictions that landed within
    ``tolerance`` (relative) of the observation.
    """

    def __init__(self, initial_cycles: int = 200, tolerance: float = 0.25) -> None:
        if initial_cycles < 0:
            raise PredictionError(f"initial latency must be >= 0, got {initial_cycles}")
        if tolerance <= 0.0:
            raise PredictionError(f"tolerance must be > 0, got {tolerance}")
        self._initial = initial_cycles
        self._last = initial_cycles
        self._tolerance = tolerance
        self._streak = 0

    def predict(self, pc: int, bank: int, kind: str = "") -> Prediction:
        confidence = min(1.0, self._streak / 4.0)
        return Prediction(self._last, confidence)

    def observe(self, pc: int, bank: int, actual_cycles: int,
                kind: str = "") -> None:
        if actual_cycles < 0:
            raise PredictionError(f"observed latency must be >= 0, got {actual_cycles}")
        error = abs(actual_cycles - self._last)
        if error <= self._tolerance * max(1, self._last):
            self._streak = min(self._streak + 1, 4)
        else:
            self._streak = 0
        self._last = actual_cycles

    def reset(self) -> None:
        self._last = self._initial
        self._streak = 0


class EwmaPredictor(LatencyPredictor):
    """Exponentially-weighted moving average with deviation-based confidence.

    Mirrors the TCP RTT estimator: track the mean and the mean absolute
    deviation; confidence is high when the deviation is a small fraction of
    the mean.
    """

    def __init__(self, initial_cycles: int = 200, alpha: float = 0.25,
                 beta: float = 0.25) -> None:
        if initial_cycles < 0:
            raise PredictionError(f"initial latency must be >= 0, got {initial_cycles}")
        for label, value in (("alpha", alpha), ("beta", beta)):
            if not 0.0 < value <= 1.0:
                raise PredictionError(f"{label} must be in (0, 1], got {value}")
        self._initial = initial_cycles
        self._mean = float(initial_cycles)
        self._deviation = float(initial_cycles) * 0.5
        self._alpha = alpha
        self._beta = beta
        self._observations = 0

    def predict(self, pc: int, bank: int, kind: str = "") -> Prediction:
        if self._observations == 0:
            return Prediction(int(round(self._mean)), 0.0)
        relative_dev = self._deviation / max(1.0, self._mean)
        confidence = max(0.0, min(1.0, 1.0 - 2.0 * relative_dev))
        return Prediction(int(round(self._mean)), confidence)

    def observe(self, pc: int, bank: int, actual_cycles: int,
                kind: str = "") -> None:
        if actual_cycles < 0:
            raise PredictionError(f"observed latency must be >= 0, got {actual_cycles}")
        error = actual_cycles - self._mean
        self._mean += self._alpha * error
        self._deviation += self._beta * (abs(error) - self._deviation)
        self._observations += 1

    def reset(self) -> None:
        self._mean = float(self._initial)
        self._deviation = float(self._initial) * 0.5
        self._observations = 0
