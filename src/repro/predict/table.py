"""History-table predictor — the predictor MAPG deploys.

DRAM latency is bimodal-per-bank (row hit vs row miss/conflict plus
queueing), and which mode an access lands in correlates strongly with the
bank's recent behaviour and with the static instruction stream.  The
:class:`HistoryTablePredictor` therefore keeps a small direct-mapped table
of EWMA estimators indexed by a hash of (pc, bank), each with a saturating
confidence counter that rewards accurate predictions — this is the kind of
structure that fits in a few hundred bytes of SRAM next to the memory
controller, which is the implementation a DATE paper would argue for.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import GatingConfig
from repro.core.gating_constants import (
    TABLE_BANK_MULT, TABLE_KIND_MASK, TABLE_KIND_MULT, TABLE_PC_SHIFT)
from repro.errors import PredictionError
from repro.predict.base import LatencyPredictor, Prediction
from repro.predict.simple import EwmaPredictor, FixedPredictor, LastValuePredictor


class _TableEntry:
    """One table slot: EWMA latency estimate + 2-bit-style confidence."""

    __slots__ = ("mean", "confidence_counter", "valid")

    CONFIDENCE_MAX = 7  # 3-bit saturating counter

    def __init__(self) -> None:
        self.mean = 0.0
        self.confidence_counter = 0
        self.valid = False


class HistoryTablePredictor(LatencyPredictor):
    """Direct-mapped (pc, bank)-indexed table of latency estimators."""

    def __init__(self, entries: int = 64, alpha: float = 0.3,
                 tolerance: float = 0.2, initial_cycles: int = 200) -> None:
        if entries < 1:
            raise PredictionError(f"table needs >= 1 entry, got {entries}")
        if not 0.0 < alpha <= 1.0:
            raise PredictionError(f"alpha must be in (0, 1], got {alpha}")
        if tolerance <= 0.0:
            raise PredictionError(f"tolerance must be > 0, got {tolerance}")
        if initial_cycles < 0:
            raise PredictionError(f"initial latency must be >= 0, got {initial_cycles}")
        self._entries_count = entries
        self._alpha = alpha
        self._tolerance = tolerance
        self._initial = initial_cycles
        self._table: List[_TableEntry] = [_TableEntry() for __ in range(entries)]

    def _index(self, pc: int, bank: int, kind: str) -> int:
        # Cheap hardware hash: fold pc over the bank id and the row-buffer
        # outcome (2 bits in hardware; hashed from the string here).
        kind_bits = sum(kind.encode()) & TABLE_KIND_MASK
        return ((pc >> TABLE_PC_SHIFT) ^ (bank * TABLE_BANK_MULT)
                ^ (kind_bits * TABLE_KIND_MULT)) % self._entries_count

    def predict(self, pc: int, bank: int, kind: str = "") -> Prediction:
        entry = self._table[self._index(pc, bank, kind)]
        if not entry.valid:
            return Prediction(self._initial, 0.0)
        confidence = entry.confidence_counter / _TableEntry.CONFIDENCE_MAX
        return Prediction(int(round(entry.mean)), confidence)

    def observe(self, pc: int, bank: int, actual_cycles: int,
                kind: str = "") -> None:
        if actual_cycles < 0:
            raise PredictionError(f"observed latency must be >= 0, got {actual_cycles}")
        entry = self._table[self._index(pc, bank, kind)]
        if not entry.valid:
            entry.mean = float(actual_cycles)
            entry.confidence_counter = 1
            entry.valid = True
            return
        error = abs(actual_cycles - entry.mean)
        if error <= self._tolerance * max(1.0, entry.mean):
            entry.confidence_counter = min(
                entry.confidence_counter + 1, _TableEntry.CONFIDENCE_MAX)
        else:
            entry.confidence_counter = max(entry.confidence_counter - 2, 0)
        entry.mean += self._alpha * (actual_cycles - entry.mean)

    def reset(self) -> None:
        self._table = [_TableEntry() for __ in range(self._entries_count)]

    @property
    def occupancy(self) -> float:
        """Fraction of table slots trained (diagnostic)."""
        used = sum(1 for entry in self._table if entry.valid)
        return used / self._entries_count


def make_predictor(config: GatingConfig,
                   default_latency_cycles: int) -> Optional[LatencyPredictor]:
    """Build the predictor named by ``config.predictor``.

    ``default_latency_cycles`` seeds every predictor's cold-start estimate
    (the static closed-row DRAM latency).  Returns None for ``"oracle"`` —
    the controller then uses the simulator's ground truth directly.
    """
    name = config.predictor
    if name == "fixed":
        return FixedPredictor(default_latency_cycles)
    if name == "last_value":
        return LastValuePredictor(initial_cycles=default_latency_cycles)
    if name == "ewma":
        return EwmaPredictor(initial_cycles=default_latency_cycles)
    if name == "table":
        return HistoryTablePredictor(initial_cycles=default_latency_cycles)
    if name == "oracle":
        return None
    raise PredictionError(f"unknown predictor {name!r}")
