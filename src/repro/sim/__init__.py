"""Simulation layer: wires substrates to the MAPG controller and runs them."""

from repro.sim.results import ComparisonResult, MulticoreResult, SimulationResult
from repro.sim.runner import (
    run_multicore,
    run_policy_comparison,
    run_workload,
    static_offchip_latency_cycles,
)
from repro.sim.simulator import GatingTraceEvent, Simulator

__all__ = [
    "ComparisonResult",
    "GatingTraceEvent",
    "MulticoreResult",
    "SimulationResult",
    "run_multicore",
    "run_policy_comparison",
    "run_workload",
    "static_offchip_latency_cycles",
    "Simulator",
]
