"""Result objects: what one simulation run measured, and run-vs-run deltas."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError


@dataclass(frozen=True)
class SimulationResult:
    """Measurements of one (workload, configuration) run.

    ``total_cycles`` includes gating penalties; ``penalty_cycles`` isolates
    them, so ``total_cycles - penalty_cycles`` is the gating-free execution
    time of the *same* run (identical memory timing), which is what
    performance penalties are computed against.
    """

    workload: str
    policy: str
    instructions: int
    total_cycles: int
    penalty_cycles: int
    energy_j: float
    event_energy_j: float
    event_count: int
    state_cycles: Dict[str, int] = field(default_factory=dict)
    state_energy_j: Dict[str, float] = field(default_factory=dict)
    controller_counters: Dict[str, float] = field(default_factory=dict)
    memory_counters: Dict[str, float] = field(default_factory=dict)
    prediction_mae_cycles: float = 0.0
    prediction_mape: float = 0.0

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.total_cycles < 0:
            raise SimulationError("instruction/cycle counts must be >= 0")
        if self.penalty_cycles < 0 or self.penalty_cycles > self.total_cycles:
            raise SimulationError(
                f"penalty_cycles {self.penalty_cycles} out of range "
                f"[0, {self.total_cycles}]")
        if self.energy_j < 0.0:
            raise SimulationError("energy must be >= 0")

    @property
    def ipc(self) -> float:
        """Instructions per cycle, penalties included."""
        if self.total_cycles == 0:
            return 0.0
        return self.instructions / self.total_cycles

    @property
    def baseline_cycles(self) -> int:
        """Execution time had gating added no penalty."""
        return self.total_cycles - self.penalty_cycles

    @property
    def performance_penalty(self) -> float:
        """Fractional slowdown introduced by gating (0.01 = 1 %)."""
        if self.baseline_cycles == 0:
            return 0.0
        return self.penalty_cycles / self.baseline_cycles

    @property
    def energy_per_instruction_j(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.energy_j / self.instructions

    @property
    def gated_stalls(self) -> float:
        return self.controller_counters.get("gated", 0.0)

    @property
    def offchip_stalls(self) -> float:
        return self.controller_counters.get("offchip_stalls", 0.0)

    @property
    def sleep_fraction(self) -> float:
        """Fraction of all cycles spent gated (full collapse or retention)."""
        if self.total_cycles == 0:
            return 0.0
        gated = (self.state_cycles.get("sleep", 0)
                 + self.state_cycles.get("sleep_retention", 0))
        return gated / self.total_cycles

    @property
    def stall_fraction(self) -> float:
        """Fraction of cycles the pipeline was empty (any reason)."""
        if self.total_cycles == 0:
            return 0.0
        stalled = sum(self.state_cycles.get(name, 0)
                      for name in ("stall", "drain", "sleep", "sleep_retention",
                                   "wake", "token_wait"))
        return stalled / self.total_cycles

    def compare(self, baseline: "SimulationResult") -> "ComparisonResult":
        """This run measured against ``baseline`` (typically policy=never)."""
        if baseline.workload != self.workload:
            raise SimulationError(
                f"comparing different workloads: {self.workload} vs "
                f"{baseline.workload}")
        if baseline.energy_j <= 0.0 or baseline.total_cycles <= 0:
            raise SimulationError("baseline has no energy/cycles to compare against")
        energy_saving = 1.0 - self.energy_j / baseline.energy_j
        slowdown = self.total_cycles / baseline.total_cycles - 1.0
        # EDP with cycles as the delay term: the frequency factor cancels
        # in the ratio, so no cycle->seconds conversion is needed here.
        edp_self = self.energy_j * self.total_cycles  # mapglint: disable=UNIT01
        edp_base = baseline.energy_j * baseline.total_cycles  # mapglint: disable=UNIT01
        return ComparisonResult(
            workload=self.workload,
            policy=self.policy,
            baseline_policy=baseline.policy,
            energy_saving=energy_saving,
            performance_penalty=slowdown,
            edp_ratio=edp_self / edp_base,
        )


@dataclass(frozen=True)
class ComparisonResult:
    """One run relative to a baseline run of the same workload.

    ``energy_saving`` and ``performance_penalty`` are fractions (0.12 =
    12 %); ``edp_ratio`` < 1 means the run improved energy-delay product.
    """

    workload: str
    policy: str
    baseline_policy: str
    energy_saving: float
    performance_penalty: float
    edp_ratio: float


@dataclass(frozen=True)
class MulticoreResult:
    """Aggregate measurements of one multi-core run (F7)."""

    workloads: Dict[int, str]
    policy: str
    num_cores: int
    wake_tokens: int
    per_core: Dict[int, SimulationResult]
    total_energy_j: float
    makespan_cycles: int
    token_counters: Dict[str, float] = field(default_factory=dict)

    @property
    def total_penalty_cycles(self) -> int:
        return sum(result.penalty_cycles for result in self.per_core.values())

    @property
    def mean_performance_penalty(self) -> float:
        if not self.per_core:
            return 0.0
        penalties = [result.performance_penalty for result in self.per_core.values()]
        return sum(penalties) / len(penalties)
