"""High-level experiment runners used by examples, benchmarks, and tests.

These functions own the repetitive wiring of the evaluation: build a
configuration variant, generate the workload trace, run the simulator,
and hand back result objects.  Every benchmark target in ``benchmarks/``
is a thin formatter over these.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # circularity guard: repro.exec executes via this layer
    from repro.exec import ResultCache, SweepRunner

from repro.config import SystemConfig
from repro.core.token import TokenArbiter
from repro.cpu.multicore import MultiCoreScheduler
from repro.errors import ConfigError
from repro.memory.dram import Dram
from repro.obs.spans import NullRecorder
from repro.sim.results import MulticoreResult, SimulationResult
from repro.sim.simulator import Simulator, static_offchip_latency_cycles
from repro.workloads.synthetic import generate_trace

__all__ = [
    "run_workload",
    "run_policy_comparison",
    "run_multicore",
    "run_seed_study",
    "SeedStudy",
    "static_offchip_latency_cycles",
    "with_policy",
]


def with_policy(config: SystemConfig, policy: str, **gating_overrides: object) -> SystemConfig:
    """A copy of ``config`` with the gating policy (and knobs) replaced."""
    gating = dataclasses.replace(config.gating, policy=policy, **gating_overrides)
    return config.replace(gating=gating)


def run_workload(config: SystemConfig, profile_name: str, num_ops: int,
                 seed: int = 1, temperature_c: Optional[float] = None,
                 warmup_ops: int = 0,
                 recorder: Optional[NullRecorder] = None,
                 engine: str = "oracle") -> SimulationResult:
    """Generate a trace for ``profile_name`` and run it through ``config``.

    ``warmup_ops`` extra ops are replayed first and excluded from every
    metric (caches, row buffers, and predictors stay warm into the
    measured region).  ``recorder`` (a :class:`repro.obs.SpanRecorder`)
    captures the cycle-timestamped timeline for Perfetto export; the
    default records nothing and costs nothing.

    ``engine`` selects the execution kernel: ``"oracle"`` is the
    reference event-driven simulator, ``"fast"`` the columnar batched
    kernel of :mod:`repro.fastsim` — bit-identical results by contract,
    roughly an order of magnitude faster on gating-eligible configs
    (unsupported ones transparently fall back to the oracle).  Unknown
    names raise :class:`~repro.errors.ConfigError`.

    On the oracle path the generator **streams** into the simulator —
    the op trace is never materialized as a list, so memory stays flat
    however long the run is.  The fast path ingests the trace into
    memoized columnar arrays (a few bytes per op) instead.
    """
    from repro.workloads.synthetic import SyntheticTraceGenerator
    from repro.workloads.profiles import get_profile
    from repro.fastsim import validate_engine

    validate_engine(engine)
    kwargs = {} if temperature_c is None else {"temperature_c": temperature_c}
    if engine == "fast":
        from repro.fastsim import FastSimulator, shared_columnar_store

        fast = FastSimulator(config, workload=profile_name, seed=seed,
                             recorder=recorder, **kwargs)
        warm_trace, measured_trace = shared_columnar_store().traces(
            profile_name, num_ops, seed=seed, warmup_ops=warmup_ops)
        if warmup_ops:
            fast.warm_up(warm_trace)
        return fast.run(measured_trace)
    simulator = Simulator(config, workload=profile_name, seed=seed,
                          recorder=recorder, **kwargs)
    generator = SyntheticTraceGenerator(get_profile(profile_name), seed=seed)
    if warmup_ops:
        simulator.warm_up(generator.operations(warmup_ops))
    return simulator.run(generator.operations(num_ops))


def run_policy_comparison(config: SystemConfig, profile_names: Sequence[str],
                          policies: Sequence[str], num_ops: int,
                          seed: int = 1, jobs: int = 1,
                          cache: "Optional[ResultCache]" = None,
                          engine: str = "oracle"
                          ) -> Dict[str, Dict[str, SimulationResult]]:
    """The F2/T3 matrix: results[workload][policy].

    Every policy replays the *identical* trace (same profile, same seed),
    so differences are attributable to the policy alone — the trace is
    generated once per (profile, seed) and replayed per policy.

    Routed through :class:`repro.exec.SweepRunner`: ``jobs > 1`` fans the
    matrix over a process pool and ``cache`` (a
    :class:`repro.exec.ResultCache`) skips cells simulated before; the
    returned matrix is bit-identical at any ``jobs``/cache setting, and
    — by the fast kernel's parity contract — at any ``engine`` setting.
    """
    from repro.exec import SweepRunner
    from repro.exec.jobspec import JobSpec

    specs = [JobSpec(config=with_policy(config, policy),
                     profile=profile_name, num_ops=num_ops, seed=seed,
                     engine=engine)
             for profile_name in profile_names for policy in policies]
    flat = iter(_sweep_runner(jobs, cache).run(specs))
    results: Dict[str, Dict[str, SimulationResult]] = {}
    for profile_name in profile_names:
        results[profile_name] = {policy: next(flat) for policy in policies}
    return results


def run_seed_study(config: SystemConfig, profile_name: str, num_ops: int,
                   seeds: Sequence[int],
                   baseline_policy: str = "never", jobs: int = 1,
                   cache: "Optional[ResultCache]" = None,
                   engine: str = "oracle") -> "SeedStudy":
    """Replicate one (workload, policy) comparison across trace seeds.

    Every seed generates an independent trace instance of the same
    profile; the study reports the mean and population standard deviation
    of the energy saving and performance penalty vs the baseline policy —
    the error bars a reviewer asks for.

    Like :func:`run_policy_comparison`, the cells run through
    :class:`repro.exec.SweepRunner` (``jobs``/``cache`` behave the same).
    """
    from repro.exec.jobspec import JobSpec

    if not seeds:
        raise ConfigError("seed study needs at least one seed")
    specs: List[JobSpec] = []
    for seed in seeds:
        specs.append(JobSpec(config=with_policy(config, baseline_policy),
                             profile=profile_name, num_ops=num_ops, seed=seed,
                             engine=engine))
        specs.append(JobSpec(config=config, profile=profile_name,
                             num_ops=num_ops, seed=seed, engine=engine))
    flat = _sweep_runner(jobs, cache).run(specs)
    savings: List[float] = []
    penalties: List[float] = []
    for index in range(len(seeds)):
        baseline = flat[2 * index]
        result = flat[2 * index + 1]
        delta = result.compare(baseline)
        savings.append(delta.energy_saving)
        penalties.append(delta.performance_penalty)
    return SeedStudy(workload=profile_name, policy=config.gating.policy,
                     seeds=tuple(seeds), savings=tuple(savings),
                     penalties=tuple(penalties))


def _sweep_runner(jobs: int, cache: "Optional[ResultCache]") -> "SweepRunner":
    """Build the engine behind the runner facades (import kept lazy)."""
    from repro.exec import ResultCache, SweepRunner

    if cache is not None and not isinstance(cache, ResultCache):
        raise ConfigError(
            f"cache must be a repro.exec.ResultCache, got {type(cache).__name__}")
    return SweepRunner(jobs=jobs, cache=cache)


@dataclasses.dataclass(frozen=True)
class SeedStudy:
    """Replication statistics of one comparison across trace seeds."""

    workload: str
    policy: str
    seeds: "tuple[int, ...]"
    savings: "tuple[float, ...]"
    penalties: "tuple[float, ...]"

    @staticmethod
    def _mean(values: "tuple[float, ...]") -> float:
        return sum(values) / len(values)

    @staticmethod
    def _std(values: "tuple[float, ...]") -> float:
        mean = sum(values) / len(values)
        return (sum((v - mean) ** 2 for v in values) / len(values)) ** 0.5

    @property
    def mean_saving(self) -> float:
        return self._mean(self.savings)

    @property
    def std_saving(self) -> float:
        return self._std(self.savings)

    @property
    def mean_penalty(self) -> float:
        return self._mean(self.penalties)

    @property
    def std_penalty(self) -> float:
        return self._std(self.penalties)


def run_multicore(config: SystemConfig, profile_names: Sequence[str],
                  num_ops: int, seed: int = 1,
                  per_core_configs: Optional[Sequence[SystemConfig]] = None,
                  recorder: Optional[NullRecorder] = None
                  ) -> MulticoreResult:
    """Run one multiprogrammed mix (one profile per core) to completion.

    All cores share one DRAM (bank contention couples their timing) and,
    when ``config.token.enabled``, one TAP wake-token arbiter (F7).
    ``config.num_cores`` must equal ``len(profile_names)``.

    ``per_core_configs`` makes the chip heterogeneous (big.LITTLE-style):
    one :class:`SystemConfig` per core overriding the core/cache/gating
    side, while the shared resources — the DRAM and the token arbiter —
    always come from the top-level ``config`` (they are one physical
    device, so per-core DRAM or token settings would be contradictory).

    One ``recorder`` observes all cores: each simulator records onto its
    own ``coreN``/``coreN/gating``/``coreN/controller`` tracks, so the
    exported Perfetto trace shows one lane group per core plus the shared
    DRAM lane.
    """
    if len(profile_names) != config.num_cores:
        raise ConfigError(
            f"config.num_cores={config.num_cores} but "
            f"{len(profile_names)} workload profiles supplied")
    if per_core_configs is not None and \
            len(per_core_configs) != config.num_cores:
        raise ConfigError(
            f"config.num_cores={config.num_cores} but "
            f"{len(per_core_configs)} per-core configs supplied")

    shared_dram = Dram(config.dram)
    arbiter = TokenArbiter(config.token) if config.token.enabled else None

    simulators: List[Simulator] = []
    traces = []
    for core_id, profile_name in enumerate(profile_names):
        core_config = (per_core_configs[core_id]
                       if per_core_configs is not None else config)
        simulators.append(Simulator(
            core_config, workload=profile_name, shared_dram=shared_dram,
            token_arbiter=arbiter, core_id=core_id, seed=seed + core_id,
            recorder=recorder))
        traces.append(generate_trace(profile_name, num_ops, seed=seed + core_id))

    scheduler = MultiCoreScheduler([simulator.core for simulator in simulators])
    clocks = scheduler.run(
        traces, on_segment=lambda index, segment: simulators[index].handle_segment(segment))

    per_core = {index: simulator.result() for index, simulator in enumerate(simulators)}
    return MulticoreResult(
        workloads={index: name for index, name in enumerate(profile_names)},
        policy=config.gating.policy,
        num_cores=config.num_cores,
        wake_tokens=config.token.wake_tokens if arbiter is not None else 0,
        per_core=per_core,
        total_energy_j=sum(result.energy_j for result in per_core.values()),
        makespan_cycles=max(clocks.values()),
        token_counters=arbiter.counters.as_dict() if arbiter is not None else {},
    )
