"""The end-to-end simulator for one gated core domain.

``Simulator`` wires a :class:`~repro.cpu.core.Core` (trace replay + memory
timing) to a :class:`~repro.core.controller.MapgController` (gating
decisions) and an :class:`~repro.core.energy.EnergyLedger` (power
integration), then tiles every simulated cycle into exactly one power
state:

* busy segments           -> ACTIVE
* on-chip (L2-hit) stalls -> STALL  (clock gating only; below break-even)
* off-chip stalls         -> whatever the controller decided
                             (STALL, or DRAIN/SLEEP/WAKE/STALL tiling)

Gating penalties feed back into the core's clock (``Core.add_delay``) so
later DRAM accesses see true time.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.config import SystemConfig
from repro.core.breakeven import BreakEvenAnalyzer
from repro.core.controller import MapgController
from repro.core.energy import EnergyLedger
from repro.core.policies import make_policy
from repro.core.token import TokenArbiter
from repro.cpu.core import BusySegment, Core, Segment, StallSegment
from repro.cpu.window import make_core
from repro.errors import SimulationError
from repro.memory.dram import Dram
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.spans import NULL_RECORDER, NullRecorder
from repro.power.gating import SleepTransistorNetwork
from repro.power.model import CorePowerModel, PowerState
from repro.power.technology import get_technology
from repro.power.temperature import NOMINAL_TEMPERATURE_C
from repro.predict.table import make_predictor
from repro.sim.results import SimulationResult
from repro.stats import Histogram
from repro.units import NS, seconds_to_cycles_ceil


from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class GatingTraceEvent:
    """One off-chip stall as the gating controller handled it.

    The single per-stall instrumentation record, consumed by two sinks:
    with ``record_timeline=True`` the simulator keeps them on
    ``Simulator.timeline`` (the timeline example renders these as a text
    Gantt chart), and with a :class:`repro.obs.SpanRecorder` attached each
    event is rendered into cycle-timestamped spans on the per-core trace
    tracks (``coreN`` and ``coreN/gating``) for Perfetto export.
    """

    start_cycle: int
    stall_cycles: int
    pc: int
    dram_kind: str
    gated: bool
    aborted: bool
    mode: str
    reason: str
    predicted_cycles: int
    penalty_cycles: int
    intervals: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)


def static_offchip_latency_cycles(config: SystemConfig) -> int:
    """The hard-wired "typical DRAM access" estimate, in core cycles.

    Closed-row access with no queueing: controller overhead + tRCD + tCAS +
    queue service + bus transfer, converted at the core clock.  This is the
    number the threshold policy compares against BET and the cold-start
    seed of every predictor.
    """
    dram = config.dram
    total_ns = (dram.controller_overhead_ns + dram.t_rcd_ns + dram.t_cas_ns
                + dram.queue_service_ns + dram.bus_transfer_ns)
    return seconds_to_cycles_ceil(total_ns * NS, config.core.frequency_hz)


class Simulator:
    """One core domain: replay, gate, and account."""

    def __init__(self, config: SystemConfig, workload: str = "custom",
                 temperature_c: float = NOMINAL_TEMPERATURE_C,
                 shared_dram: Optional[Dram] = None,
                 token_arbiter: Optional[TokenArbiter] = None,
                 core_id: int = 0, seed: int = 0,
                 record_timeline: bool = False,
                 recorder: Optional[NullRecorder] = None) -> None:
        self.config = config
        self.workload = workload
        self.core_id = core_id
        self._obs = recorder if recorder is not None else NULL_RECORDER
        tech = get_technology(config.technology)

        self.hierarchy = MemoryHierarchy(
            config.l1, config.l2, config.dram, config.core.frequency_hz,
            seed=seed, shared_dram=shared_dram,
            prefetcher_config=config.prefetcher, recorder=self._obs)
        self.core = make_core(config.core, self.hierarchy)

        # The circuit is characterized at the operating temperature, so the
        # controller's BET (and the rail-decay energetics) track how leaky
        # the silicon actually is — on cool silicon the BET grows and MAPG
        # correctly gates less (F10).
        network = SleepTransistorNetwork(tech, temperature_c=temperature_c)
        self.circuit = network.characterize(
            config.core.frequency_hz, config.core.pipeline_depth)
        self.power_model = CorePowerModel(self.circuit, temperature_c)
        self.analyzer = BreakEvenAnalyzer(self.circuit, config.gating)

        static_estimate = static_offchip_latency_cycles(config)
        predictor = make_predictor(config.gating, static_estimate)
        policy = make_policy(config.gating, self.analyzer, predictor, static_estimate)
        self.controller = MapgController(
            policy, self.analyzer, self.power_model,
            token_arbiter=token_arbiter, core_id=core_id,
            recorder=self._obs)

        self.ledger = EnergyLedger(self.power_model)
        self.stall_histogram = Histogram.exponential(
            low=4.0, factor=1.5, buckets=20, keep_samples=False)
        self._cycle = 0
        self._measure_start_cycle = 0
        self._measured_instructions_offset = 0.0
        self._finished = False
        self._record_timeline = record_timeline
        self.timeline: list = []  # GatingTraceEvent when recording is on
        # Per-core track names and pre-bound metric instruments, so the
        # instrumented hot path pays one `enabled` check and no registry
        # lookups (see docs/OBSERVABILITY.md for the span taxonomy).
        self._track_core = f"core{core_id}"
        self._track_gating = f"core{core_id}/gating"
        # Type-keyed segment dispatch (see handle_segment): subclasses are
        # resolved and memoized on first sight by _resolve_handler.
        self._segment_handlers: "dict[type, Callable[[Segment], int]]" = {
            BusySegment: self._handle_busy,
            StallSegment: self._handle_stall,
        }
        if self._obs.enabled:
            metrics = self._obs.metrics
            self._m_segments = metrics.counter(
                "sim.segments", help="segments processed")
            self._m_busy = metrics.counter(
                "sim.busy_cycles", help="cycles retiring instructions")
            self._m_onchip = metrics.counter(
                "sim.onchip_stall_cycles", help="on-chip (L2-hit) stall cycles")
            self._m_offchip = metrics.counter(
                "sim.offchip_stalls", help="off-chip stalls seen")
            self._m_gated = metrics.counter(
                "sim.gated_stalls", help="off-chip stalls the controller gated")
            self._m_penalty = metrics.counter(
                "sim.penalty_cycles", help="wakeup-overrun penalty cycles")

    @property
    def cycle(self) -> int:
        """Global (penalty-inclusive) simulation time."""
        return self._cycle

    # ---- segment processing ---------------------------------------------------

    def handle_segment(self, segment: Segment) -> int:
        """Charge one segment to the ledger; returns extra (penalty) cycles.

        Exposed separately so the multi-core scheduler can drive several
        simulators through one global-time merge.

        Dispatch is type-keyed (one dict probe on ``type(segment)``)
        rather than an ``isinstance`` chain — this is the innermost
        per-segment call of every simulation, and the handler table costs
        one hash lookup regardless of segment kind.
        """
        handler = self._segment_handlers.get(type(segment))
        if handler is None:
            handler = self._resolve_handler(segment)
        return handler(segment)

    def _resolve_handler(self, segment: Segment) -> "Callable[[Segment], int]":
        """Slow path: map a segment subclass to its handler, once per type."""
        if isinstance(segment, BusySegment):
            handler = self._handle_busy
        elif isinstance(segment, StallSegment):
            handler = self._handle_stall
        else:
            raise SimulationError(
                f"unknown segment type {type(segment).__name__}")
        self._segment_handlers[type(segment)] = handler
        return handler

    def _handle_busy(self, segment: BusySegment) -> int:
        """ACTIVE cycles: charge and advance; never a penalty."""
        cycles = segment.cycles
        self.ledger.add_interval(PowerState.ACTIVE, cycles)
        if self._obs.enabled:
            self._m_segments.inc()
            self._m_busy.inc(cycles)
            self._obs.span(self._track_core, "busy", self._cycle,
                           cycles, category="cpu")
        self._cycle += cycles
        return 0

    def _handle_stall(self, segment: StallSegment) -> int:
        """Tile one stall into power states via the gating controller."""
        cycles = segment.cycles
        if not segment.off_chip:
            self.ledger.add_interval(PowerState.STALL, cycles)
            if self._obs.enabled:
                self._m_segments.inc()
                self._m_onchip.inc(cycles)
                self._obs.span(self._track_core, "stall.onchip", self._cycle,
                               cycles, category="mem")
            self._cycle += cycles
            return 0

        start_cycle = self._cycle
        self.stall_histogram.observe(cycles)
        outcome = self.controller.process_stall(
            pc=segment.pc, bank=segment.bank,
            actual_stall_cycles=cycles, start_cycle=start_cycle,
            kind=segment.dram_kind or "",
            elapsed_cycles=segment.elapsed_cycles)
        if self._record_timeline or self._obs.enabled:
            event = GatingTraceEvent(
                start_cycle=start_cycle,
                stall_cycles=cycles,
                pc=segment.pc,
                dram_kind=segment.dram_kind or "",
                gated=outcome.gated,
                aborted=outcome.aborted,
                mode=outcome.decision.mode if outcome.gated else "",
                reason=outcome.decision.reason,
                predicted_cycles=outcome.decision.predicted_cycles,
                penalty_cycles=outcome.penalty_cycles,
                intervals=tuple((state.value, interval_cycles)
                                for state, interval_cycles in outcome.intervals),
            )
            if self._record_timeline:
                self.timeline.append(event)
            if self._obs.enabled:
                self._observe_stall(event)
        ledger = self.ledger
        for state, interval_cycles in outcome.intervals:
            ledger.add_interval(state, interval_cycles)
        if outcome.event_energy_j > 0.0:
            ledger.add_event(outcome.event_energy_j)
        self._cycle += outcome.total_cycles
        if outcome.penalty_cycles:
            self.core.add_delay(outcome.penalty_cycles)
        return outcome.penalty_cycles

    def _observe_stall(self, event: GatingTraceEvent) -> None:
        """Render one :class:`GatingTraceEvent` into spans and metrics."""
        self._m_segments.inc()
        self._m_offchip.inc()
        if event.gated and not event.aborted:
            self._m_gated.inc()
        if event.penalty_cycles:
            self._m_penalty.inc(event.penalty_cycles)
        total = sum(cycles for __, cycles in event.intervals)
        self._obs.span(
            self._track_core, "stall.offchip", event.start_cycle, total,
            category="gating",
            args={"pc": f"0x{event.pc:x}", "dram_kind": event.dram_kind,
                  "gated": event.gated, "aborted": event.aborted,
                  "mode": event.mode, "reason": event.reason,
                  "predicted_cycles": event.predicted_cycles,
                  "penalty_cycles": event.penalty_cycles})
        cursor = event.start_cycle
        for state, cycles in event.intervals:
            if cycles:
                self._obs.span(self._track_gating, state, cursor, cycles,
                               category="gating")
            cursor += cycles

    # ---- whole-trace run --------------------------------------------------------

    def warm_up(self, ops: Iterable) -> None:
        """Replay ``ops`` to warm caches/predictors, then reset measurements.

        Architectural state (cache contents, DRAM row buffers, predictor
        tables, the adaptive bias, the clock) carries over; every *metric*
        — the energy ledger, all counters, the stall histogram, prediction
        error statistics, and the timeline — restarts from zero.  Use this
        to exclude cold-start transients from short measured runs.
        """
        if self._finished:
            raise SimulationError("cannot warm up after the measured run")
        handle = self.handle_segment
        for segment in self.core.segments(ops):
            handle(segment)
        self.reset_measurements()

    def reset_measurements(self) -> None:
        """Zero every metric while keeping all architectural state."""
        from repro.stats import CounterSet, RunningMean

        self.ledger = EnergyLedger(self.power_model)
        self._measure_start_cycle = self._cycle
        self._measured_instructions_offset = self.core.counters.get("instructions")
        self.controller.counters = CounterSet()
        self.controller.prediction_error = RunningMean()
        self.controller.prediction_relative_error = RunningMean()
        self.stall_histogram = Histogram.exponential(
            low=4.0, factor=1.5, buckets=20, keep_samples=False)
        self.timeline = []
        # Warm-up spans would pollute the exported trace; drop them.  The
        # obs *metric* instruments are registry-lifetime and keep counting
        # (they describe the recorder's whole observation, not the
        # measured region — SimulationResult owns the measured metrics).
        if self._obs.enabled:
            self._obs.clear()
        # Memory-side counters restart too (tag/row state is untouched).
        self.hierarchy.counters = CounterSet()
        self.hierarchy.l1.counters = CounterSet()
        self.hierarchy.l2.counters = CounterSet()
        self.hierarchy.dram.counters = CounterSet()
        self.hierarchy.dram.latency_histogram = Histogram.exponential(
            low=10.0, factor=1.3, buckets=24, keep_samples=False)
        if self.hierarchy.prefetcher is not None:
            self.hierarchy.prefetcher.counters = CounterSet()

    def run(self, ops: Iterable) -> SimulationResult:
        """Replay ``ops`` to completion and return the measurements."""
        if self._finished:
            raise SimulationError("a Simulator instance runs exactly one trace")
        handle = self.handle_segment
        for segment in self.core.segments(ops):
            handle(segment)
        self._finished = True
        return self.result()

    def result(self) -> SimulationResult:
        """Snapshot the measurements accumulated since the last reset."""
        ledger = self.ledger
        controller = self.controller
        measured_cycles = self._cycle - self._measure_start_cycle
        if ledger.total_cycles != measured_cycles:
            raise SimulationError(
                f"energy ledger covers {ledger.total_cycles} cycles but "
                f"measured time is {measured_cycles} — accounting hole")
        memory_counters = dict(self.hierarchy.counters.as_dict())
        memory_counters.update(
            {f"l1_{k}": v for k, v in self.hierarchy.l1.counters.as_dict().items()})
        memory_counters.update(
            {f"l2_{k}": v for k, v in self.hierarchy.l2.counters.as_dict().items()})
        memory_counters.update(
            {f"dram_{k}": v for k, v in self.hierarchy.dram.counters.as_dict().items()})
        return SimulationResult(
            workload=self.workload,
            policy=self.config.gating.policy,
            instructions=int(self.core.counters.get("instructions")
                             - self._measured_instructions_offset),
            total_cycles=measured_cycles,
            penalty_cycles=int(controller.counters.get("penalty_cycles")),
            energy_j=ledger.total_energy_j,
            event_energy_j=ledger.event_energy_j,
            event_count=ledger.event_count,
            state_cycles=ledger.state_cycles(),
            state_energy_j=ledger.state_energy(),
            controller_counters=controller.counters.as_dict(),
            memory_counters=memory_counters,
            prediction_mae_cycles=controller.prediction_error.mean,
            prediction_mape=controller.prediction_relative_error.mean,
        )
