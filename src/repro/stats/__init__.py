"""Statistics primitives shared by the simulator and the analysis layer."""

from repro.stats.counters import CounterSet, RunningMean
from repro.stats.histogram import Histogram
from repro.stats.intervals import IntervalAccumulator, IntervalRecord

__all__ = [
    "CounterSet",
    "RunningMean",
    "Histogram",
    "IntervalAccumulator",
    "IntervalRecord",
]
