"""Named event counters and running means.

``CounterSet`` is a thin, explicit wrapper over a dict that (a) rejects
decrements, because simulation event counts only grow, and (b) supports
ratio queries with well-defined zero-denominator behaviour, which every
results table in the evaluation needs.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import StatsError


class CounterSet:
    """A set of monotonically increasing named counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, float] = {}

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increase counter ``name`` by ``amount`` (must be >= 0)."""
        if amount < 0:
            raise StatsError(f"counters are monotonic; cannot add {amount} to {name!r}")
        self._counts[name] = self._counts.get(name, 0.0) + amount

    def get(self, name: str) -> float:
        """Current value of ``name`` (0 if never touched)."""
        return self._counts.get(name, 0.0)

    def ratio(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator``; returns 0.0 when the denominator is 0."""
        denom = self.get(denominator)
        if denom == 0.0:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: "CounterSet") -> None:
        """Accumulate all counters from ``other`` into this set."""
        for name, value in other.items():
            self.add(name, value)

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"CounterSet({inner})"


class RunningMean:
    """Numerically stable streaming mean/variance (Welford's algorithm)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def observe(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Population variance; 0.0 with fewer than two observations."""
        if self._count < 2:
            return 0.0
        return self._m2 / self._count

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "RunningMean") -> None:
        """Combine two streams (Chan et al. parallel update)."""
        if other._count == 0:
            return
        if self._count == 0:
            self._count, self._mean, self._m2 = other._count, other._mean, other._m2
            return
        total = self._count + other._count
        delta = other._mean - self._mean
        self._mean += delta * other._count / total
        self._m2 += other._m2 + delta * delta * self._count * other._count / total
        self._count = total


def geometric_mean(values: Mapping[str, float]) -> float:
    """Geometric mean over the values of a mapping; requires all values > 0."""
    if not values:
        raise StatsError("geometric mean of an empty mapping is undefined")
    log_sum = 0.0
    for name, value in values.items():
        if value <= 0.0:
            raise StatsError(f"geometric mean requires positive values; {name!r} = {value}")
        log_sum += math.log(value)
    return math.exp(log_sum / len(values))
